#!/usr/bin/env python
"""The paper's worked example (Figures 1-6) in the round model.

Stabilizes the reconstructed 10-node topology under all four cost metrics
(SS-SPST / -T / -F / -E), prints the resulting trees, round counts, and
energy accounting, then demonstrates the Figure-5 discard-energy steering
and the comparison against the exhaustive minimum-energy tree.

Usage::

    python examples/worked_example.py
"""

from repro.core import SyncExecutor, fresh_states, metric_by_name
from repro.core.examples import EXAMPLE_RADIO, figure1_topology
from repro.core.metrics import METRIC_NAMES, PROTOCOL_LABELS, EnergyAwareMetric
from repro.experiments.paper_examples import format_examples_report


def render_tree(parents, members) -> str:
    """Draw parent pointers as an indented forest."""
    children = {}
    for v, p in enumerate(parents):
        children.setdefault(p, []).append(v)

    lines = []

    def walk(v, depth):
        tag = "*" if v in members else " "
        lines.append("  " * depth + f"{tag}{v}")
        for c in children.get(v, []):
            walk(c, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def main() -> None:
    topo = figure1_topology()
    print("Topology: 10 nodes, 13 edges (Figure 1 reconstruction)")
    print(f"group members (*): {sorted(topo.members)}\n")

    e_metric = EnergyAwareMetric(EXAMPLE_RADIO)
    for name in METRIC_NAMES:
        metric = metric_by_name(name, EXAMPLE_RADIO)
        res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
        tree = res.tree(topo)
        print(f"--- {PROTOCOL_LABELS[name]} "
              f"(stabilized in {res.rounds} rounds)")
        print(render_tree([s.parent for s in res.states], topo.members))
        print(f"    E-metric tree cost : {e_metric.tree_cost(topo, tree)*1e9:8.1f} nJ/bit")
        print(f"    discard component  : {e_metric.tree_discard_cost(topo, tree)*1e9:8.1f} nJ/bit")
        print(f"    forwarding nodes   : {sorted(tree.forwarding_nodes())}\n")

    print(format_examples_report())


if __name__ == "__main__":
    main()
