#!/usr/bin/env python
"""Reproduce a full paper figure from the command line.

Runs any of the ten evaluation figures (Figures 7-16) at quick or paper
scale and prints the series table, the ASCII chart, and the shape-check
verdicts.

Usage::

    python examples/energy_sweep.py fig09            # quick scale
    python examples/energy_sweep.py fig16 --full     # paper scale (slow!)
    python examples/energy_sweep.py fig09 --workers 4 --store figures.sqlite
    python examples/energy_sweep.py --list

``--workers N`` fans the figure's grid out over a process pool and
``--store`` persists every run (a directory for the JSON record layout,
a ``.sqlite`` path for the columnar store; ``--cache-dir DIR`` remains
as JSON-dir shorthand), so re-rendering a figure (or another figure over
the same scenarios) costs nothing — both are provided by the campaign
engine (``repro.experiments.campaign``; see docs/campaigns.md).
"""

import sys

from repro.analysis import ascii_plot, shape_report
from repro.experiments.figures import FIGURES


def _flag_value(args, name, default):
    if name not in args:
        return default
    i = args.index(name)
    if i + 1 >= len(args) or args[i + 1].startswith("--"):
        raise SystemExit(f"{name} requires a value")
    return args[i + 1]


def main() -> None:
    args = [a for a in sys.argv[1:]]
    if "--list" in args or not args:
        for fid, fig in sorted(FIGURES.items()):
            print(f"{fid}: {fig.title}")
        if not args:
            print("\nusage: energy_sweep.py <fig_id> [--full] "
                  "[--workers N] [--store SPEC | --cache-dir DIR]")
        return

    fig_id = args[0]
    if fig_id not in FIGURES:
        raise SystemExit(f"unknown figure {fig_id!r}; try --list")
    quick = "--full" not in args
    workers = int(_flag_value(args, "--workers", "1"))
    cache_dir = _flag_value(args, "--cache-dir", None)
    store = _flag_value(args, "--store", None)
    if store and cache_dir:
        raise SystemExit("--store and --cache-dir both given; drop one")
    fig = FIGURES[fig_id]
    print(f"{fig.title} — {'quick' if quick else 'paper'} scale")
    result = fig.run(
        quick=quick, workers=workers, cache_dir=cache_dir, store=store
    )
    print()
    print(result.format_table(fig.fig_id))
    print(ascii_plot(result.x_values, result.series, y_label=fig.y_name, x_label=fig.x_name))
    print(shape_report(fig.check(result)))
    if fig.notes:
        print(f"\nnote: {fig.notes}")


if __name__ == "__main__":
    main()
