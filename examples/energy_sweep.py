#!/usr/bin/env python
"""Reproduce a full paper figure from the command line.

Runs any of the ten evaluation figures (Figures 7-16) at quick or paper
scale and prints the series table, the ASCII chart, and the shape-check
verdicts.

Usage::

    python examples/energy_sweep.py fig09            # quick scale
    python examples/energy_sweep.py fig16 --full     # paper scale (slow!)
    python examples/energy_sweep.py --list
"""

import sys

from repro.analysis import ascii_plot, shape_report
from repro.experiments.figures import FIGURES


def main() -> None:
    args = [a for a in sys.argv[1:]]
    if "--list" in args or not args:
        for fid, fig in sorted(FIGURES.items()):
            print(f"{fid}: {fig.title}")
        if not args:
            print("\nusage: energy_sweep.py <fig_id> [--full]")
        return

    fig_id = args[0]
    if fig_id not in FIGURES:
        raise SystemExit(f"unknown figure {fig_id!r}; try --list")
    quick = "--full" not in args
    fig = FIGURES[fig_id]
    print(f"{fig.title} — {'quick' if quick else 'paper'} scale")
    result = fig.run(quick=quick)
    print()
    print(result.format_table(fig.fig_id))
    print(ascii_plot(result.x_values, result.series, y_label=fig.y_name, x_label=fig.x_name))
    print(shape_report(fig.check(result)))
    if fig.notes:
        print(f"\nnote: {fig.notes}")


if __name__ == "__main__":
    main()
