#!/usr/bin/env python
"""Head-to-head comparison of all multicast protocols on one scenario.

The scenario everything in the paper turns on: identical mobility, group
and channel for every protocol (only the protocol-specific RNG substreams
differ), so differences in the metrics are attributable to the protocols.
Prints the comparison table and an ASCII PDR-vs-velocity chart.

Usage::

    python examples/protocol_comparison.py [--fast]
"""

import sys

from repro.analysis import ascii_plot
from repro.experiments import ScenarioConfig, Sweep, run_scenario

PROTOCOLS = ("ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e", "maodv", "odmrp")


def main() -> None:
    fast = "--fast" in sys.argv
    sim_time = 60.0 if fast else 120.0

    print("=" * 78)
    print("Single-scenario comparison (v_max = 5 m/s, group = 20)")
    print("=" * 78)
    header = (f"{'protocol':>10s} {'PDR':>7s} {'mJ/pkt':>8s} {'delay ms':>9s} "
              f"{'overhead':>9s} {'unavail':>8s}")
    print(header)
    for protocol in PROTOCOLS:
        cfg = ScenarioConfig.quick(
            protocol=protocol, v_max=5.0, seed=7, sim_time=sim_time
        )
        s = run_scenario(cfg).summary
        print(f"{protocol:>10s} {s.pdr:7.3f} {s.energy_per_packet_mj:8.2f} "
              f"{s.avg_delay_ms:9.2f} {s.control_overhead:9.4f} "
              f"{s.unavailability:8.3f}")

    print()
    print("=" * 78)
    print("PDR vs velocity (the Figure 14 shape)")
    print("=" * 78)
    sweep = Sweep(
        x_name="v_max",
        x_values=[1.0, 5.0, 10.0, 20.0],
        protocols=["ss-spst", "ss-spst-e", "maodv", "odmrp"],
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        base=ScenarioConfig.quick(sim_time=sim_time),
        seeds=(7,) if fast else (7, 8),
    )
    result = sweep.run()
    print(result.format_table("pdr vs v_max"))
    print(ascii_plot(result.x_values, result.series, y_label="pdr", x_label="v_max (m/s)"))


if __name__ == "__main__":
    main()
