#!/usr/bin/env python
"""Self-stabilization from arbitrary corruption — the Dijkstra story.

Starts the SS-SPST-E round model from a *deliberately corrupted* global
state (random parent cycles, garbage costs and hop counts), shows the
per-round total-cost trajectory as the system heals itself (Lemma 1),
verifies closure (Lemma 2) and loop freedom (Lemma 3), then injects a
topology fault (edge removal) and watches it re-stabilize.

Usage::

    python examples/self_stabilization_demo.py [seed]
"""

import sys

import numpy as np

from repro.core import (
    RandomizedDaemonExecutor,
    arbitrary_states,
    check_closure,
    check_loop_freedom,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.graph import Topology


def make_topology(rng) -> Topology:
    while True:
        n = 24
        pos = rng.random((n, 2)) * 450.0
        members = [int(x) for x in rng.choice(n, size=8, replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    rng = np.random.default_rng(seed)
    topo = make_topology(rng)
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    executor = RandomizedDaemonExecutor(topo, metric, np.random.default_rng(seed + 1))

    print(f"topology: {topo.n} nodes, members {sorted(topo.members)}")
    corrupted = arbitrary_states(topo, metric, rng)
    print(f"initial state legitimate? {is_legitimate(topo, metric, corrupted)}")

    result = executor.run(corrupted, max_rounds=300)
    print(f"\nconverged in {result.rounds} rounds; cost trajectory (J/bit x 1e6):")
    for i, c in enumerate(result.cost_history[: result.rounds + 1]):
        bar = "#" * max(1, int(40 * c / max(result.cost_history)))
        print(f"  round {i:2d}: {c*1e6:12.3f}  {bar}")

    print(f"\nLemma 2 (closure) : {check_closure(topo, metric, executor, result.states).holds}")
    print(f"Lemma 3 (no loops): {check_loop_freedom(topo, result.states).holds}")

    # Inject a fault: remove the tree edge closest to the source.
    tree = result.tree(topo)
    edge = tree.edges()[0]
    print(f"\ninjecting fault: removing edge {edge}")
    dist2 = topo.dist.copy()
    dist2[edge[0], edge[1]] = dist2[edge[1], edge[0]] = np.inf
    topo2 = Topology(dist2, topo.source, topo.members)
    executor2 = RandomizedDaemonExecutor(topo2, metric, np.random.default_rng(seed + 2))
    result2 = executor2.run(list(result.states), max_rounds=300)
    print(f"re-stabilized in {result2.rounds} rounds; "
          f"legitimate={is_legitimate(topo2, metric, result2.states)}")


if __name__ == "__main__":
    main()
