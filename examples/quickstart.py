#!/usr/bin/env python
"""Quickstart: run SS-SPST-E on a paper-style MANET scenario.

Builds a 50-node random-waypoint network (the paper's 750 m x 750 m
arena), runs the energy-aware self-stabilizing multicast protocol for two
simulated minutes with a CBR source, and prints the evaluation metrics.

Usage::

    python examples/quickstart.py [protocol]

where ``protocol`` is one of: ss-spst, ss-spst-t, ss-spst-f, ss-spst-e
(default), maodv, odmrp, flooding.
"""

import sys

from repro.experiments import ScenarioConfig, run_scenario


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "ss-spst-e"
    config = ScenarioConfig.quick(
        protocol=protocol,
        v_max=5.0,  # moderate mobility (the paper sweeps 1-20 m/s)
        group_size=20,  # multicast source + 19 receivers
        seed=42,
    )
    print(f"Running {protocol} | {config.n_nodes} nodes | "
          f"{config.sim_time:.0f} s simulated | v_max={config.v_max} m/s")
    result = run_scenario(config)
    s = result.summary

    print()
    print(f"packet delivery ratio     : {s.pdr:.3f}")
    print(f"energy / packet delivered : {s.energy_per_packet_mj:.2f} mJ")
    print(f"average delay             : {s.avg_delay_ms:.2f} ms")
    print(f"control byte overhead     : {s.control_overhead:.4f}")
    print(f"unavailability ratio      : {s.unavailability:.3f}")
    print(f"data packets originated   : {s.data_originated}")
    print(f"data packets delivered    : {s.data_delivered}")
    print(f"parent changes (churn)    : {result.parent_changes}")
    print(f"simulator events          : {result.events_executed}")


if __name__ == "__main__":
    main()
