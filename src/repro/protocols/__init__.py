"""DES protocol implementations.

Six multicast protocols run on the :mod:`repro.net` substrate:

* :class:`SSSPSTAgent` with a pluggable cost metric — the SS-SPST family
  (SS-SPST / -T / -F / -E), proactive and self-stabilizing via periodic
  beacons (paper sections 2-5);
* :class:`MaodvAgent` — tree-based on-demand baseline (RREQ/RREP/MACT +
  group-leader hello), after Royer & Perkins;
* :class:`OdmrpAgent` — mesh-based on-demand baseline (JOIN-QUERY /
  JOIN-REPLY forwarding group), after Gerla, Lee & Chiang;
* :class:`FloodingAgent` — the every-node-rebroadcasts reference.

Use :func:`make_agent_factory` to instantiate by protocol name
("ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e", "maodv", "odmrp",
"flooding").
"""

from repro.protocols.base import MulticastAgent
from repro.protocols.ss_spst import SSSPSTAgent, SSSPSTConfig
from repro.protocols.maodv import MaodvAgent, MaodvConfig
from repro.protocols.odmrp import OdmrpAgent, OdmrpConfig
from repro.protocols.flooding import FloodingAgent
from repro.protocols.registry import PROTOCOL_NAMES, make_agent_factory

__all__ = [
    "MulticastAgent",
    "SSSPSTAgent",
    "SSSPSTConfig",
    "MaodvAgent",
    "MaodvConfig",
    "OdmrpAgent",
    "OdmrpConfig",
    "FloodingAgent",
    "PROTOCOL_NAMES",
    "make_agent_factory",
]
