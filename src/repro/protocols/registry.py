"""Protocol factory: build per-node agents by protocol name."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.daemons import require_des_daemon
from repro.core.metrics import metric_by_name
from repro.net.node import Node, ProtocolAgent
from repro.protocols.flooding import FloodingAgent
from repro.protocols.maodv import MaodvAgent, MaodvConfig
from repro.protocols.odmrp import OdmrpAgent, OdmrpConfig
from repro.protocols.ss_spst import SSSPSTAgent, SSSPSTConfig

#: protocol name -> SS-SPST metric name (None = not in the family)
_SS_FAMILY = {
    "ss-spst": "hop",
    "ss-spst-t": "tx",
    "ss-spst-f": "farthest",
    "ss-spst-e": "energy",
}

PROTOCOL_NAMES = tuple(_SS_FAMILY) + ("maodv", "odmrp", "flooding")


def make_agent_factory(
    protocol: str,
    *,
    beacon_interval: float = 2.0,
    daemon: str = "distributed",
    ss_config: Optional[SSSPSTConfig] = None,
    maodv_config: Optional[MaodvConfig] = None,
    odmrp_config: Optional[OdmrpConfig] = None,
) -> Callable[[Node], ProtocolAgent]:
    """Return a ``factory(node) -> agent`` for :meth:`Network.attach_agents`.

    ``beacon_interval`` is a convenience for the SS-SPST family (the
    paper's Figure 10/11 sweep); pass a full ``ss_config`` to tune more.
    ``daemon`` selects the activation discipline realized by the SS-SPST
    beacon clocks (see :attr:`SSSPSTConfig.activation`); on-demand
    protocols have no beacon clock and ignore it.  The round-model-only
    ``adversarial-max-cost`` daemon is rejected.
    """
    protocol = protocol.lower()
    require_des_daemon(daemon)
    if protocol in _SS_FAMILY:
        metric_name = _SS_FAMILY[protocol]
        if ss_config is not None:
            config = ss_config
        else:
            # SS-SPST-F runs undamped: its "dynamic nature which causes
            # unstability" (section 7.1) is a finding the paper reports,
            # and route-flap damping would mask it.
            undamped = metric_name == "farthest"
            config = SSSPSTConfig(
                beacon_interval=beacon_interval,
                switch_threshold=0.0 if undamped else 0.10,
                hold_down_intervals=0.0 if undamped else 3.0,
                activation=daemon,
            )

        def factory(node: Node) -> ProtocolAgent:
            metric = metric_by_name(metric_name, node.network.radio)
            return SSSPSTAgent(node, metric, config)

        return factory
    if protocol == "maodv":
        return lambda node: MaodvAgent(node, maodv_config)
    if protocol == "odmrp":
        return lambda node: OdmrpAgent(node, odmrp_config)
    if protocol == "flooding":
        return lambda node: FloodingAgent(node)
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}")
