"""Plain flooding: the trivial reference multicast.

Every node rebroadcasts every data packet exactly once at full power.
Maximal robustness and maximal cost — a useful upper/lower reference line
for the PDR and energy benches.
"""

from __future__ import annotations

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.protocols.base import MulticastAgent


class FloodingAgent(MulticastAgent):
    """One flooding node."""

    def start(self) -> None:  # no control plane at all
        pass

    def handle_packet(self, packet: Packet) -> bool:
        if packet.kind is not PacketKind.DATA:
            return False
        if self.dups.seen_before(packet.flow_key):
            return False
        if self.is_member:
            self.deliver_locally(packet)
        self.node.send(packet.relay(self.node.id), self.max_range)
        return True

    def _send_fresh_data(self, packet: Packet) -> None:
        self.node.send(packet, self.max_range)
