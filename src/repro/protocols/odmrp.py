"""ODMRP: On-Demand Multicast Routing Protocol (Gerla, Lee & Chiang).

Mesh-based baseline with the architectural traits the paper leans on:

* the source periodically floods a **JOIN-QUERY** over the whole network
  (every node rebroadcasts once), refreshing reverse paths;
* receivers answer each query with a **JOIN-REPLY** that walks hop-by-hop
  back toward the source, setting the **forwarding-group** flag (with
  soft-state timeout) on every node of the path;
* data is rebroadcast by every forwarding-group node — the redundant
  mesh paths that give ODMRP the best PDR under mobility (Figure 14) and
  the worst control/energy overhead (Figures 13 and 16), behaving
  "similar to flooding" as group size grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.protocols.base import MulticastAgent
from repro.sim.timers import PeriodicTimer
from repro.util.ids import NodeId

JOIN_QUERY_HEADER_BYTES = 24
JOIN_REPLY_BYTES = 20


@dataclass(frozen=True)
class OdmrpConfig:
    """ODMRP tuning (defaults follow the original paper's 3 s refresh).

    In real ODMRP the periodic JOIN-QUERY is *piggybacked on a data
    packet* and flooded by every node in the network — that network-wide
    data-sized flood, repeated every refresh interval, is where ODMRP's
    control overhead comes from (and why Figure 13 shows it highest and
    "similar to flooding" as membership grows).  ``piggyback_bytes``
    models the data payload carried by each query.
    """

    query_interval: float = 3.0
    fg_timeout_factor: float = 3.0  # forwarding-group soft state lifetime
    jitter: float = 0.4
    piggyback_bytes: int = 512

    def __post_init__(self) -> None:
        if self.query_interval <= 0 or self.fg_timeout_factor < 1:
            raise ValueError("invalid ODMRP configuration")

    @property
    def query_bytes(self) -> int:
        return JOIN_QUERY_HEADER_BYTES + self.piggyback_bytes

    @property
    def fg_timeout(self) -> float:
        return self.fg_timeout_factor * self.query_interval


class OdmrpAgent(MulticastAgent):
    """One ODMRP node."""

    def __init__(self, node: Node, config: Optional[OdmrpConfig] = None) -> None:
        super().__init__(node)
        self.config = config or OdmrpConfig()
        self.upstream: Optional[NodeId] = None  # prev hop toward the source
        self.fg_until = -1.0  # forwarding-group membership expiry
        self._query_seq = 0
        self._timer: Optional[PeriodicTimer] = None
        self.control_frames = {"join_query": 0, "join_reply": 0}

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.is_source:
            rng = self.network.streams.derive("odmrp", self.node.id)
            self._timer = PeriodicTimer(
                self.sim,
                self.config.query_interval,
                self._flood_query,
                jitter=self.config.jitter,
                rng=rng,
                start_offset=float(rng.uniform(0.0, 0.3)),
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def on_node_death(self) -> None:
        self.stop()

    @property
    def in_forwarding_group(self) -> bool:
        return self.is_source or self.sim.now <= self.fg_until

    # ------------------------------------------------------------------
    def _flood_query(self) -> None:
        self.control_frames["join_query"] += 1
        self.send_control(
            PacketKind.JOIN_QUERY,
            self.config.query_bytes,
            {"source": self.node.id},
            seq=self._query_seq,
        )
        self._query_seq += 1

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> bool:
        kind = packet.kind
        if kind is PacketKind.JOIN_QUERY:
            return self._on_query(packet)
        if kind is PacketKind.JOIN_REPLY:
            return self._on_reply(packet)
        if kind is PacketKind.DATA:
            return self._on_data(packet)
        return False

    def _on_query(self, packet: Packet) -> bool:
        if self.dups.seen_before(packet.flow_key):
            return False
        self.upstream = packet.src
        if self.is_member and not self.is_source:
            # Answer immediately: JOIN-REPLY toward the source.
            self.control_frames["join_reply"] += 1
            self.send_control(
                PacketKind.JOIN_REPLY,
                JOIN_REPLY_BYTES,
                {"next": packet.src, "source": packet.origin},
                seq=packet.seq,
                origin=self.node.id,
            )
        # Continue the network-wide flood.
        self.node.send(packet.relay(self.node.id), self.max_range)
        return True

    def _on_reply(self, packet: Packet) -> bool:
        if packet.payload.get("next") != self.node.id:
            return False  # someone else's hop: overheard
        if self.is_source:
            return True  # reply reached the source; mesh branch complete
        # Join the forwarding group and propagate upstream.
        self.fg_until = self.sim.now + self.config.fg_timeout
        if self.upstream is not None:
            self.control_frames["join_reply"] += 1
            self.send_control(
                PacketKind.JOIN_REPLY,
                JOIN_REPLY_BYTES,
                {"next": self.upstream, "source": packet.payload.get("source")},
                seq=packet.seq,
                origin=packet.origin,
            )
        return True

    def _on_data(self, packet: Packet) -> bool:
        if self.dups.seen_before(packet.flow_key):
            return False
        useful = False
        if self.is_member:
            self.deliver_locally(packet)
            useful = True
        if self.in_forwarding_group:
            self.node.send(packet.relay(self.node.id), self.max_range)
            useful = True
        return useful

    def _send_fresh_data(self, packet: Packet) -> None:
        self.node.send(packet, self.max_range)
