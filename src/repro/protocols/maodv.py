"""MAODV: Multicast operation of AODV (Royer & Perkins, MobiCom'99).

Simplified-from-spec implementation preserving the architectural traits
the paper's comparison rests on:

* **on-demand tree construction** — members join by flooding a RREQ;
  on-tree nodes answer with a unicast RREP along the reverse path; the
  requester activates the branch with MACT (so control traffic is
  generated "only when there is a need for multicasting", which is why
  MAODV shows the least control overhead in Figure 13);
* **group-leader hellos** — the source acts as group leader and
  periodically floods a GROUP-HELLO that refreshes tree soft state and
  seeds reverse paths;
* **shared tree forwarding** — data is rebroadcast once by every tree
  node, at full power (no power control), arriving from any tree neighbor;
* **soft state + re-join** — a tree node that misses hellos/data for the
  timeout drops off the tree; members re-join via RREQ with backoff.

Simplifications vs. the RFC draft (documented in DESIGN.md section 4):
sequence numbers are reduced to hello generation counts, there is no
group-leader election (the source is the leader for the session lifetime,
true in the paper's single-source scenarios), and tree pruning of
departed members is by timeout rather than explicit MACT-prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.protocols.base import MulticastAgent
from repro.sim.timers import PeriodicTimer
from repro.util.ids import NodeId

RREQ_BYTES = 24
RREP_BYTES = 20
MACT_BYTES = 16
HELLO_BYTES = 20


@dataclass(frozen=True)
class MaodvConfig:
    """MAODV tuning."""

    hello_interval: float = 5.0
    tree_timeout: float = 12.0
    rreq_retry_interval: float = 3.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.hello_interval <= 0 or self.tree_timeout <= self.hello_interval:
            raise ValueError("invalid MAODV configuration")


class MaodvAgent(MulticastAgent):
    """One MAODV node."""

    def __init__(self, node: Node, config: Optional[MaodvConfig] = None) -> None:
        super().__init__(node)
        self.config = config or MaodvConfig()
        self.on_tree = self.is_source
        self.tree_refresh_t = 0.0
        self.upstream: Optional[NodeId] = None  # prev hop toward the leader
        self.reverse_path: Dict[NodeId, NodeId] = {}  # requester -> prev hop
        self.downstream: Dict[NodeId, float] = {}  # child -> branch expiry
        self.hello_gen_seen = -1
        self._hello_seq = 0
        self._rreq_seq = 0
        self._timers = []
        self._member_timer = None  # rejoin clock (members only)
        self.control_frames = {"rreq": 0, "rrep": 0, "mact": 0, "hello": 0}

    # ------------------------------------------------------------------
    def start(self) -> None:
        rng = self.network.streams.derive("maodv", self.node.id)
        if self.is_source:
            self._timers.append(
                PeriodicTimer(
                    self.sim,
                    self.config.hello_interval,
                    self._flood_hello,
                    jitter=self.config.jitter,
                    rng=rng,
                    start_offset=float(rng.uniform(0.0, 0.5)),
                )
            )
        elif self.is_member:
            self._start_member_timer()

    def _start_member_timer(self) -> None:
        rng = self.network.streams.derive("maodv", self.node.id)
        self._member_timer = PeriodicTimer(
            self.sim,
            self.config.rreq_retry_interval,
            self._maybe_rejoin,
            jitter=self.config.jitter,
            rng=rng,
            start_offset=float(rng.uniform(0.0, 1.0)),
        )

    def on_membership_change(self) -> None:
        """MAODV latches membership into its rejoin clock at start; group
        churn (the ``rotating`` membership model) starts/stops it.  A
        leaver keeps any forwarding state until ``tree_timeout`` expires
        — the protocol's own soft-state pruning — it just stops asking to
        rejoin."""
        if self.is_source:
            return
        if self.is_member and self._member_timer is None:
            self._start_member_timer()
        elif not self.is_member and self._member_timer is not None:
            self._member_timer.stop()
            self._member_timer = None

    def stop(self) -> None:
        for t in self._timers:
            t.stop()
        if self._member_timer is not None:
            self._member_timer.stop()
            self._member_timer = None

    def on_node_death(self) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def tree_fresh(self) -> bool:
        if self.is_source:
            return True
        return self.on_tree and (
            self.sim.now - self.tree_refresh_t <= self.config.tree_timeout
        )

    def _flood_hello(self) -> None:
        self.control_frames["hello"] += 1
        self.send_control(
            PacketKind.GROUP_HELLO,
            HELLO_BYTES,
            {"gen": self._hello_seq},
            seq=self._hello_seq,
        )
        self._hello_seq += 1

    @property
    def has_fresh_downstream(self) -> bool:
        now = self.sim.now
        return any(expiry > now for expiry in self.downstream.values())

    def _maybe_rejoin(self) -> None:
        if self.tree_fresh:
            # Branch maintenance: a member periodically refreshes its
            # branch with a MACT toward its upstream tree neighbor.
            if self.upstream is not None:
                self.control_frames["mact"] += 1
                self.send_control(
                    PacketKind.MACT,
                    MACT_BYTES,
                    {"next": self.upstream, "requester": self.node.id},
                    seq=self._rreq_seq,
                )
                self._rreq_seq += 1
            return
        self.on_tree = False
        self.downstream.clear()
        self.control_frames["rreq"] += 1
        self.send_control(
            PacketKind.RREQ,
            RREQ_BYTES,
            {"requester": self.node.id},
            seq=self._rreq_seq,
        )
        self._rreq_seq += 1

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> bool:
        kind = packet.kind
        if kind is PacketKind.GROUP_HELLO:
            return self._on_hello(packet)
        if kind is PacketKind.RREQ:
            return self._on_rreq(packet)
        if kind is PacketKind.RREP:
            return self._on_rrep(packet)
        if kind is PacketKind.MACT:
            return self._on_mact(packet)
        if kind is PacketKind.DATA:
            return self._on_data(packet)
        return False

    # -- control ---------------------------------------------------------
    def _on_hello(self, packet: Packet) -> bool:
        if self.dups.seen_before(packet.flow_key):
            return False
        self.upstream = packet.src
        if self.on_tree:
            self.tree_refresh_t = self.sim.now
        # Propagate the flood.
        self.node.send(packet.relay(self.node.id), self.max_range)
        return True

    def _on_rreq(self, packet: Packet) -> bool:
        if self.dups.seen_before(packet.flow_key):
            return False
        requester = packet.payload["requester"]
        self.reverse_path[requester] = packet.src
        if self.tree_fresh and requester != self.node.id:
            # Answer from the tree: unicast RREP back toward the requester.
            self.control_frames["rrep"] += 1
            self.send_control(
                PacketKind.RREP,
                RREP_BYTES,
                {"requester": requester, "next": packet.src, "replier": self.node.id},
                seq=packet.seq,
                origin=packet.origin,
            )
            return True
        self.node.send(packet.relay(self.node.id), self.max_range)
        return True

    def _on_rrep(self, packet: Packet) -> bool:
        if packet.payload.get("next") != self.node.id:
            return False  # unicast hop for someone else: overheard
        requester = packet.payload["requester"]
        if requester == self.node.id:
            # Our join answered: activate the branch.
            self.on_tree = True
            self.tree_refresh_t = self.sim.now
            self.upstream = packet.src
            self.control_frames["mact"] += 1
            self.send_control(
                PacketKind.MACT,
                MACT_BYTES,
                {"next": packet.src, "requester": requester},
                seq=packet.seq,
                origin=packet.origin,
            )
            return True
        prev = self.reverse_path.get(requester)
        if prev is None:
            return False
        # Forward the unicast RREP one hop down the reverse path; this node
        # becomes a pending branch router.
        self.send_control(
            PacketKind.RREP,
            RREP_BYTES,
            {**packet.payload, "next": prev},
            seq=packet.seq,
            origin=packet.origin,
        )
        return True

    def _on_mact(self, packet: Packet) -> bool:
        if packet.payload.get("next") != self.node.id:
            return False
        # Branch activation/refresh: the sender becomes (stays) our
        # downstream child; we become a tree router and pass the MACT
        # upstream so the *whole* branch is refreshed up to the source
        # (stopping early would let ancestor branch state expire).
        self.downstream[packet.src] = self.sim.now + self.config.tree_timeout
        self.on_tree = True
        self.tree_refresh_t = self.sim.now
        if not self.is_source and self.upstream is not None:
            self.send_control(
                PacketKind.MACT,
                MACT_BYTES,
                {**packet.payload, "next": self.upstream},
                seq=packet.seq,
                origin=packet.origin,
            )
        return True

    # -- data --------------------------------------------------------------
    def _on_data(self, packet: Packet) -> bool:
        if not self.tree_fresh:
            return False
        # Tree semantics: data is accepted only over tree links (from our
        # upstream or one of our downstream children) — a broken branch
        # really loses packets until it is repaired via RREQ.
        now = self.sim.now
        from_tree_neighbor = packet.src == self.upstream or (
            self.downstream.get(packet.src, 0.0) > now
        )
        if not from_tree_neighbor and not self.is_source:
            return False
        if self.dups.seen_before(packet.flow_key):
            return False
        self.tree_refresh_t = self.sim.now
        useful = False
        if self.is_member:
            self.deliver_locally(packet)
            useful = True
        # Tree forwarding: only routers with live downstream branches
        # rebroadcast (leaf members consume silently).
        if self.has_fresh_downstream:
            self.node.send(packet.relay(self.node.id), self.max_range)
            useful = True
        return useful

    def _send_fresh_data(self, packet: Packet) -> None:
        self.node.send(packet, self.max_range)
