"""Common machinery for multicast protocol agents."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.net.node import Node, ProtocolAgent
from repro.net.packet import Packet, PacketKind
from repro.util.ids import NodeId


class DuplicateCache:
    """Bounded LRU set of end-to-end frame identities for dedup."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._seen: "OrderedDict[Tuple, None]" = OrderedDict()

    def seen_before(self, key: Tuple) -> bool:
        """Record ``key``; return True if it was already present."""
        if key in self._seen:
            self._seen.move_to_end(key)
            return True
        self._seen[key] = None
        if len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return False

    def __contains__(self, key: Tuple) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


class MulticastAgent(ProtocolAgent):
    """Base class for the six protocols.

    Adds: group-role properties, the duplicate cache, data origination
    plumbing (the CBR source calls :meth:`originate_data`), and delivery
    accounting through the network's metrics hub.
    """

    #: default application payload size (512-byte CBR packets at 64 kbps
    #: gives the paper's source rate)
    DATA_SIZE = 512

    def __init__(self, node: Node, group_id: int = 0) -> None:
        super().__init__(node)
        #: which multicast session this agent serves.  0 is the
        #: historical single group (per-node flags); agents for groups
        #: 1..k-1 read the network's group side tables instead.
        self.group_id = int(group_id)
        self.dups = DuplicateCache()
        self._data_seq = 0

    # ------------------------------------------------------------------
    @property
    def is_member(self) -> bool:
        if self.group_id == 0:
            return self.node.is_member
        return self.network.is_group_member(self.group_id, self.node.id)

    @property
    def is_source(self) -> bool:
        if self.group_id == 0:
            return self.node.is_source
        return self.network.is_group_source(self.group_id, self.node.id)

    @property
    def hub(self):
        """The metrics hub installed by the runner (or None)."""
        return getattr(self.network, "hub", None)

    @property
    def max_range(self) -> float:
        return self.network.radio.max_range

    # ------------------------------------------------------------------
    def originate_data(self, size_bytes: Optional[int] = None) -> Packet:
        """Create and inject a new multicast data packet (source only)."""
        if not self.is_source:
            raise RuntimeError("only the source originates data")
        packet = Packet(
            kind=PacketKind.DATA,
            src=self.node.id,
            origin=self.node.id,
            seq=self._data_seq,
            size_bytes=size_bytes or self.DATA_SIZE,
            created_at=self.sim.now,
            group=self.group_id,
        )
        self._data_seq += 1
        if self.hub is not None:
            self.hub.on_data_originated(packet)
        self.dups.seen_before(packet.flow_key)  # never re-forward own data
        self._send_fresh_data(packet)
        return packet

    def _send_fresh_data(self, packet: Packet) -> None:
        """Protocol-specific first transmission of a new data packet."""
        raise NotImplementedError

    def deliver_locally(self, packet: Packet) -> None:
        """Record a successful delivery to this (member) node."""
        if self.hub is not None:
            self.hub.on_data_delivered(self.node.id, packet, self.sim.now)

    # ------------------------------------------------------------------
    def send_control(
        self,
        kind: PacketKind,
        size_bytes: int,
        payload: dict,
        seq: int,
        origin: Optional[NodeId] = None,
        tx_range: Optional[float] = None,
    ) -> Packet:
        """Broadcast a control frame through the MAC."""
        packet = Packet(
            kind=kind,
            src=self.node.id,
            origin=self.node.id if origin is None else origin,
            seq=seq,
            size_bytes=size_bytes,
            payload=payload,
            created_at=self.sim.now,
            group=self.group_id,
        )
        self.node.send(packet, tx_range if tx_range is not None else self.max_range)
        return packet
