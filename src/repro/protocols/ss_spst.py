"""The SS-SPST protocol family on the DES substrate.

One agent class implements all four variants; the cost metric is plugged
in (hop -> SS-SPST, tx -> SS-SPST-T, farthest -> SS-SPST-F, energy ->
SS-SPST-E).  Operation (paper sections 2-3):

* every node broadcasts a **beacon** each beacon interval carrying its
  link and node characteristics (position, protocol state, radius/flag
  bookkeeping, and — for SS-SPST-E — the neighbor-distance list and the
  telescoped path-price pair that lets joiners evaluate lighting up a
  pruned branch);
* neighbors integrate beacons into a soft-state table; a missing beacon
  for ``timeout`` seconds is sensed as a disconnection (a fault);
* on its own beacon tick each node runs the guarded update rule against a
  :class:`LocalView` assembled purely from the table — the distributed
  realization of the round model in :mod:`repro.core.rounds`;
* data flows down the tree: a node accepts data from its parent, delivers
  locally if it is a member, and re-broadcasts with transmission power
  reaching its farthest *flagged* child (power control + pruning).

The LocalView honours the same :class:`~repro.core.views.NodeView`
interface the round model uses, so the metric code is literally shared
between the proof-oriented round executor and the packet-level protocol.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, compute_update_local
from repro.core.state import NodeState
from repro.core.views import NodeView
from repro.net.neighbors import NeighborInfo, NeighborTable
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.protocols.base import MulticastAgent
from repro.sim.timers import PeriodicTimer
from repro.util.ids import NodeId

#: base beacon size in bytes (position, ids, state variables)
BASE_BEACON_BYTES = 28


@dataclass(frozen=True)
class SSSPSTConfig:
    """Protocol tuning.

    beacon_interval:
        Seconds between beacons (the paper's headline knob; default 2 s).
    beacon_jitter:
        Uniform jitter applied to each beacon tick (de-synchronization).
    miss_factor:
        Neighbor expiry timeout as a multiple of the beacon interval.
    range_margin:
        Fractional margin added to data transmission radii to survive
        child movement within a beacon interval.
    switch_threshold:
        Route-flap damping: an alternative parent must beat the incumbent
        by this relative cost margin (beacon state is up to one interval
        stale, so marginal-cost comparisons are noisy).
    hold_down_intervals:
        After a voluntary parent switch the node keeps the new parent for
        this many beacon intervals before considering another voluntary
        switch (it still reacts immediately to losing the parent).  The
        F/E metrics couple every node's marginal costs to its neighbors'
        child sets, so un-damped distributed evaluation cascades into
        network-wide churn — the classic hold-down timer bounds it.
    activation:
        Which activation daemon the beacon clocks realize (the DES
        counterpart of :mod:`repro.core.daemons`):

        * ``"distributed"`` / ``"randomized"`` — independent clocks with
          random phase plus ``beacon_jitter`` (the classic MANET setting
          and the historical default; both names map to the identical
          discipline, since independent jittered clocks *are* a random
          activation order);
        * ``"synchronous"`` — lockstep ticks (zero phase, zero jitter):
          every node computes from the same stale snapshot and all
          beacons contend at once;
        * ``"central"`` — ticks staggered in id order across the beacon
          interval (zero jitter): a serialized update schedule;
        * ``"weakly-fair"`` — random phase with heavy (half-interval)
          jitter: activation delays vary widely but stay bounded.
    """

    beacon_interval: float = 2.0
    beacon_jitter: float = 0.25
    miss_factor: float = 2.5
    range_margin: float = 0.10
    switch_threshold: float = 0.10
    hold_down_intervals: float = 3.0
    activation: str = "distributed"

    #: beacon disciplines with a DES realization (adversarial-max-cost is
    #: round-model only: a packet-level adversary would need omniscient
    #: zero-latency control of every clock)
    ACTIVATIONS = ("distributed", "randomized", "synchronous", "central", "weakly-fair")

    def __post_init__(self) -> None:
        if self.beacon_interval <= 0 or self.miss_factor <= 1:
            raise ValueError("invalid SS-SPST configuration")
        if self.switch_threshold < 0 or self.hold_down_intervals < 0:
            raise ValueError("switch_threshold/hold_down must be non-negative")
        if self.activation not in self.ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; choose from "
                f"{self.ACTIVATIONS}"
            )


#: how campaigns reach every SSSPSTConfig knob — the machine-readable
#: binding contract enforced by ``repro.lint`` (rule H204).  A knob is
#: ``config:<field>`` (driven verbatim by a hashed ScenarioConfig
#: field), ``derived:<field>`` (computed from one at agent construction
#: — see ``make_agent_factory``, which picks damping by protocol name),
#: or ``fixed`` (a protocol-internal constant campaigns never vary).
#: The point: an SSSPSTConfig knob outside this table could change run
#: behavior without ever forking the config-hash cache key.
CAMPAIGN_BINDINGS = {
    "beacon_interval": "config:beacon_interval",
    "beacon_jitter": "fixed",
    "miss_factor": "fixed",
    "range_margin": "fixed",
    "switch_threshold": "derived:protocol",
    "hold_down_intervals": "derived:protocol",
    "activation": "config:daemon",
}


class LocalView(NodeView):
    """NodeView assembled from one node's beacon table (no global state)."""

    def __init__(self, agent: "SSSPSTAgent") -> None:
        self.agent = agent
        self.me = agent.node.id
        self.table = agent.table
        self.my_pos = agent.node.position
        self.my_state = agent.state
        self.my_flag = agent.flag

    # ------------------------------------------------------------------
    def neighbors_of(self, v: NodeId) -> List[NodeId]:
        assert v == self.me, "a local view only evaluates its own node"
        out = []
        for nid, info in self.table.items():
            # Skip neighbors claiming me as parent: choosing my own child
            # as parent would form an instant 2-cycle.
            if info.state.get("parent") == self.me:
                continue
            out.append(nid)
        return out

    def state_of(self, u: NodeId) -> NodeState:
        if u == self.me:
            return self.my_state
        st = self.table.get(u).state
        return NodeState(parent=st["parent"], cost=st["cost"], hop=st["hop"])

    def dist(self, v: NodeId, u: NodeId) -> float:
        assert v == self.me
        return self.table.get(u).distance_from(self.my_pos)

    def flag_of(self, u: NodeId) -> bool:
        if u == self.me:
            return self.my_flag
        return bool(self.table.get(u).state.get("flag", False))

    def member(self, u: NodeId) -> bool:
        if u == self.me:
            return self.agent.is_member
        return bool(self.table.get(u).state.get("member", False))

    def flag_excluding(self, u: NodeId, v: NodeId) -> bool:
        # Detaching v from its parent never changes v's own subtree flag.
        if u == v:
            return self.my_flag if u == self.me else self.flag_of(u)
        st = self.table.get(u).state
        if not st.get("flag", False):
            return False
        return st.get("sole_flag_cause") != v

    def radius_without(self, u: NodeId, v: NodeId, flagged_only: bool) -> float:
        st = self.table.get(u).state
        return self._radius_from_tops(st, (v,), flagged_only)

    @staticmethod
    def _radius_from_tops(st: Dict, exclude, flagged_only: bool) -> float:
        """Radius over u's (flagged) children excluding given ids.

        Exact even though beacons truncate the list: excluding a child that
        did not make the top entries cannot lower the maximum.
        """
        prefix = "r_flag" if flagged_only else "r_all"
        tops = st.get(f"{prefix}_tops")
        if tops is None:  # very first beacons of a run
            if st.get(f"{prefix}_costliest") in exclude:
                return float(st.get(f"{prefix}2", 0.0))
            return float(st.get(prefix, 0.0))
        for d, n in tops:
            if n not in exclude:
                return float(d)
        return 0.0

    def count_in_range(self, u: NodeId, radius: float) -> int:
        if radius <= 0.0:
            return 0
        dists = self.table.get(u).state.get("nbr_dists")
        if dists is None:
            return 0
        return bisect.bisect_right(dists, radius + 1e-12)

    def path_price(self, u: NodeId, v: NodeId, v_flag: bool, metric) -> float:
        """One-level telescoped form of the round model's chain walk.

        Beacons carry the pair (cost_flagged, cost_unflagged) each node
        derives from its parent's beacon, so lighting up a pruned branch
        is priced without any global knowledge.  When the candidate ``u``
        shares ``v``'s current parent, ``u``'s advertised cost embeds the
        parent's radius *with v attached*; the shared-parent correction
        below re-prices that marginal in the v-detached world (without it,
        sibling evaluations chase their own attachment and flip-flop
        forever — the DES analogue of GlobalView.path_price's exact walk).
        """
        if not getattr(metric, "path_couples_to_children", False):
            return self.state_of(u).cost
        st = self.table.get(u).state
        flagged_without_v = st.get("flag", False) and st.get("sole_flag_cause") != v
        if st.get("member", False):
            flagged_without_v = True
        if flagged_without_v:
            base = float(st["cost"])
        elif v_flag:
            base = float(st.get("cost_flagged", st["cost"]))
        else:
            base = float(st.get("cost_unflagged", st["cost"]))
        return base + self._shared_parent_correction(u, v, st, metric)

    def _shared_parent_correction(self, u: NodeId, v: NodeId, st_u: Dict, metric) -> float:
        """Re-price delta_p(u) without v when u and v share parent p."""
        p = st_u.get("parent")
        if p is None or p != self.my_state.parent:
            return 0.0
        info_p = self.table.get(p)
        info_u = self.table.get(u)
        if info_p is None or info_p.position is None or info_u.position is None:
            return 0.0
        st_p = info_p.state
        if not st_u.get("flag", False):
            return 0.0  # unflagged u imposed no marginal on p anyway
        d_pu = float(
            ((info_p.position[0] - info_u.position[0]) ** 2
             + (info_p.position[1] - info_u.position[1]) ** 2) ** 0.5
        )
        dists = st_p.get("nbr_dists") or []
        e_rx = metric.e_rx

        def cost_at(r: float) -> float:
            if r <= 0.0:
                return 0.0
            cnt = bisect.bisect_right(dists, r + 1e-12)
            return metric.etx(r) + cnt * e_rx

        def delta(r_wo: float) -> float:
            return cost_at(max(r_wo, d_pu)) - cost_at(r_wo)

        r_wo_u = self._radius_from_tops(st_p, (u,), flagged_only=True)
        r_wo_uv = self._radius_from_tops(st_p, (u, v), flagged_only=True)
        return delta(r_wo_uv) - delta(r_wo_u)


class SSSPSTAgent(MulticastAgent):
    """One SS-SPST-family node."""

    def __init__(
        self,
        node: Node,
        metric: CostMetric,
        config: Optional[SSSPSTConfig] = None,
        n_nodes: Optional[int] = None,
        group_id: int = 0,
    ) -> None:
        super().__init__(node, group_id)
        self.metric = metric
        self.config = config or SSSPSTConfig()
        self.n_nodes = n_nodes if n_nodes is not None else node.network.n
        self.table = NeighborTable(
            timeout=self.config.miss_factor * self.config.beacon_interval
        )
        self.oc_max = self._oc_max()
        self.h_max = self.n_nodes
        if self.is_source:
            self.state = NodeState(parent=None, cost=0.0, hop=0)
        else:
            self.state = NodeState(parent=None, cost=self.oc_max, hop=self.h_max)
        self.flag = self.is_member
        self._beacon_seq = 0
        self._timer: Optional[PeriodicTimer] = None
        self._hold_until = -1.0
        self.parent_changes = 0  # stability accounting (SS-SPST-F analysis)
        # Apply-style maintenance of the derived beacon-view structures
        # (mirroring GlobalView.apply in the round model): the children
        # map and the flagged-children set are patched as beacons arrive
        # and entries expire, instead of re-scanning the whole neighbor
        # table on every tick / radius query / flag refresh.
        self._child_infos: Dict[NodeId, NeighborInfo] = {}
        self._flagged_children: Set[NodeId] = set()

    # ------------------------------------------------------------------
    def _oc_max(self) -> float:
        """Scenario-constant OC_max (cf. metric.infinity for topologies)."""
        radio = self.network.radio
        per_node = self.metric.etx(radio.max_range) + self.n_nodes * self.metric.e_rx
        return (self.n_nodes + 1) * max(per_node, 1.0) + 1.0

    def start(self) -> None:
        interval = self.config.beacon_interval
        # Group 0 keeps the historical stream label draw-for-draw (the
        # single-group bit-identity contract); extra groups get their own
        # independent beacon substreams.
        if self.group_id == 0:
            stream = self.network.streams.derive("beacon", self.node.id)
        else:
            stream = self.network.streams.derive(
                "beacon", self.node.id, self.group_id
            )
        activation = self.config.activation
        if activation in ("distributed", "randomized"):
            # Historical default, draw-for-draw: random phase + jitter.
            jitter = self.config.beacon_jitter
            offset = float(stream.uniform(0.0, interval))
        elif activation == "weakly-fair":
            jitter = 0.5 * interval
            offset = float(stream.uniform(0.0, interval))
        elif activation == "synchronous":
            jitter = 0.0
            offset = 0.0
        else:  # central: id-order serialization across the interval
            jitter = 0.0
            offset = (self.node.id / max(self.n_nodes, 1)) * interval
        self._timer = PeriodicTimer(
            self.sim,
            interval,
            self._tick,
            jitter=jitter,
            rng=stream,
            start_offset=offset,
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def on_node_death(self) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Periodic behaviour
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.node.alive:
            return
        now = self.sim.now
        for nid in self.table.expire(now):
            self._sync_child(nid, None)
        if self.state.parent is not None and self.state.parent not in self.table:
            # Parent beacon missing: sensed disconnection (a fault).
            self._set_state(NodeState(None, self.oc_max, self.h_max))
        self._refresh_flag()
        self._run_rule()
        self._broadcast_beacon()

    def _sync_child(self, nid: NodeId, info: Optional[NeighborInfo]) -> None:
        """Patch the children/flag structures for one neighbor's new state
        (``info is None`` = the neighbor expired or was forgotten)."""
        if info is not None and info.state.get("parent") == self.node.id:
            self._child_infos[nid] = info
            if info.state.get("flag", False):
                self._flagged_children.add(nid)
            else:
                self._flagged_children.discard(nid)
        else:
            self._child_infos.pop(nid, None)
            self._flagged_children.discard(nid)

    def _children(self) -> List[NeighborInfo]:
        return list(self._child_infos.values())

    def _refresh_flag(self) -> None:
        self.flag = self.is_member or bool(self._flagged_children)

    def _run_rule(self) -> None:
        view = LocalView(self)
        new_state = compute_update_local(
            self.metric,
            view,
            self.node.id,
            is_root=self.is_source,
            h_max=self.h_max,
            oc_max=self.oc_max,
            hysteresis=self.config.switch_threshold,
        )
        # Hold-down: a *voluntary* switch away from a still-alive parent is
        # suppressed until the hold-down expires; disconnection (parent
        # expired, handled in _tick) and first joins always pass.
        voluntary = (
            new_state.parent != self.state.parent
            and self.state.parent is not None
            and self.state.parent in self.table
        )
        if voluntary and self.sim.now < self._hold_until:
            # Keep the incumbent but refresh cost/hop from the view.
            info = self.table.get(self.state.parent)
            if info is not None:
                oc = self.metric.join_cost(view, self.node.id, self.state.parent)
                hop = min(info.state["hop"] + 1, self.h_max)
                new_state = NodeState(self.state.parent, oc, hop)
        self._set_state(new_state)

    def _set_state(self, new_state: NodeState) -> None:
        if new_state.parent != self.state.parent:
            self.parent_changes += 1
            self._hold_until = self.sim.now + (
                self.config.hold_down_intervals * self.config.beacon_interval
            )
        self.state = new_state

    # ------------------------------------------------------------------
    # Beaconing
    # ------------------------------------------------------------------
    #: how many per-child (distance, id) entries a beacon carries for each
    #: radius list; removing any child not in the top entries cannot change
    #: the radius, so truncation stays exact for radius queries.
    TOPS = 4

    def _radius_bookkeeping(self) -> Dict[str, object]:
        """Radius bookkeeping over all / flagged children, from the table.

        Beacons advertise the top-``TOPS`` child distances (descending) for
        both child sets so neighbors can evaluate radii with *any* child
        excluded — needed both for fair incumbent comparisons and for the
        shared-parent price correction in :meth:`LocalView.path_price`.
        """
        pos = self.node.position
        all_pairs = []
        flag_pairs = []
        for info in self._children():
            d = info.distance_from(pos)
            all_pairs.append((d, info.node))
            if info.state.get("flag", False):
                flag_pairs.append((d, info.node))
        out: Dict[str, object] = {}
        for prefix, pairs in (("r_all", all_pairs), ("r_flag", flag_pairs)):
            pairs.sort(reverse=True)
            out[prefix] = pairs[0][0] if pairs else 0.0
            out[f"{prefix}2"] = pairs[1][0] if len(pairs) > 1 else 0.0
            out[f"{prefix}_costliest"] = pairs[0][1] if pairs else None
            out[f"{prefix}_tops"] = [(d, n) for d, n in pairs[: self.TOPS]]
        flagged_children = [n for _, n in flag_pairs]
        out["sole_flag_cause"] = (
            flagged_children[0]
            if (not self.is_member and len(flagged_children) == 1)
            else None
        )
        return out

    def _price_pair(self, book: Dict[str, object]) -> Dict[str, float]:
        """The telescoped (cost_flagged, cost_unflagged) pair for E."""
        if not self.metric.path_couples_to_children:
            return {}
        if self.is_source:
            return {"cost_flagged": 0.0, "cost_unflagged": 0.0}
        p = self.state.parent
        info = self.table.get(p) if p is not None else None
        if info is None:
            return {"cost_flagged": self.oc_max, "cost_unflagged": self.oc_max}
        st = info.state
        me = self.node.id
        p_flagged_wo_me = st.get("member", False) or (
            st.get("flag", False) and st.get("sole_flag_cause") != me
        )
        price_f = st["cost"] if p_flagged_wo_me else st.get("cost_flagged", st["cost"])
        price_u = st["cost"] if p_flagged_wo_me else st.get("cost_unflagged", st["cost"])
        # Parent's marginal for covering me when I am flagged.
        d = info.distance_from(self.node.position)
        r_wo = (
            st.get("r_flag2", 0.0)
            if st.get("r_flag_costliest") == me
            else st.get("r_flag", 0.0)
        )
        r_with = max(float(r_wo), d)
        dists = st.get("nbr_dists") or []
        cnt_with = bisect.bisect_right(dists, r_with + 1e-12)
        cnt_wo = bisect.bisect_right(dists, float(r_wo) + 1e-12) if r_wo > 0 else 0
        cost_at = lambda r, c: 0.0 if r <= 0 else self.metric.etx(r) + c * self.metric.e_rx
        delta = cost_at(r_with, cnt_with) - cost_at(float(r_wo), cnt_wo)
        return {
            "cost_flagged": float(price_f) + delta,
            "cost_unflagged": float(price_u),
        }

    def _beacon_size(self) -> int:
        return (
            BASE_BEACON_BYTES
            + self.metric.beacon_extra_bytes_fixed
            + self.metric.beacon_extra_bytes_per_neighbor * len(self.table)
        )

    def _broadcast_beacon(self) -> None:
        book = self._radius_bookkeeping()
        pos = self.node.position
        payload: Dict[str, object] = {
            "pos": (float(pos[0]), float(pos[1])),
            "parent": self.state.parent,
            "cost": self.state.cost,
            "hop": self.state.hop,
            "flag": self.flag,
            "member": self.is_member,
            **book,
            **self._price_pair(book),
        }
        if self.metric.beacon_extra_bytes_per_neighbor:
            dists = sorted(
                info.distance_from(pos) for _, info in self.table.items()
            )
            payload["nbr_dists"] = dists
        self.send_control(
            PacketKind.BEACON,
            self._beacon_size(),
            payload,
            seq=self._beacon_seq,
        )
        self._beacon_seq += 1

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> bool:
        if packet.group != self.group_id:
            return False  # another session's frames: overheard garbage
        if packet.kind is PacketKind.BEACON:
            info = self.table.update(
                packet.src,
                now=self.sim.now,
                position=np.asarray(packet.payload["pos"], dtype=float),
                state=packet.payload,
            )
            self._sync_child(packet.src, info)
            return True
        if packet.kind is PacketKind.DATA:
            return self._handle_data(packet)
        return False  # frames of other protocols: overheard garbage

    def _handle_data(self, packet: Packet) -> bool:
        if packet.src != self.state.parent:
            return False  # not from my parent: overhearing -> discard
        if self.dups.seen_before(packet.flow_key):
            return False
        useful = False
        if self.is_member:
            self.deliver_locally(packet)
            useful = True
        if self._forward_data(packet):
            useful = True
        return useful

    def _forward_data(self, packet: Packet) -> bool:
        radius = self._data_radius()
        if radius <= 0.0:
            return False
        self.node.send(packet.relay(self.node.id), radius)
        return True

    def _data_radius(self) -> float:
        """Power-controlled radius: farthest flagged child, with margin."""
        pos = self.node.position
        radius = 0.0
        for info in self._children():
            if info.state.get("flag", False):
                radius = max(radius, info.distance_from(pos))
        if radius <= 0.0:
            return 0.0
        return min(radius * (1.0 + self.config.range_margin), self.max_range)

    def _send_fresh_data(self, packet: Packet) -> None:
        radius = self._data_radius()
        if radius > 0.0:
            self.node.send(packet, radius)
