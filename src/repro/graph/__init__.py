"""Static graph layer: topologies, trees, reference constructions.

The self-stabilizing algorithms of :mod:`repro.core` run against an
abstract :class:`Topology` (nodes, weighted adjacency, multicast group),
which can come from geometric positions or from an explicit edge list (the
paper's worked example gives distances, not coordinates).

Also here: the static multicast-tree machinery used for validation —
tree representation/pruning (:mod:`repro.graph.tree`), classic reference
constructions (BIP/MIP, :mod:`repro.graph.bip`), and brute-force /
heuristic minimum-energy trees (:mod:`repro.graph.emin`) used to measure
how close SS-SPST-E gets to the optimum.
"""

from repro.graph.topology import Topology
from repro.graph.sparse import SparseTopology
from repro.graph.tree import TreeAssignment
from repro.graph.bip import bip_tree, mip_tree
from repro.graph.emin import (
    exhaustive_min_energy_tree,
    local_search_min_energy_tree,
)

__all__ = [
    "Topology",
    "SparseTopology",
    "TreeAssignment",
    "bip_tree",
    "mip_tree",
    "exhaustive_min_energy_tree",
    "local_search_min_energy_tree",
]
