"""Abstract network topology for the static/round-model algorithms.

A :class:`Topology` is an undirected graph ``G = (V, E)`` (paper section 5)
with Euclidean edge lengths, a designated multicast source (tree root) and
a set of group members.  It can be built from node positions + a radio
range, or from an explicit edge list with distances (the paper's Figure 1
gives edge distances only).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util.geometry import pairwise_distances
from repro.util.ids import NodeId

Edge = Tuple[NodeId, NodeId]


class Topology:
    """Undirected distance-weighted graph with multicast group info.

    Attributes
    ----------
    n:
        Number of nodes (ids are ``0..n-1``).
    dist:
        ``(n, n)`` matrix; ``np.inf`` where no edge, 0 on the diagonal.
    source:
        Multicast source / tree root.
    members:
        Multicast group (always includes the source).
    """

    def __init__(
        self,
        dist: np.ndarray,
        source: NodeId,
        members: Iterable[NodeId],
    ) -> None:
        dist = np.asarray(dist, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("dist must be square")
        if not np.allclose(dist, dist.T, equal_nan=True):
            raise ValueError("dist must be symmetric (undirected graph)")
        n = dist.shape[0]
        if not (0 <= source < n):
            raise ValueError("source out of range")
        off_diag = ~np.eye(n, dtype=bool)
        finite = np.isfinite(dist) & off_diag
        if np.any(dist[finite] <= 0):
            raise ValueError("edge distances must be positive")
        self.n = n
        self.dist = dist.copy()
        np.fill_diagonal(self.dist, 0.0)
        self.source = int(source)
        mem = {int(m) for m in members}
        for m in mem:
            if not (0 <= m < n):
                raise ValueError(f"member {m} out of range")
        mem.add(self.source)
        self.members: FrozenSet[NodeId] = frozenset(mem)
        self._adj: List[List[NodeId]] = [
            [int(j) for j in np.nonzero(finite[i])[0]] for i in range(n)
        ]
        self._sorted_nbr_dists: Optional[List[List[float]]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls,
        positions: np.ndarray,
        max_range: float,
        source: NodeId,
        members: Iterable[NodeId],
    ) -> "Topology":
        """Unit-disk graph: nodes within ``max_range`` are neighbors."""
        d = pairwise_distances(np.asarray(positions, dtype=float))
        out = d.copy()
        out[(d > max_range)] = np.inf
        np.fill_diagonal(out, 0.0)
        return cls(out, source, members)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Mapping[Edge, float],
        source: NodeId,
        members: Iterable[NodeId],
    ) -> "Topology":
        """Explicit edge list ``{(u, v): distance}``."""
        dist = np.full((n, n), np.inf)
        np.fill_diagonal(dist, 0.0)
        for (u, v), d in edges.items():
            if u == v:
                raise ValueError("self-loop")
            dist[u, v] = dist[v, u] = float(d)
        return cls(dist, source, members)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, v: NodeId) -> List[NodeId]:
        """Adjacent node ids of ``v``."""
        return self._adj[v]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u != v and np.isfinite(self.dist[u, v])

    def degree(self, v: NodeId) -> int:
        return len(self._adj[v])

    def neighbor_distances(self, v: NodeId) -> List[Tuple[NodeId, float]]:
        """``(neighbor, distance)`` pairs for ``v``."""
        return [(u, float(self.dist[v, u])) for u in self._adj[v]]

    def neighbors_within(self, v: NodeId, radius: float) -> List[NodeId]:
        """Graph neighbors of ``v`` no farther than ``radius``."""
        return [u for u in self._adj[v] if self.dist[v, u] <= radius + 1e-12]

    def count_within(self, v: NodeId, radius: float) -> int:
        """``len(neighbors_within(v, radius))`` in O(log deg).

        Pricing a chain under SS-SPST-E queries the in-range neighbor
        *count* at every ancestor; per-node sorted distance lists (built
        lazily on first use) turn each query into one bisection with the
        exact tolerance semantics of :meth:`neighbors_within`.
        """
        rows = self._sorted_nbr_dists
        if rows is None:
            rows = [
                sorted(float(self.dist[i, u]) for u in self._adj[i])
                for i in range(self.n)
            ]
            self._sorted_nbr_dists = rows
        return bisect_right(rows[v], radius + 1e-12)

    def is_connected(self) -> bool:
        """BFS connectivity over the whole node set."""
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in self._adj[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == self.n

    def bfs_hops(self, root: Optional[NodeId] = None) -> np.ndarray:
        """Hop distance from ``root`` (default: the source); inf if unreachable."""
        root = self.source if root is None else root
        hops = np.full(self.n, np.inf)
        hops[root] = 0
        frontier = [root]
        level = 0
        while frontier:
            level += 1
            nxt: List[NodeId] = []
            for v in frontier:
                for u in self._adj[v]:
                    if hops[u] == np.inf:
                        hops[u] = level
                        nxt.append(u)
            frontier = nxt
        return hops

    def to_networkx(self) -> "object":
        """Export as a :mod:`networkx` graph (distances as 'weight')."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for v in range(self.n):
            for u in self._adj[v]:
                if u > v:
                    g.add_edge(v, u, weight=float(self.dist[v, u]))
        return g

    @property
    def non_members(self) -> Set[NodeId]:
        return set(range(self.n)) - set(self.members)

    def __repr__(self) -> str:  # pragma: no cover
        n_edges = sum(len(a) for a in self._adj) // 2
        return (
            f"Topology(n={self.n}, edges={n_edges}, source={self.source}, "
            f"members={sorted(self.members)})"
        )
