"""Minimum-energy multicast tree search.

The paper's ``E_min`` constant — "the minimum possible value for the total
energy cost of the tree" — exists by definition but is NP-complete to
compute in general (section 1 cites the NP-completeness results).  For
validation we provide:

* :func:`exhaustive_min_energy_tree` — exact optimum by enumerating rooted
  spanning trees (feasible for ~10 nodes; used to check how tight the
  Lemma-2 fixpoint is on the worked example);
* :func:`local_search_min_energy_tree` — a REMiT-style parent-switching
  local search usable at evaluation scale.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, TYPE_CHECKING, Tuple

from repro.graph.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.metrics import CostMetric
from repro.graph.tree import TreeAssignment
from repro.util.ids import NodeId


def _rooted_parents(
    topo: Topology, tree_edges: Iterable[Tuple[NodeId, NodeId]]
) -> List[Optional[NodeId]]:
    """Orient an undirected spanning tree away from the source."""
    adj = {v: [] for v in range(topo.n)}
    for u, v in tree_edges:
        adj[u].append(v)
        adj[v].append(u)
    parents: List[Optional[NodeId]] = [None] * topo.n
    seen = {topo.source}
    stack = [topo.source]
    while stack:
        u = stack.pop()
        for w in adj[u]:
            if w not in seen:
                seen.add(w)
                parents[w] = u
                stack.append(w)
    return parents


def exhaustive_min_energy_tree(
    topo: Topology,
    metric: "CostMetric",
    max_trees: int = 2_000_000,
) -> Tuple[TreeAssignment, float]:
    """Exact minimum-cost spanning tree under ``metric`` (small graphs only).

    Enumerates spanning trees with :mod:`networkx`; raises if the graph has
    more than ``max_trees`` spanning trees to enumerate.
    """
    import networkx as nx

    g = topo.to_networkx()
    if not topo.is_connected():
        raise ValueError("exhaustive search requires a connected topology")
    best: Optional[Tuple[float, TreeAssignment]] = None
    count = 0
    for st in nx.SpanningTreeIterator(g):
        count += 1
        if count > max_trees:
            raise RuntimeError(f"more than {max_trees} spanning trees")
        parents = _rooted_parents(topo, st.edges())
        tree = TreeAssignment(topo, parents)
        cost = metric.tree_cost(topo, tree)
        if best is None or cost < best[0]:
            best = (cost, tree)
    assert best is not None
    return best[1], best[0]


def local_search_min_energy_tree(
    topo: Topology,
    metric: "CostMetric",
    start: Optional[TreeAssignment] = None,
    max_iters: int = 10_000,
) -> Tuple[TreeAssignment, float]:
    """Greedy parent-switching local search (S-REMiT style refinement).

    From a starting tree (default: BFS/hop tree), repeatedly apply the
    single parent switch that most reduces total cost, until no switch
    improves.  Returns a local optimum.
    """
    if start is None:
        hops = topo.bfs_hops()
        parents: List[Optional[NodeId]] = [None] * topo.n
        for v in range(topo.n):
            if v == topo.source:
                continue
            candidates = [u for u in topo.neighbors(v) if hops[u] == hops[v] - 1]
            if candidates:
                parents[v] = min(candidates)
        start = TreeAssignment(topo, parents)

    current = start
    cost = metric.tree_cost(topo, current)
    for _ in range(max_iters):
        best_move: Optional[Tuple[float, TreeAssignment]] = None
        for v in range(topo.n):
            if v == topo.source:
                continue
            for u in topo.neighbors(v):
                if u == current.parents[v]:
                    continue
                trial_parents = list(current.parents)
                trial_parents[v] = u
                try:
                    trial = TreeAssignment(topo, trial_parents)
                except ValueError:  # would create a cycle
                    continue
                trial_cost = metric.tree_cost(topo, trial)
                if trial_cost < cost - 1e-15 and (
                    best_move is None or trial_cost < best_move[0]
                ):
                    best_move = (trial_cost, trial)
        if best_move is None:
            break
        cost, current = best_move
    return current, cost
