"""JSON import/export of realized scenarios (positions + groups).

Multi-group scenarios are worth sharing as artifacts: a reviewer can
re-run the exact node placement and group structure a figure came from
without re-deriving it through the RNG pipeline, and external tools can
generate scenario files for the simulator to consume.  The schema is
deliberately tiny and versioned::

    {
      "schema": 1,
      "arena": [750.0, 750.0],
      "positions": [[x0, y0], [x1, y1], ...],
      "groups": [{"gid": 0, "source": 0, "receivers": [3, 7, ...]}, ...],
      "meta": {...}            # free-form provenance (optional)
    }

:func:`dump_scenario` / :func:`load_scenario` round-trip exactly
(positions as float64, groups as a
:class:`~repro.groups.models.GroupSet`);
:func:`scenario_document` snapshots a
:class:`~repro.experiments.config.ScenarioConfig`'s realized t = 0
scenario through the same :func:`build_scenario_space` path both
backends use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

import numpy as np

from repro.groups.models import GroupSet, GroupSpec

#: scenario-document layout version written by :func:`dump_scenario`
SCENARIO_SCHEMA = 1


@dataclass
class ScenarioDocument:
    """One realized scenario: arena, t = 0 positions, group structure."""

    arena: tuple  # (width, height)
    positions: np.ndarray  # (n, 2) float64
    groups: GroupSet
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return int(self.positions.shape[0])


def _as_document_dict(doc: ScenarioDocument) -> Dict[str, Any]:
    return {
        "schema": SCENARIO_SCHEMA,
        "arena": [float(doc.arena[0]), float(doc.arena[1])],
        "positions": [[float(x), float(y)] for x, y in doc.positions],
        "groups": [
            {
                "gid": g.gid,
                "source": g.source,
                "receivers": list(g.receivers),
            }
            for g in doc.groups
        ],
        "meta": dict(doc.meta),
    }


def dump_scenario(path: str, doc: ScenarioDocument) -> None:
    """Write a scenario document as (stable, human-diffable) JSON."""
    payload = _as_document_dict(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def loads_scenario(text: str) -> ScenarioDocument:
    """Parse a scenario document from a JSON string."""
    raw = json.loads(text)
    schema = raw.get("schema")
    if schema != SCENARIO_SCHEMA:
        raise ValueError(
            f"unsupported scenario schema {schema!r} "
            f"(this build reads schema {SCENARIO_SCHEMA})"
        )
    positions = np.asarray(raw["positions"], dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must be an (n, 2) array")
    groups = GroupSet(
        groups=tuple(
            GroupSpec(
                gid=int(g["gid"]),
                source=int(g["source"]),
                receivers=tuple(int(r) for r in g["receivers"]),
            )
            for g in raw["groups"]
        )
    )
    n = positions.shape[0]
    for g in groups:
        bad = [v for v in g.members if v < 0 or v >= n]
        if bad:
            raise ValueError(
                f"group {g.gid} references node(s) {bad} outside 0..{n - 1}"
            )
    arena_raw: List[float] = list(raw["arena"])
    return ScenarioDocument(
        arena=(float(arena_raw[0]), float(arena_raw[1])),
        positions=positions,
        groups=groups,
        meta=dict(raw.get("meta", {})),
    )


def load_scenario(path: str) -> ScenarioDocument:
    """Read a scenario document written by :func:`dump_scenario`."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_scenario(fh.read())


def scenario_document(config: Any, meta: Union[Dict[str, Any], None] = None) -> ScenarioDocument:
    """Snapshot a ``ScenarioConfig``'s realized t = 0 scenario.

    Uses the identical :func:`build_scenario_space` construction path
    the DES runner and the rounds backend share, so the exported
    positions and groups are exactly what a run of that config sees.
    """
    from repro.experiments.scenario_models import build_scenario_space

    space = build_scenario_space(config)
    doc_meta: Dict[str, Any] = {
        "seed": config.seed,
        "n_nodes": config.n_nodes,
        "group_count": config.group_count,
    }
    if meta:
        doc_meta.update(meta)
    return ScenarioDocument(
        arena=(space.arena.width, space.arena.height),
        positions=np.asarray(space.mobility.positions(0.0), dtype=float).copy(),
        groups=space.groups,
        meta=doc_meta,
    )
