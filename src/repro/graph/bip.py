"""BIP / MIP reference tree constructions (Wieselthier et al., INFOCOM'00).

The paper cites BIP/MIP as the classical centralized heuristics for
energy-efficient broadcast/multicast trees; we implement them as a
reference point for the ablation benches (how close does distributed,
self-stabilizing SS-SPST-E come to a centralized construction?).

* **BIP** (Broadcast Incremental Power): grow a broadcast tree from the
  source, always adding the uncovered node with minimum *incremental*
  transmit power — exploiting the wireless multicast advantage (raising an
  existing transmitter's power only costs the difference).
* **MIP** (Multicast Incremental Power): build BIP, then prune branches
  with no group member (the "sweep" step of the original paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.energy.radio import RadioModel
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment
from repro.util.ids import NodeId


def bip_tree(topo: Topology, radio: RadioModel) -> TreeAssignment:
    """Broadcast Incremental Power spanning tree rooted at the source."""
    n = topo.n
    parents: List[Optional[NodeId]] = [None] * n
    in_tree = [False] * n
    in_tree[topo.source] = True
    radius = [0.0] * n  # current power-controlled radius of each tree node

    for _ in range(n - 1):
        best = None  # (incremental_cost, tie_id, parent, child, new_radius)
        for u in range(n):
            if not in_tree[u]:
                continue
            for v in topo.neighbors(u):
                if in_tree[v]:
                    continue
                d = float(topo.dist[u, v])
                inc = radio.tx_cost_per_bit(d) - (
                    radio.tx_cost_per_bit(radius[u]) if radius[u] > 0 else 0.0
                )
                inc = max(inc, 0.0)
                key = (inc, v, u)
                if best is None or key < best[:3]:
                    best = (inc, v, u, d)
        if best is None:
            break  # disconnected remainder
        _, v, u, d = best
        parents[v] = u
        in_tree[v] = True
        radius[u] = max(radius[u], d)
    return TreeAssignment(topo, parents)


def mip_tree(topo: Topology, radio: RadioModel) -> TreeAssignment:
    """Multicast Incremental Power: BIP followed by non-member pruning.

    Nodes pruned from the data tree keep their parent pointers (they still
    belong to the spanning structure, as in SS-SPST's logical pruning), but
    the returned assignment drops subtrees that contain no member *and*
    hang below a member-free branch — matching MIP's sweep, which removes
    them from the transmission schedule entirely.
    """
    base = bip_tree(topo, radio)
    flags = base.flags()
    parents: List[Optional[NodeId]] = list(base.parents)
    for v in range(topo.n):
        if not flags[v] and parents[v] is not None:
            # Member-free subtree roots are detached from the data tree.
            parent = parents[v]
            if parent is not None and not flags[v]:
                parents[v] = None if v != topo.source else None
    # Re-validate: detached nodes are simply disconnected in the result.
    return TreeAssignment(topo, parents)
