"""Rooted multicast tree representation with bottom-up pruning.

A tree is a parent assignment over a topology.  Pruning (paper section 2)
marks the nodes that have a group member in their subtree ("flag"); the
pruned tree is the part that actually carries data: a node forwards only if
it has at least one flagged child.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.topology import Topology
from repro.util.ids import NodeId


class TreeAssignment:
    """Parent pointers over a :class:`Topology`, validated to be a tree.

    ``parents[v]`` is ``None`` for the root and for disconnected nodes.
    """

    def __init__(self, topo: Topology, parents: Sequence[Optional[NodeId]]) -> None:
        if len(parents) != topo.n:
            raise ValueError("parents length mismatch")
        if parents[topo.source] is not None:
            raise ValueError("the source must have no parent")
        for v, p in enumerate(parents):
            if p is not None and not topo.has_edge(v, p):
                raise ValueError(f"parent edge {v}->{p} not in the topology")
        self.topo = topo
        self.parents: List[Optional[NodeId]] = [
            None if p is None else int(p) for p in parents
        ]
        self._children: Optional[Dict[NodeId, List[NodeId]]] = None
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for v in range(self.topo.n):
            seen = set()
            cur: Optional[NodeId] = v
            while cur is not None:
                if cur in seen:
                    raise ValueError(f"cycle through node {cur}")
                seen.add(cur)
                cur = self.parents[cur]

    # ------------------------------------------------------------------
    def children(self) -> Dict[NodeId, List[NodeId]]:
        """Map node -> sorted list of children (cached)."""
        if self._children is None:
            ch: Dict[NodeId, List[NodeId]] = {v: [] for v in range(self.topo.n)}
            for v, p in enumerate(self.parents):
                if p is not None:
                    ch[p].append(v)
            for lst in ch.values():
                lst.sort()
            self._children = ch
        return self._children

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Tree edges as ``(parent, child)`` pairs."""
        return [(p, v) for v, p in enumerate(self.parents) if p is not None]

    def connected_nodes(self) -> Set[NodeId]:
        """Nodes with a parent chain reaching the source."""
        ok: Set[NodeId] = {self.topo.source}
        for v in range(self.topo.n):
            chain = []
            cur: Optional[NodeId] = v
            while cur is not None and cur not in ok:
                chain.append(cur)
                cur = self.parents[cur]
            if cur is not None:  # chain reached a node already known connected
                ok.update(chain)
        return ok

    def spans_all(self) -> bool:
        """True if every node is connected to the source."""
        return len(self.connected_nodes()) == self.topo.n

    def spans_members(self) -> bool:
        """True if every group member is connected to the source."""
        return self.topo.members <= self.connected_nodes()

    # ------------------------------------------------------------------
    def depth(self, v: NodeId) -> int:
        """Hop distance from ``v`` up to the root (or its chain end)."""
        d = 0
        cur = self.parents[v]
        while cur is not None:
            d += 1
            cur = self.parents[cur]
        return d

    def max_depth(self) -> int:
        """Tree height in hops."""
        return max(self.depth(v) for v in range(self.topo.n))

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def flags(self) -> np.ndarray:
        """Bottom-up member flags: flag[v] iff v's subtree holds a member.

        This is the flag SS-SPST gathers "in a bottom-up manner from the
        leaf node to the root node" (section 2).
        """
        members = self.topo.members
        flag = np.zeros(self.topo.n, dtype=bool)
        order = sorted(range(self.topo.n), key=self.depth, reverse=True)
        ch = self.children()
        for v in order:
            flag[v] = (v in members) or any(flag[c] for c in ch[v])
        return flag

    def flagged_children(self) -> Dict[NodeId, List[NodeId]]:
        """Children carrying a member in their subtree (data receivers)."""
        flag = self.flags()
        return {
            v: [c for c in cs if flag[c]] for v, cs in self.children().items()
        }

    def forwarding_nodes(self) -> Set[NodeId]:
        """Nodes that transmit data in the pruned tree."""
        fc = self.flagged_children()
        return {v for v, cs in fc.items() if cs}

    def data_tx_radius(self, v: NodeId) -> float:
        """Power-controlled data range for ``v``: farthest flagged child."""
        fc = self.flagged_children().get(v, [])
        if not fc:
            return 0.0
        return max(float(self.topo.dist[v, c]) for c in fc)

    # ------------------------------------------------------------------
    def path_to_root(self, v: NodeId) -> List[NodeId]:
        """Node sequence from ``v`` to the root (inclusive)."""
        path = [v]
        cur = self.parents[v]
        while cur is not None:
            path.append(cur)
            cur = self.parents[cur]
        return path

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeAssignment):
            return NotImplemented
        return self.parents == other.parents and self.topo is other.topo

    def __repr__(self) -> str:  # pragma: no cover
        return f"TreeAssignment({self.parents})"
