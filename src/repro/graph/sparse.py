"""Adjacency-list topology for deep-scale round-model studies.

The base :class:`~repro.graph.topology.Topology` stores a dense ``(n, n)``
distance matrix — 800 MB of float64 at n = 10^4, unbuildable at 10^5.
:class:`SparseTopology` keeps the same query interface over CSR adjacency
arrays: geometric deployments are sparse (expected degree is set by the
radio range, not by ``n``), so memory and construction go from O(n^2)
to O(n + E).

Compatibility notes:

* ``topo.dist`` stays readable *per pair* — every consumer in the
  codebase indexes it as ``dist[u, v]``, which :class:`_SparseDist`
  answers by binary search (``inf`` for a non-edge, ``0.0`` on the
  diagonal, exactly like the dense matrix).  Whole-matrix scans are not
  supported; the one former scanner (``CostMetric.infinity``) now asks
  for :attr:`max_edge_dist` first.
* Tolerance semantics are identical: range queries use the same
  ``radius + 1e-12`` key as the dense ``count_within``/
  ``neighbors_within``, so both topology classes feed bit-identical
  values to the engines.
* :meth:`csr_arrays` hands the adjacency arrays to
  :class:`~repro.core.array_engine.EdgeCsr` without another O(E) Python
  pass (the array engine is the intended companion at this scale).
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.topology import Topology
from repro.util.ids import NodeId


class _SparseDist:
    """Pair-indexable stand-in for the dense distance matrix."""

    __slots__ = ("_indptr", "_nbr", "_dist")

    def __init__(self, indptr: np.ndarray, nbr: np.ndarray, dist: np.ndarray) -> None:
        self._indptr = indptr
        self._nbr = nbr
        self._dist = dist

    def __getitem__(self, key: Tuple[int, int]) -> float:
        u, v = key
        if u == v:
            return 0.0
        i0, i1 = int(self._indptr[u]), int(self._indptr[u + 1])
        i = i0 + int(np.searchsorted(self._nbr[i0:i1], v))
        if i < i1 and int(self._nbr[i]) == v:
            return float(self._dist[i])
        return math.inf


def _geometric_edges(
    pos: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit-disk edge discovery over explicit coordinates.

    Returns canonical (id-sorted) CSR arrays ``(indptr, nbr, dist)``.
    Grid bucketing keeps it at O(n * expected degree): candidate pairs
    come only from the 3x3 cell neighborhood of each node, never from
    the full O(n^2) pair set.  The grid origin is the coordinate minimum
    (bucketing only *proposes* pairs; the ``d <= radius`` test decides,
    so the result is shift-invariant).

    Distances are the direct ``sqrt(sum((a - b)^2))`` — numerically
    *tighter* than the dense path's ``|x|^2 + |y|^2 - 2 x.y`` identity
    (:func:`repro.util.geometry.pairwise_distances`), so the two
    ``from_positions`` constructors agree to within one ulp per edge;
    they are not guaranteed bit-identical (BLAS GEMM rounding depends
    on the matrix shape, so the dense values cannot be reproduced from
    gathered pairs).
    """
    n = len(pos)
    rel = pos - pos.min(axis=0, keepdims=True)
    cell = np.floor(rel / radius).astype(np.int64)
    ncell = int(cell.max()) + 1 if n else 1
    cid = cell[:, 0] * ncell + cell[:, 1]
    order = np.argsort(cid, kind="stable")
    sorted_cid = cid[order]
    starts = np.searchsorted(sorted_cid, np.arange(ncell * ncell))
    ends = np.searchsorted(sorted_cid, np.arange(ncell * ncell), side="right")

    heads: List[np.ndarray] = []
    tails: List[np.ndarray] = []
    dists: List[np.ndarray] = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            a = cell[:, 0] + dx
            b = cell[:, 1] + dy
            ok = (a >= 0) & (a < ncell) & (b >= 0) & (b < ncell)
            if not ok.any():
                continue
            vs = np.flatnonzero(ok)
            nc = a[vs] * ncell + b[vs]
            cnts = ends[nc] - starts[nc]
            if int(cnts.sum()) == 0:
                continue
            reps = np.repeat(vs, cnts)
            offs = np.repeat(starts[nc], cnts) + (
                np.arange(int(cnts.sum()), dtype=np.int64)
                - np.repeat(
                    np.concatenate(([0], np.cumsum(cnts)[:-1])), cnts
                )
            )
            us = order[offs]
            keep = us != reps
            reps, us = reps[keep], us[keep]
            delta = pos[reps] - pos[us]
            d2 = np.einsum("ij,ij->i", delta, delta)
            d = np.sqrt(d2)
            keep = d <= radius
            heads.append(reps[keep])
            tails.append(us[keep])
            dists.append(d[keep])
    if heads:
        hv = np.concatenate(heads)
        tv = np.concatenate(tails)
        dv = np.concatenate(dists)
    else:  # pragma: no cover - degenerate field
        hv = tv = np.zeros(0, dtype=np.int64)
        dv = np.zeros(0, dtype=np.float64)
    o = np.lexsort((tv, hv))
    hv, tv, dv = hv[o], tv[o], dv[o]
    indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(hv, minlength=n)))
    ).astype(np.int64)
    return indptr, tv, dv


class SparseTopology(Topology):
    """CSR-backed :class:`Topology` (same queries, no dense matrix)."""

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        nbr: np.ndarray,
        ndist: np.ndarray,
        source: NodeId,
        members: Iterable[NodeId],
    ) -> None:
        # Deliberately does NOT call Topology.__init__ (which builds and
        # validates the dense matrix); it re-creates the same attribute
        # surface from the CSR arrays.
        self.n = int(n)
        if not (0 <= source < self.n):
            raise ValueError("source out of range")
        self.source = int(source)
        mem = {int(m) for m in members}
        for m in mem:
            if not (0 <= m < self.n):
                raise ValueError(f"member {m} out of range")
        mem.add(self.source)
        self.members: FrozenSet[NodeId] = frozenset(mem)

        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._nbr = np.asarray(nbr, dtype=np.int64)
        self._ndist = np.asarray(ndist, dtype=np.float64)
        if len(self._indptr) != self.n + 1:
            raise ValueError("indptr must have n+1 entries")
        if len(self._nbr) != len(self._ndist):
            raise ValueError("nbr and ndist must align")
        if self._ndist.size and float(self._ndist.min()) <= 0.0:
            raise ValueError("edge distances must be positive")
        # Rows must be id-sorted for the binary-search lookups.
        for v in range(self.n):
            row = self._nbr[self._indptr[v]:self._indptr[v + 1]]
            if row.size and np.any(np.diff(row) <= 0):
                raise ValueError("neighbor rows must be strictly id-sorted")
        self.dist = _SparseDist(self._indptr, self._nbr, self._ndist)
        self._adj: List[List[NodeId]] = [
            [int(u) for u in self._nbr[self._indptr[v]:self._indptr[v + 1]]]
            for v in range(self.n)
        ]
        # Per-row distance-sorted copies for O(log deg) range counting.
        rowid = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._indptr)
        )
        order = np.lexsort((self._ndist, rowid))
        self._sdist = self._ndist[order]
        self._sorted_nbr_dists = None  # base-class field, never built here
        #: largest edge length — the whole-matrix fact OC_max needs,
        #: precomputed so no consumer ever scans ``dist``.
        self.max_edge_dist: float = (
            float(self._ndist.max()) if self._ndist.size else 0.0
        )

    # ------------------------------------------------------------------
    @classmethod
    def random_geometric(
        cls,
        n: int,
        *,
        side: float = 1000.0,
        radius: float = 60.0,
        source: NodeId = 0,
        member_fraction: float = 0.25,
        seed: int = 0,
    ) -> "SparseTopology":
        """Uniform deployment on a ``side x side`` field, unit-disk edges.

        Grid bucketing keeps edge discovery at O(n * expected degree):
        candidate pairs come only from the 3x3 cell neighborhood of each
        node, never from the full O(n^2) pair set.
        """
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, side, size=(n, 2))
        indptr, tv, dv = _geometric_edges(pos, radius)
        members = rng.choice(n, size=max(1, int(n * member_fraction)), replace=False)
        return cls(n, indptr, tv, dv, source, members)

    @classmethod
    def from_positions(
        cls,
        positions: np.ndarray,
        max_range: float,
        source: NodeId,
        members: Iterable[NodeId],
    ) -> "SparseTopology":
        """Sparse counterpart of :meth:`Topology.from_positions`: the
        same unit-disk edge rule (``d <= max_range``) over explicit
        coordinates, stored as CSR instead of a dense matrix."""
        pos = np.asarray(positions, dtype=np.float64)
        n = len(pos)
        indptr, nbr, nd = _geometric_edges(pos, float(max_range))
        return cls(n, indptr, nbr, nd, source, members)

    # ------------------------------------------------------------------
    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, nbr, dist)`` for the array engine's :class:`EdgeCsr`."""
        return self._indptr, self._nbr, self._ndist

    # ------------------------------------------------------------------
    # Query overrides that would otherwise touch the dense matrix rowwise
    # ------------------------------------------------------------------
    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u != v and math.isfinite(self.dist[u, v])

    def neighbor_distances(self, v: NodeId) -> List[Tuple[NodeId, float]]:
        i0, i1 = int(self._indptr[v]), int(self._indptr[v + 1])
        return [
            (int(u), float(d))
            for u, d in zip(self._nbr[i0:i1], self._ndist[i0:i1])
        ]

    def neighbors_within(self, v: NodeId, radius: float) -> List[NodeId]:
        i0, i1 = int(self._indptr[v]), int(self._indptr[v + 1])
        key = radius + 1e-12
        return [
            int(u)
            for u, d in zip(self._nbr[i0:i1], self._ndist[i0:i1])
            if d <= key
        ]

    def count_within(self, v: NodeId, radius: float) -> int:
        i0, i1 = int(self._indptr[v]), int(self._indptr[v + 1])
        return int(
            np.searchsorted(self._sdist[i0:i1], radius + 1e-12, side="right")
        )

    def to_networkx(self) -> "object":
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for v in range(self.n):
            i0, i1 = int(self._indptr[v]), int(self._indptr[v + 1])
            for u, d in zip(self._nbr[i0:i1], self._ndist[i0:i1]):
                if int(u) > v:
                    g.add_edge(v, int(u), weight=float(d))
        return g

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SparseTopology(n={self.n}, edges={len(self._nbr) // 2}, "
            f"source={self.source}, members={len(self.members)})"
        )
