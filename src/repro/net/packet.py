"""Packet model.

Packets are broadcast frames: they carry the transmitting node, an origin
(the multicast source for data), a sequence number, a size in bytes (which
determines airtime and energy), and a free-form payload dict used by the
protocol agents.  ``PacketKind`` covers every frame type used by the six
protocols under study.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.util.ids import NodeId


class PacketKind(enum.Enum):
    """Frame types across all implemented protocols."""

    DATA = "data"  # multicast payload
    BEACON = "beacon"  # SS-SPST family periodic state broadcast
    RREQ = "rreq"  # MAODV route request (flooded)
    RREP = "rrep"  # MAODV route reply (unicast back)
    MACT = "mact"  # MAODV multicast activation
    GROUP_HELLO = "group_hello"  # MAODV group-leader hello
    JOIN_QUERY = "join_query"  # ODMRP source flood
    JOIN_REPLY = "join_reply"  # ODMRP receiver -> source path reply
    FLOOD = "flood"  # plain flooding reference protocol


CONTROL_KINDS = frozenset(k for k in PacketKind if k is not PacketKind.DATA)

_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_uid_counter)


@dataclass
class Packet:
    """One broadcast frame.

    Attributes
    ----------
    kind:
        Frame type.
    src:
        Transmitting node for this hop (re-set on each relay).
    origin:
        End-to-end originator (multicast source for DATA).
    seq:
        Originator-scoped sequence number (identifies the end-to-end packet
        across relays; relays keep ``(origin, seq)`` while ``uid`` changes).
    size_bytes:
        Frame size on air; drives airtime and energy.
    payload:
        Protocol-defined headers (beacon state, RREQ ids, ...).
    created_at:
        End-to-end creation time (preserved across relays for delay).
    group:
        Multicast session id (0 = the historical single group).  Frames
        from different groups share the medium and collide like any
        others; the tag only scopes *interpretation* — agents of group g
        ignore frames tagged for other groups.
    uid:
        Unique per-frame id (fresh for every transmission).
    """

    kind: PacketKind
    src: NodeId
    origin: NodeId
    seq: int
    size_bytes: int
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    group: int = 0
    uid: int = field(default_factory=_next_uid)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packets must have positive size")

    @property
    def bits(self) -> int:
        """Frame size in bits."""
        return self.size_bytes * 8

    @property
    def is_control(self) -> bool:
        """True for every frame type except DATA."""
        return self.kind is not PacketKind.DATA

    @property
    def traffic_class(self) -> str:
        """Energy-ledger class: 'data' or 'control'."""
        return "control" if self.is_control else "data"

    @property
    def flow_key(self) -> tuple:
        """End-to-end identity ``(origin, seq, kind, group)`` stable
        across relays."""
        return (self.origin, self.seq, self.kind, self.group)

    def relay(self, new_src: NodeId, extra_payload: Optional[Dict[str, Any]] = None) -> "Packet":
        """Clone this packet for retransmission by ``new_src``.

        End-to-end identity (origin, seq, created_at) is preserved; the
        frame gets a fresh ``uid`` and optionally updated headers.
        """
        payload = dict(self.payload)
        if extra_payload:
            payload.update(extra_payload)
        return Packet(
            kind=self.kind,
            src=new_src,
            origin=self.origin,
            seq=self.seq,
            size_bytes=self.size_bytes,
            payload=payload,
            created_at=self.created_at,
            group=self.group,
        )
