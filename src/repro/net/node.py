"""Nodes and the Network container.

A :class:`Network` owns the simulator, mobility model, radio model, medium
and all :class:`Node` objects; it is the single place positions are sampled
(cached per timestamp, vectorized).  A :class:`Node` is dumb plumbing:
energy ledger, battery, MAC, and a pluggable :class:`ProtocolAgent` that
implements actual behaviour.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.energy.battery import Battery
from repro.energy.ledger import EnergyLedger
from repro.energy.radio import RadioModel
from repro.mobility.base import MobilityModel
from repro.net.mac import CsmaMac, MacConfig
from repro.net.medium import WirelessMedium
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.util.geometry import pairwise_distances
from repro.util.ids import NodeId
from repro.util.rng import RngStreams


class ProtocolAgent(abc.ABC):
    """Protocol behaviour attached to a node.

    Concrete agents live in :mod:`repro.protocols`.  The contract:

    * :meth:`start` is called once at simulation start;
    * :meth:`handle_packet` is called for every successfully received frame
      and must return True if the frame was *useful* to this node, False if
      it was discarded (drives discard-energy accounting);
    * :meth:`stop` is called at teardown (cancel timers).
    """

    def __init__(self, node: "Node") -> None:
        self.node = node

    @property
    def network(self) -> "Network":
        return self.node.network

    @property
    def sim(self) -> Simulator:
        return self.node.network.sim

    @abc.abstractmethod
    def start(self) -> None: ...

    @abc.abstractmethod
    def handle_packet(self, packet: Packet) -> bool: ...

    def stop(self) -> None:  # pragma: no cover - default no-op
        pass

    def on_node_death(self) -> None:  # pragma: no cover - default no-op
        """Called if the node's battery depletes."""

    def on_membership_change(self) -> None:
        """Called when this node joins or leaves the multicast group
        mid-run (the ``rotating`` membership model).

        The default is a no-op: agents that read ``self.is_member`` live
        (SS-SPST flag derivation, ODMRP replies, flooding delivery) adapt
        automatically.  Agents that latch membership into timers at
        :meth:`start` (MAODV's rejoin clock) override this to
        start/stop that machinery.
        """


class Node:
    """One mobile host: identity, energy state, MAC, protocol agent."""

    def __init__(
        self,
        network: "Network",
        node_id: NodeId,
        mac_rng: np.random.Generator,
        battery_capacity_j: float = float("inf"),
    ) -> None:
        self.network = network
        self.id = node_id
        self.ledger = EnergyLedger()
        self.battery = Battery(battery_capacity_j, on_depleted=self._die)
        self.mac = CsmaMac(network, node_id, network.mac_config, mac_rng)
        self.agent: Optional[ProtocolAgent] = None
        self.alive = True
        self.tx_busy_until = 0.0
        self.is_member = False  # multicast group membership
        self.is_source = False

    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Current position (sampled through the network cache)."""
        return self.network.positions()[self.id]

    def send(self, packet: Packet, tx_range: float) -> None:
        """Hand a frame to the MAC for (jittered, carrier-sensed) broadcast."""
        if self.alive:
            self.mac.send(packet, tx_range)

    # ------------------------------------------------------------------
    # Energy plumbing (called by the medium)
    # ------------------------------------------------------------------
    def charge_tx(self, joules: float, packet: Packet) -> None:
        self.ledger.charge("tx", packet.traffic_class, joules)
        self.battery.draw(joules)

    def charge_rx(self, joules: float, packet: Packet) -> None:
        self.ledger.charge("rx", packet.traffic_class, joules)
        self.battery.draw(joules)

    def reclassify_discard(self, joules: float, packet: Packet) -> None:
        self.ledger.reclassify_rx_as_discard(packet.traffic_class, joules)

    def deliver(self, packet: Packet, rx_joules: float) -> None:
        """Deliver a clean frame to the agent; refile energy if discarded."""
        if self.agent is None:
            self.reclassify_discard(rx_joules, packet)
            return
        useful = self.agent.handle_packet(packet)
        if not useful:
            self.reclassify_discard(rx_joules, packet)

    # ------------------------------------------------------------------
    def _die(self) -> None:
        if self.alive:
            self.alive = False
            if self.agent is not None:
                self.agent.on_node_death()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = "".join(
            c
            for c, on in (("S", self.is_source), ("M", self.is_member))
            if on
        )
        return f"Node({self.id}{' ' + flags if flags else ''})"


class Network:
    """The complete simulated network.

    Parameters
    ----------
    sim:
        The discrete-event kernel.
    mobility:
        Position process for all nodes.
    radio:
        Energy/range model shared by all nodes.
    streams:
        Root RNG streams (MAC jitter and loss draw from substreams).
    mac_config:
        MAC tuning (jitter, backoff).
    bitrate_bps / loss_prob:
        Channel parameters forwarded to :class:`WirelessMedium`.
    battery_capacity_j:
        Per-node battery (infinite by default, as in the paper).
    """

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        radio: RadioModel,
        streams: RngStreams,
        mac_config: Optional[MacConfig] = None,
        bitrate_bps: float = 2_000_000.0,
        loss_prob: float = 0.0,
        battery_capacity_j: float = float("inf"),
        capture_threshold: float = 10.0,
    ) -> None:
        self.sim = sim
        self.mobility = mobility
        self.radio = radio
        self.streams = streams
        self.mac_config = mac_config or MacConfig()
        self.medium = WirelessMedium(
            self,
            bitrate_bps=bitrate_bps,
            loss_prob=loss_prob,
            rng=streams.get("medium.loss") if loss_prob > 0 else None,
            capture_threshold=capture_threshold,
        )
        self.nodes: List[Node] = [
            Node(
                self,
                i,
                mac_rng=streams.derive("mac", i),
                battery_capacity_j=battery_capacity_j,
            )
            for i in range(mobility.n)
        ]
        self._pos_cache_t = -1.0
        self._pos_cache: Optional[np.ndarray] = None
        # multi-group side tables (repro.groups).  Group 0 stays on the
        # historical per-node flags; groups 1..k-1 live here only.
        self.groups: list = []
        self._group_sources: Dict[int, NodeId] = {}
        self._group_receivers: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.nodes)

    def positions(self) -> np.ndarray:
        """All node positions at the current instant (cached per timestamp)."""
        now = self.sim.now
        if self._pos_cache is None or self._pos_cache_t != now:
            self._pos_cache = self.mobility.positions(now).copy()
            self._pos_cache_t = now
        return self._pos_cache

    def distance_matrix(self) -> np.ndarray:
        """Pairwise distances at the current instant."""
        return pairwise_distances(self.positions())

    def adjacency(self, radius: Optional[float] = None) -> np.ndarray:
        """Boolean connectivity at max power (or a given radius)."""
        r = self.radio.max_range if radius is None else radius
        d = self.distance_matrix()
        adj = (d <= r) & (d > 0.0)
        alive = np.array([nd.alive for nd in self.nodes])
        adj &= alive[:, None] & alive[None, :]
        return adj

    # ------------------------------------------------------------------
    def set_group(self, source: NodeId, members: Sequence[NodeId]) -> None:
        """Declare the multicast source and receiver membership."""
        for node in self.nodes:
            node.is_member = False
            node.is_source = False
        self.nodes[source].is_source = True
        self.nodes[source].is_member = True
        for m in members:
            self.nodes[m].is_member = True

    def set_groups(self, groups) -> None:
        """Declare k concurrent multicast groups (``GroupSpec`` sequence).

        Group 0 is installed through :meth:`set_group` — the per-node
        ``is_member``/``is_source`` flags every single-group code path
        reads — so a one-group call is indistinguishable from the
        historical API.  Groups 1..k-1 go into side tables consulted by
        the per-group query methods below.
        """
        groups = list(groups)
        if not groups or groups[0].gid != 0:
            raise ValueError("set_groups needs group 0 first")
        self.groups = groups
        self.set_group(groups[0].source, groups[0].receivers)
        self._group_sources = {g.gid: g.source for g in groups}
        self._group_receivers = {
            g.gid: frozenset(g.receivers) for g in groups
        }

    def group_source_of(self, gid: int) -> NodeId:
        """The source node of group ``gid`` (0 = the historical group)."""
        if gid == 0 and not self._group_sources:
            return self.source
        return self._group_sources[gid]

    def group_receivers_of(self, gid: int) -> frozenset:
        """Receiver set of group ``gid`` (source excluded)."""
        if gid == 0 and not self._group_receivers:
            return frozenset(self.receivers)
        return self._group_receivers[gid]

    def is_group_member(self, gid: int, v: NodeId) -> bool:
        """Membership (source or receiver) of node ``v`` in group ``gid``.

        Group 0 delegates to the live per-node flags so mid-run churn
        (the ``rotating`` membership model) stays visible.
        """
        if gid == 0:
            return self.nodes[v].is_member
        return v == self._group_sources[gid] or v in self._group_receivers[gid]

    def is_group_source(self, gid: int, v: NodeId) -> bool:
        """Whether node ``v`` sources group ``gid``."""
        if gid == 0:
            return self.nodes[v].is_source
        return v == self._group_sources[gid]

    def update_membership(
        self, joins: Sequence[NodeId] = (), leaves: Sequence[NodeId] = ()
    ) -> None:
        """Apply mid-run group churn (the ``rotating`` membership model).

        The source can never leave (the session is rooted there); changed
        nodes get their agent's :meth:`ProtocolAgent.on_membership_change`
        hook so membership-latched timers can react.
        """
        changed = []
        for v in leaves:
            if self.nodes[v].is_source:
                raise ValueError("the multicast source cannot leave the group")
            if self.nodes[v].is_member:
                self.nodes[v].is_member = False
                changed.append(v)
        for v in joins:
            if not self.nodes[v].is_member:
                self.nodes[v].is_member = True
                changed.append(v)
        for v in changed:
            agent = self.nodes[v].agent
            if agent is not None:
                agent.on_membership_change()

    @property
    def members(self) -> Set[NodeId]:
        return {nd.id for nd in self.nodes if nd.is_member}

    @property
    def source(self) -> NodeId:
        for nd in self.nodes:
            if nd.is_source:
                return nd.id
        raise RuntimeError("no multicast source declared")

    @property
    def receivers(self) -> Set[NodeId]:
        """Group members excluding the source."""
        return {nd.id for nd in self.nodes if nd.is_member and not nd.is_source}

    # ------------------------------------------------------------------
    def attach_agents(self, factory) -> None:
        """Create an agent per node via ``factory(node) -> ProtocolAgent``."""
        for node in self.nodes:
            node.agent = factory(node)

    def start(self) -> None:
        """Start every agent."""
        for node in self.nodes:
            if node.agent is not None:
                node.agent.start()

    def stop(self) -> None:
        """Stop every agent (cancel timers)."""
        for node in self.nodes:
            if node.agent is not None:
                node.agent.stop()

    def total_energy(self) -> float:
        """Network-wide joules across every node and bucket."""
        return sum(nd.ledger.total for nd in self.nodes)
