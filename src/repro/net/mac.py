"""CSMA-style medium access with transmit jitter.

Broadcast MANET protocols suffer synchronized-flood collisions; real stacks
mitigate with carrier sense plus randomized deferral.  :class:`CsmaMac`
implements the standard simplification: before transmitting, wait a random
jitter; if the carrier is busy, back off uniformly and retry up to
``max_attempts`` times; serialize a node's own frames (half duplex).

This captures the contention behaviour the paper's ns-2 802.11 MAC produced
(losses growing with offered load / flooding redundancy) without modelling
DCF slot timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Network


@dataclass(frozen=True)
class MacConfig:
    """MAC tuning knobs.

    jitter_max:
        Uniform transmit jitter in seconds applied to every frame (0
        disables; protocols relaying a flood should keep this > 0).
    backoff_max:
        Upper bound of the uniform retry backoff when carrier is busy
        (scaled by the attempt number: congestion builds real queueing
        delay instead of silently shedding frames).
    max_attempts:
        Total send attempts before the frame is dropped at the MAC.
    max_age:
        Frames older than this (since the MAC accepted them) are dropped —
        the bounded interface-queue lifetime.
    """

    jitter_max: float = 0.008
    backoff_max: float = 0.012
    max_attempts: int = 12
    max_age: float = 0.25

    def __post_init__(self) -> None:
        if self.jitter_max < 0 or self.backoff_max <= 0 or self.max_attempts < 1:
            raise ValueError("invalid MAC configuration")
        if self.max_age <= 0:
            raise ValueError("max_age must be positive")


class CsmaMac:
    """Per-node MAC entity."""

    def __init__(
        self,
        network: "Network",
        node_id: int,
        config: MacConfig,
        rng: np.random.Generator,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.frames_dropped = 0
        self.frames_sent = 0

    # ------------------------------------------------------------------
    def send(self, packet: Packet, tx_range: float) -> None:
        """Queue a frame for transmission with jitter + carrier sense."""
        delay = (
            float(self.rng.uniform(0.0, self.config.jitter_max))
            if self.config.jitter_max > 0
            else 0.0
        )
        accepted_at = self.network.sim.now
        self.network.sim.schedule(
            delay, self._attempt, packet, tx_range, 1, accepted_at
        )

    def _attempt(
        self, packet: Packet, tx_range: float, attempt: int, accepted_at: float
    ) -> None:
        net = self.network
        node = net.nodes[self.node_id]
        if not node.alive:
            return
        now = net.sim.now
        if now - accepted_at > self.config.max_age:
            self.frames_dropped += 1
            return
        busy = net.medium.carrier_busy(self.node_id) or node.tx_busy_until > now
        if busy:
            if attempt >= self.config.max_attempts:
                self.frames_dropped += 1
                return
            backoff = float(self.rng.uniform(0.0, self.config.backoff_max)) * attempt
            net.sim.schedule(
                backoff, self._attempt, packet, tx_range, attempt + 1, accepted_at
            )
            return
        self.frames_sent += 1
        net.medium.broadcast(self.node_id, packet, tx_range)
