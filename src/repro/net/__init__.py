"""Wireless network substrate: packets, medium, MAC, nodes.

This replaces the ns-2 PHY/MAC/agent plumbing the paper's evaluation ran
on.  The model (see DESIGN.md section 4 for the substitution argument):

* **Broadcast medium with power control** — a transmission at range ``r``
  reaches every alive node within ``r`` of the sender (wireless multicast
  advantage); the sender pays energy for range ``r``; *every* node in range
  pays reception energy whether or not the packet was meant for it
  (overhearing -> discard energy).
* **Collisions** — receptions overlapping in time at a receiver corrupt
  each other; half-duplex nodes cannot receive while transmitting.
* **CSMA MAC** — senders defer while they can hear an ongoing transmission
  and retry after a random backoff, with a transmit jitter that
  de-synchronizes flooding storms.
* **Optional uniform packet loss** models residual channel error.
"""

from repro.net.packet import Packet, PacketKind, CONTROL_KINDS
from repro.net.medium import WirelessMedium, Transmission
from repro.net.mac import CsmaMac, MacConfig
from repro.net.node import Node, Network, ProtocolAgent
from repro.net.neighbors import NeighborTable, NeighborInfo

__all__ = [
    "Packet",
    "PacketKind",
    "CONTROL_KINDS",
    "WirelessMedium",
    "Transmission",
    "CsmaMac",
    "MacConfig",
    "Node",
    "Network",
    "ProtocolAgent",
    "NeighborTable",
    "NeighborInfo",
]
