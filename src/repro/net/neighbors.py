"""Soft-state neighbor tables.

Beacon-driven protocols learn their neighborhood from received frames.
Each entry records when the neighbor was last heard, the sender's position
at transmit time (beacons carry coordinates, which is how nodes estimate
link distances / transmission energies), and the protocol state advertised
in the beacon.  Entries expire after ``timeout`` seconds of silence —
"When beacon is not received from a node, all the neighboring nodes sense a
disconnection of the node" (section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.util.ids import NodeId


@dataclass
class NeighborInfo:
    """What one node knows about one neighbor."""

    node: NodeId
    last_heard: float
    position: Optional[np.ndarray] = None
    state: Dict[str, Any] = field(default_factory=dict)

    def distance_from(self, pos: np.ndarray) -> float:
        """Euclidean distance from ``pos`` to the advertised position."""
        if self.position is None:
            raise ValueError(f"neighbor {self.node} has no known position")
        return float(
            np.hypot(pos[0] - self.position[0], pos[1] - self.position[1])
        )


class NeighborTable:
    """Mapping of neighbor id -> :class:`NeighborInfo` with soft expiry."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = float(timeout)
        self._entries: Dict[NodeId, NeighborInfo] = {}

    # ------------------------------------------------------------------
    def update(
        self,
        node: NodeId,
        now: float,
        position: Optional[np.ndarray] = None,
        state: Optional[Dict[str, Any]] = None,
    ) -> NeighborInfo:
        """Refresh (or create) the entry for ``node``."""
        info = self._entries.get(node)
        if info is None:
            info = NeighborInfo(node=node, last_heard=now)
            self._entries[node] = info
        info.last_heard = now
        if position is not None:
            info.position = np.array(position, dtype=float)
        if state is not None:
            info.state = dict(state)
        return info

    def expire(self, now: float) -> List[NodeId]:
        """Drop entries silent for longer than ``timeout``; return them."""
        dead = [
            nid
            for nid, info in self._entries.items()
            if now - info.last_heard > self.timeout
        ]
        for nid in dead:
            del self._entries[nid]
        return dead

    def forget(self, node: NodeId) -> None:
        """Explicitly drop a neighbor (e.g. on observed link failure)."""
        self._entries.pop(node, None)

    # ------------------------------------------------------------------
    def get(self, node: NodeId) -> Optional[NeighborInfo]:
        return self._entries.get(node)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NeighborInfo]:
        return iter(list(self._entries.values()))

    def ids(self) -> List[NodeId]:
        """Current neighbor ids (unordered)."""
        return list(self._entries.keys())

    def items(self) -> List[Tuple[NodeId, NeighborInfo]]:
        return list(self._entries.items())
