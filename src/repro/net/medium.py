"""The shared wireless broadcast medium.

Semantics (section 3 of the paper): "When a node transmits (broadcasts) a
message, the nodes in its coverage area can (almost) simultaneously hear the
message."  A transmission is parameterized by its power-controlled range
``tx_range``; the sender is charged transmit energy for that range and every
alive node within it is charged reception energy.  Whether the reception
ends up *useful* or *discard* is decided by the receiving agent (see
:meth:`repro.net.node.Node.deliver`).

Collision model: a reception is corrupted if any other reception (or the
node's own transmission — half duplex) overlaps it in time.  Corrupted
frames still cost full reception energy (the radio listened) and are filed
as discard energy.  An optional i.i.d. loss probability models residual
channel error beyond collisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.net.packet import Packet
from repro.util.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Network


@dataclass
class Transmission:
    """An in-flight frame on the air."""

    sender: NodeId
    sender_pos: np.ndarray
    tx_range: float
    t_start: float
    t_end: float
    packet: Packet


@dataclass
class _Reception:
    """One receiver's view of an in-flight frame."""

    tx: Transmission
    receiver: NodeId
    rx_power: float = 0.0  # relative received power (capture comparisons)
    corrupted: bool = False


class MediumStats:
    """Medium-level counters (used by tests and the overhead metrics)."""

    __slots__ = (
        "frames_sent",
        "frames_delivered",
        "frames_collided",
        "frames_lost_random",
        "receptions_total",
    )

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost_random = 0
        self.receptions_total = 0


class WirelessMedium:
    """Shared broadcast channel with collisions and carrier sense.

    Parameters
    ----------
    network:
        Owning :class:`~repro.net.node.Network` (positions, nodes, radio).
    bitrate_bps:
        Channel bitrate; 2 Mb/s matches the 802.11 basic rate ns-2 used.
    loss_prob:
        Per-(frame, receiver) i.i.d. loss probability beyond collisions.
    rng:
        Generator for random loss.
    capture_threshold:
        Power-capture ratio (ns-2's ``CPThresh``, default 10): when two
        frames overlap at a receiver, the stronger survives if it exceeds
        the weaker by this factor.  With power control this matters a lot:
        a parent transmitting to a nearby child usually dominates a distant
        interferer, which is how ns-2 kept dense multicast trees deliverable.
    """

    def __init__(
        self,
        network: "Network",
        bitrate_bps: float = 2_000_000.0,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        capture_threshold: float = 10.0,
    ) -> None:
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if loss_prob > 0 and rng is None:
            raise ValueError("loss_prob requires an rng")
        if capture_threshold < 1.0:
            raise ValueError("capture_threshold must be >= 1")
        self.network = network
        self.bitrate_bps = float(bitrate_bps)
        self.loss_prob = float(loss_prob)
        self.rng = rng
        self.capture_threshold = float(capture_threshold)
        self.stats = MediumStats()
        self._active: List[Transmission] = []
        self._receptions: Dict[NodeId, List[_Reception]] = {}

    # ------------------------------------------------------------------
    def airtime(self, packet: Packet) -> float:
        """Seconds the frame occupies the channel."""
        return packet.bits / self.bitrate_bps

    def _prune(self, now: float) -> None:
        if self._active:
            self._active = [tx for tx in self._active if tx.t_end > now]

    # ------------------------------------------------------------------
    def carrier_busy(self, node: NodeId) -> bool:
        """Carrier sense: can ``node`` hear any ongoing transmission?"""
        now = self.network.sim.now
        self._prune(now)
        if not self._active:
            return False
        pos = self.network.positions()[node]
        for tx in self._active:
            if tx.sender == node:
                return True
            d = float(np.hypot(pos[0] - tx.sender_pos[0], pos[1] - tx.sender_pos[1]))
            if d <= tx.tx_range:
                return True
        return False

    # ------------------------------------------------------------------
    def broadcast(self, sender: NodeId, packet: Packet, tx_range: float) -> Transmission:
        """Put a frame on the air with power reaching ``tx_range``.

        Charges the sender, computes the receiver set from current
        positions, applies the collision/loss model, and schedules per-
        receiver delivery at the end of the airtime.
        """
        net = self.network
        sim = net.sim
        now = sim.now
        radio = net.radio
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        tx_range = min(tx_range, radio.max_range)

        sender_node = net.nodes[sender]
        if not sender_node.alive:
            raise RuntimeError(f"dead node {sender} cannot transmit")

        positions = net.positions().copy()  # freeze positions at tx start
        duration = self.airtime(packet)
        tx = Transmission(
            sender=sender,
            sender_pos=positions[sender].copy(),
            tx_range=float(tx_range),
            t_start=now,
            t_end=now + duration,
            packet=packet,
        )
        self._prune(now)
        self._active.append(tx)
        self.stats.frames_sent += 1
        hub = getattr(net, "hub", None)
        if hub is not None:
            hub.on_frame_sent(packet)

        # Sender pays for the power-controlled transmission.
        sender_node.charge_tx(radio.tx_energy(packet.bits, tx_range), packet)

        # Receiver set: alive nodes strictly within tx range (not sender).
        deltas = positions - tx.sender_pos
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        in_range = np.nonzero((dists <= tx_range) & (dists > 0.0))[0]

        for rid in in_range:
            rid = int(rid)
            node = net.nodes[rid]
            if not node.alive:
                continue
            d = max(float(dists[rid]), 1.0)
            # Relative received power: transmit power scales with the
            # power-controlled range^alpha, path loss with distance^alpha.
            rec = _Reception(tx=tx, receiver=rid, rx_power=(tx_range / d) ** 2)
            # Half duplex: receiver currently transmitting -> corrupted.
            if net.nodes[rid].tx_busy_until > now:
                rec.corrupted = True
            # Collisions with other in-flight receptions at this node,
            # subject to power capture (ns-2 CPThresh semantics).
            ongoing = self._receptions.setdefault(rid, [])
            cp = self.capture_threshold
            for other in ongoing:
                if other.tx.t_end > now:  # overlap in time
                    if rec.rx_power >= other.rx_power * cp:
                        other.corrupted = True  # we capture the receiver
                    elif other.rx_power >= rec.rx_power * cp:
                        rec.corrupted = True  # the ongoing frame dominates
                    else:
                        other.corrupted = True
                        rec.corrupted = True
            ongoing.append(rec)
            # Residual random loss.
            if not rec.corrupted and self.loss_prob > 0.0:
                if float(self.rng.random()) < self.loss_prob:
                    rec.corrupted = True
                    self.stats.frames_lost_random += 1
            sim.schedule(duration, self._complete_reception, rec)

        net.nodes[sender].tx_busy_until = max(
            net.nodes[sender].tx_busy_until, tx.t_end
        )
        return tx

    # ------------------------------------------------------------------
    def _complete_reception(self, rec: _Reception) -> None:
        net = self.network
        node = net.nodes[rec.receiver]
        lst = self._receptions.get(rec.receiver)
        if lst is not None:
            try:
                lst.remove(rec)
            except ValueError:  # pragma: no cover - defensive
                pass
        if not node.alive:
            return
        packet = rec.tx.packet
        self.stats.receptions_total += 1
        # The radio listened for the full frame either way.
        joules = net.radio.rx_energy(packet.bits)
        node.charge_rx(joules, packet)
        if rec.corrupted:
            self.stats.frames_collided += 1
            node.reclassify_discard(joules, packet)
            return
        self.stats.frames_delivered += 1
        node.deliver(packet, joules)
