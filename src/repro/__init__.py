"""repro — reproduction of "Energy-Aware Self-Stabilization in Mobile Ad
Hoc Networks: A Multicasting Case Study" (Mukherjee, Sridharan, Gupta —
IPDPS 2007).

Layout (see README.md / DESIGN.md):

* :mod:`repro.core` — the paper's contribution: the four tree-cost
  metrics (hop / T / F / E), the guarded self-stabilizing rule, round
  executors and the Lemma 1-3 machinery;
* :mod:`repro.protocols` — packet-level SS-SPST family plus the MAODV /
  ODMRP / flooding baselines;
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.mobility`,
  :mod:`repro.energy` — the simulation substrate (ns-2 replacement);
* :mod:`repro.experiments` — scenario runner, sweeps and one definition
  per evaluation figure (``FIGURES['fig07']..['fig16']``).

Quick start::

    from repro.experiments import ScenarioConfig, run_scenario
    summary = run_scenario(ScenarioConfig.quick(protocol="ss-spst-e")).summary
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "protocols",
    "sim",
    "net",
    "mobility",
    "energy",
    "graph",
    "traffic",
    "metrics",
    "experiments",
    "analysis",
    "util",
]
