"""Experiment harness: scenario configs, the runner, and one definition
per figure of the paper's evaluation (Figures 7-16).

Typical use::

    from repro.experiments import ScenarioConfig, run_scenario

    cfg = ScenarioConfig(protocol="ss-spst-e", v_max=5.0, seed=1)
    summary = run_scenario(cfg)
    print(summary.pdr, summary.energy_per_packet_mj)

or reproduce a whole figure::

    from repro.experiments.figures import FIGURES

    result = FIGURES["fig09"].run(quick=True)
    print(result.format_table())
"""

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario, RunResult
from repro.experiments.sweeps import Sweep, SweepResult, run_sweep
from repro.experiments.lifetime import LifetimeResult, compare_lifetimes, run_lifetime

__all__ = [
    "ScenarioConfig",
    "run_scenario",
    "RunResult",
    "Sweep",
    "SweepResult",
    "run_sweep",
    "LifetimeResult",
    "compare_lifetimes",
    "run_lifetime",
]
