"""Experiment harness: scenario configs, the runner, and one definition
per figure of the paper's evaluation (Figures 7-16).

Typical use::

    from repro.experiments import ScenarioConfig, run_scenario

    cfg = ScenarioConfig(protocol="ss-spst-e", v_max=5.0, seed=1)
    summary = run_scenario(cfg)
    print(summary.pdr, summary.energy_per_packet_mj)

or reproduce a whole figure::

    from repro.experiments.figures import FIGURES

    result = FIGURES["fig09"].run(quick=True)
    print(result.format_table())
"""

from repro.experiments.backends import (
    BACKEND_NAMES,
    ExperimentBackend,
    MetricSpec,
    backend_by_name,
    metric_extractor,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario, RunResult
from repro.experiments.scenario_models import (
    AXES,
    DEFAULT_MODELS,
    MODEL_NAMES,
    ScenarioModel,
    build_scenario_space,
    effective_arena,
    model_by_name,
)
from repro.experiments.sweeps import Sweep, SweepResult, run_sweep
from repro.experiments.lifetime import LifetimeResult, compare_lifetimes, run_lifetime
from repro.groups.models import GROUP_MODEL_NAMES, group_model_by_name

#: campaign-service exports resolved lazily (PEP 562) so that running the
#: CLI as ``python -m repro.experiments.campaign`` does not import the
#: module twice (once via this package, once as ``__main__``); mapped to
#: the layer module that owns each name (see docs/campaigns.md).
_LAZY_EXPORTS = {
    # spec / orchestration
    "CampaignSpec": "campaign",
    "CampaignResult": "campaign",
    "run_campaign": "campaign",
    "collect_campaign": "campaign",
    # store layer
    "ResultStore": "store",
    "ResultCache": "store",
    "JsonDirStore": "store",
    "SqliteStore": "store",
    "open_store": "store",
    "migrate_json_dir": "store",
    "config_key": "store",
    "shard_of": "store",
    # scheduler layer
    "Scheduler": "scheduler",
    "SerialScheduler": "scheduler",
    "PoolScheduler": "scheduler",
    "AsyncScheduler": "scheduler",
    "CancelCampaign": "scheduler",
    "scheduler_by_name": "scheduler",
    # aggregation layer
    "Welford": "aggregation",
    "StreamingAggregate": "aggregation",
    "CampaignStatus": "aggregation",
    "campaign_status": "aggregation",
    # service surface
    "CampaignService": "service",
}


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(
            f"repro.experiments.{_LAZY_EXPORTS[name]}"
        )
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BACKEND_NAMES",
    "ExperimentBackend",
    "MetricSpec",
    "backend_by_name",
    "metric_extractor",
    "ScenarioConfig",
    "run_scenario",
    "RunResult",
    "AXES",
    "DEFAULT_MODELS",
    "MODEL_NAMES",
    "ScenarioModel",
    "build_scenario_space",
    "effective_arena",
    "model_by_name",
    "GROUP_MODEL_NAMES",
    "group_model_by_name",
    "Sweep",
    "SweepResult",
    "run_sweep",
    "LifetimeResult",
    "compare_lifetimes",
    "run_lifetime",
    *_LAZY_EXPORTS,
]
