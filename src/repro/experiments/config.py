"""Scenario configuration.

Defaults mirror the paper's setup (section 6): 750 m x 750 m arena, 50
nodes, random way-point with non-zero minimum speed, one static multicast
group, one CBR source at 64 kbps, 2 s beacon interval, 1800 s of
simulated time.

``quick()`` produces a scaled-down variant (shorter run, lower data rate)
with the same *structure*, used by the benches so the whole figure suite
regenerates in minutes on a laptop; pass ``quick=False`` to the figure
definitions (or ``--paper`` to the campaign CLI) for paper-scale runs.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: recognized values of :attr:`ScenarioConfig.topology`
TOPOLOGY_NAMES = ("dense", "sparse")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one experiment.

    ``backend`` selects the executor realizing the config: ``"des"``
    (the packet-level discrete-event simulator) or ``"rounds"`` (the
    round-model stabilization engine) — see
    :mod:`repro.experiments.backends`.  Backend-specific constraints
    (e.g. which activation daemons are legal) are checked by the
    backend's ``validate``, invoked from ``__post_init__`` so invalid
    configs still fail at construction.

    **Scenario-model axes.**  Four registry-backed string fields select
    the scenario *structure* (:mod:`repro.experiments.scenario_models`);
    each is hash-neutral at its default (the paper's setup), so default
    configs keep their pre-redesign cache hashes:

    ``placement``
        Initial node positions — ``"uniform"`` (default), ``"grid"``
        (near-square lattice; param ``grid_jitter``),
        ``"gaussian-clusters"`` (hot-spots; params ``clusters``,
        ``cluster_sigma``), ``"edge-weighted"`` (perimeter-heavy; params
        ``edge_bias``, ``edge_margin_frac``).
    ``mobility``
        Position process — ``"waypoint"`` (default; Yoon–Liu–Noble fix,
        uses ``v_min``/``v_max``/``pause_time``), ``"gauss-markov"``
        (params ``gm_mean_speed`` — 0 means the midpoint of
        [``v_min``, ``v_max``] — ``gm_alpha``, ``gm_sigma_speed``,
        ``gm_sigma_dir``, ``gm_tick``), ``"random-walk"`` (param
        ``walk_mean_epoch``), ``"static"`` (a WANET: no movement),
        ``"trace"`` (replay a JSON waypoint file; required param
        ``trace_file``, placement must stay ``"uniform"``).
    ``membership``
        Multicast group construction — ``"static-random"`` (default:
        source 0 plus random receivers), ``"geographic-cluster"``
        (receivers nearest a random focus point), ``"rotating"``
        (static-random start, then one receiver leaves and one node
        joins every ``rotation_period`` seconds; DES runs get live
        join/leave events, the rounds backend replays the t = 0 group).
    ``traffic``
        Source workload (DES only; the rounds backend rejects
        non-default values) — ``"cbr"`` (default), ``"on-off"``
        (exponential bursts at the same average rate; params
        ``onoff_on_s``, ``onoff_off_s``), ``"multi-source"``
        (interleaved phase-shifted flows; param ``flows``).

    ``model_params`` carries the model-specific sub-parameters named
    above as a frozen, sorted ``(key, value)`` tuple (construct with a
    plain dict; ``--model-param key=value`` on the CLI).  Keys unknown
    to every registered model are rejected (typo safety; keys for models
    a grid axis selects per cell are fine on the base), and the field
    joins the config hash only when non-empty — default-model configs
    hash exactly as before the scenario API existed.
    """

    # protocol under test ("ss-spst", "ss-spst-t", "ss-spst-f",
    # "ss-spst-e", "maodv", "odmrp", "flooding")
    protocol: str = "ss-spst-e"

    # arena & population
    n_nodes: int = 50
    arena_w: float = 750.0
    arena_h: float = 750.0
    #: constant-density n-scaling: 0 (default) uses the arena verbatim;
    #: a positive value declares the arena to be sized for that many
    #: nodes and scales it by sqrt(n_nodes / density_ref_n), so an
    #: ``n_nodes`` sweep holds node density fixed (see
    #: :func:`repro.experiments.scenario_models.effective_arena`)
    density_ref_n: int = 0

    # scenario-model axes (see the class docstring / scenario_models)
    placement: str = "uniform"
    mobility: str = "waypoint"
    membership: str = "static-random"
    traffic: str = "cbr"
    #: frozen (key, value) pairs of model-specific sub-parameters;
    #: accepts a dict at construction and normalizes to a sorted tuple
    model_params: Tuple[Tuple[str, object], ...] = ()

    # mobility speed envelope (waypoint/random-walk; gauss-markov derives
    # its default mean speed from it).  v_min > 0 is the Noble fix.
    v_min: float = 1.0
    v_max: float = 5.0
    pause_time: float = 0.0

    # multicast group: source is node 0; receivers per the membership model
    group_size: int = 20  # receivers + source

    # concurrent multicast sessions (repro.groups).  group_count = 1 is
    # the paper's single group; k > 1 stabilizes k SS-SPST trees over
    # one contended network.  Group 0 is always the historical group
    # (source 0 plus the membership model's receivers, drawn from the
    # historical "group" substream); groups 1..k-1 come from the
    # group-size / overlap generators below, drawing only from the
    # per-group "groups.<gid>" substreams — so a single-group config is
    # bit-identical to the pre-groups code.  All three fields are
    # hash-neutral at their defaults.
    group_count: int = 1
    #: how the sizes of groups 1..k-1 derive from group_size:
    #: "fixed" (default) or "linear-ramp" (param ramp_min_frac)
    group_size_model: str = "fixed"
    #: how groups 1..k-1 pick their members: "independent" (default),
    #: "disjoint", or "shared-core" (param core_frac)
    overlap_model: str = "independent"

    # radio / channel.  The electronics energy is 802.11-era (~2 Mb/s at
    # several hundred mW of circuit power -> ~1 uJ/bit tx, ~0.3 uJ/bit rx);
    # with the 100 pJ/bit/m^2 amplifier this puts the energy-optimal hop
    # length near 100 m, giving 2-4 hop paths across the 750 m arena as in
    # the paper's figures (22 m relay chains would be optimal under pure
    # sensor-network constants and are not what ns-2 modelled).
    max_range: float = 250.0
    e_elec: float = 1.0e-6
    e_rx: float = 0.6e-6
    eps_amp: float = 100e-12
    alpha: float = 2.0
    bitrate_bps: float = 2_000_000.0
    loss_prob: float = 0.01  # residual per-frame channel error beyond collisions
    capture_threshold: float = 10.0  # ns-2 CPThresh power-capture ratio

    # protocol knobs
    beacon_interval: float = 2.0
    # activation daemon (SS-SPST family): which beacon-scheduling
    # discipline realizes the round model's activation assumption —
    # "distributed" (default; independent jittered clocks, the classic
    # MANET setting), "randomized" (alias of the same jittered
    # discipline), "synchronous" (lockstep ticks), "central" (id-order
    # staggered ticks), "weakly-fair" (heavy bounded jitter).  The
    # round-model-only "adversarial-max-cost" daemon is accepted on the
    # rounds backend and rejected by the DES backend's validate.
    # On-demand protocols (maodv/odmrp/flooding) have no beacon clock and
    # ignore the axis.
    daemon: str = "distributed"
    #: local-parallel width of the "distributed" daemon on the rounds
    #: backend (how many nodes move simultaneously per snapshot step;
    #: 1 = serial randomized, n_nodes = randomly-ordered synchronous).
    #: Sweepable (``--grid daemon_k=1,4,16``); hash-neutral at the
    #: engine's historical k = 4.  The DES realization of "distributed"
    #: is independent jittered clocks, which have no chunk width — the
    #: DES backend ignores this knob.
    daemon_k: int = 4

    # traffic
    rate_kbps: float = 64.0
    packet_bytes: int = 512
    traffic_start: float = 10.0  # warm-up before data flows

    # run control
    sim_time: float = 1800.0
    availability_probe_interval: float = 1.0
    seed: int = 1

    # executor: "des" (packet-level simulator) or "rounds" (round-model
    # stabilization engine).  Hash-neutral at "des" so pre-backend cache
    # entries keep hitting.
    backend: str = "des"
    #: rounds-backend engine implementation: "object" (the scalar
    #: reference) or "array" (vectorized columnar evaluation — same
    #: trajectories bit for bit, built for 10^4-10^5 nodes).  Hash-neutral
    #: at "object" *because* of that bit-identity: the engine changes how
    #: fast results arrive, never what they are, so cache entries stay
    #: valid across the axis.  The DES backend has no round engine and
    #: rejects non-default values.
    engine: str = "object"
    #: rounds-backend topology representation: "dense" (the (n, n)
    #: distance matrix) or "sparse" (CSR adjacency — same unit-disk edge
    #: rule over the same placement coordinates, buildable at 10^4-10^5
    #: nodes where the dense matrix is not).  Hash-neutral at "dense";
    #: "sparse" hashes separately because the two representations round
    #: near-coincident pair distances differently (see
    #: ``repro.graph.sparse._geometric_edges``).  The DES backend keeps
    #: its own dense geometry and rejects non-default values.
    topology: str = "dense"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "model_params", _normalize_model_params(self.model_params)
        )
        if self.group_size < 2 or self.group_size > self.n_nodes:
            raise ValueError("group_size must be in [2, n_nodes]")
        if self.group_count < 1:
            raise ValueError("group_count must be >= 1")
        if self.v_min <= 0:
            raise ValueError("v_min must be > 0 (Noble fix)")
        if self.sim_time <= self.traffic_start:
            raise ValueError("sim_time must exceed traffic_start")
        if self.daemon_k < 1:
            raise ValueError("daemon_k must be >= 1")
        from repro.core.convergence import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_NAMES}"
            )
        if self.topology not in TOPOLOGY_NAMES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of "
                f"{TOPOLOGY_NAMES}"
            )
        if self.density_ref_n < 0:
            raise ValueError("density_ref_n must be >= 0 (0 disables scaling)")
        # Backend-specific constraints (daemon legality, protocol and
        # scenario-model realizability) live with the backend; delegating
        # keeps construction fail-fast.  Imported lazily: backends
        # imports this module for the config type.
        from repro.experiments.backends import backend_by_name

        backend_by_name(self.backend).validate(self)

    # ------------------------------------------------------------------
    def replace(self, **kwargs) -> "ScenarioConfig":
        """Functional update."""
        return dataclasses.replace(self, **kwargs)

    def params(self) -> Dict[str, object]:
        """``model_params`` as a plain dict."""
        return dict(self.model_params)

    @classmethod
    def paper_scale(cls, **kwargs) -> "ScenarioConfig":
        """The paper's full-scale configuration: 1800 s of simulated
        time, 64 kbps CBR (15.625 packets/s at 512 B) — every other
        default unchanged."""
        return cls(**kwargs)

    @classmethod
    def quick(cls, **kwargs) -> "ScenarioConfig":
        """Scaled-down configuration for benches and CI.

        120 s of simulated time with a 32 kbps source (7.8 packets/s at
        512 B): the same protocols, faults and contention mechanisms, a
        fraction of the wall-clock.
        """
        defaults = dict(sim_time=120.0, rate_kbps=32.0, traffic_start=8.0)
        defaults.update(kwargs)
        return cls(**defaults)


def _normalize_model_params(raw) -> Tuple[Tuple[str, object], ...]:
    """Canonical frozen form: sorted, duplicate-free (key, value) pairs.

    Accepts a mapping or any iterable of pairs (including the
    list-of-lists a JSON round-trip produces), so cache records and
    ``replace(model_params={...})`` both normalize to the same — and
    therefore hash-stable — representation.
    """
    pairs = raw.items() if isinstance(raw, Mapping) else raw
    out = []
    seen = set()
    for pair in pairs:
        key, value = pair
        key = str(key)
        if key in seen:
            raise ValueError(f"duplicate model_params key {key!r}")
        if isinstance(value, (list, tuple, dict, set)):
            raise ValueError(
                f"model_params values must be scalars (key {key!r} got "
                f"{type(value).__name__})"
            )
        seen.add(key)
        out.append((key, value))
    return tuple(sorted(out))
