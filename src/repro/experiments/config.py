"""Scenario configuration.

Defaults mirror the paper's setup (section 6): 750 m x 750 m arena, 50
nodes, random way-point with non-zero minimum speed, one CBR source at
64 kbps, 2 s beacon interval, 1800 s of simulated time.

``quick()`` produces a scaled-down variant (shorter run, lower data rate)
with the same *structure*, used by the benches so the whole figure suite
regenerates in minutes on a laptop; pass ``full_scale=True`` to the figure
definitions for paper-scale runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one experiment.

    ``backend`` selects the executor realizing the config: ``"des"``
    (the packet-level discrete-event simulator) or ``"rounds"`` (the
    round-model stabilization engine) — see
    :mod:`repro.experiments.backends`.  Backend-specific constraints
    (e.g. which activation daemons are legal) are checked by the
    backend's ``validate``, invoked from ``__post_init__`` so invalid
    configs still fail at construction.
    """

    # protocol under test ("ss-spst", "ss-spst-t", "ss-spst-f",
    # "ss-spst-e", "maodv", "odmrp", "flooding")
    protocol: str = "ss-spst-e"

    # arena & population
    n_nodes: int = 50
    arena_w: float = 750.0
    arena_h: float = 750.0

    # mobility (random way-point, Noble fix)
    v_min: float = 1.0
    v_max: float = 5.0
    pause_time: float = 0.0

    # multicast group: source is node 0; receivers drawn at random
    group_size: int = 20  # receivers + source

    # radio / channel.  The electronics energy is 802.11-era (~2 Mb/s at
    # several hundred mW of circuit power -> ~1 uJ/bit tx, ~0.3 uJ/bit rx);
    # with the 100 pJ/bit/m^2 amplifier this puts the energy-optimal hop
    # length near 100 m, giving 2-4 hop paths across the 750 m arena as in
    # the paper's figures (22 m relay chains would be optimal under pure
    # sensor-network constants and are not what ns-2 modelled).
    max_range: float = 250.0
    e_elec: float = 1.0e-6
    e_rx: float = 0.6e-6
    eps_amp: float = 100e-12
    alpha: float = 2.0
    bitrate_bps: float = 2_000_000.0
    loss_prob: float = 0.01  # residual per-frame channel error beyond collisions
    capture_threshold: float = 10.0  # ns-2 CPThresh power-capture ratio

    # protocol knobs
    beacon_interval: float = 2.0
    # activation daemon (SS-SPST family): which beacon-scheduling
    # discipline realizes the round model's activation assumption —
    # "distributed" (default; independent jittered clocks, the classic
    # MANET setting), "randomized" (alias of the same jittered
    # discipline), "synchronous" (lockstep ticks), "central" (id-order
    # staggered ticks), "weakly-fair" (heavy bounded jitter).  The
    # round-model-only "adversarial-max-cost" daemon is accepted on the
    # rounds backend and rejected by the DES backend's validate.
    # On-demand protocols (maodv/odmrp/flooding) have no beacon clock and
    # ignore the axis.
    daemon: str = "distributed"

    # traffic
    rate_kbps: float = 64.0
    packet_bytes: int = 512
    traffic_start: float = 10.0  # warm-up before data flows

    # run control
    sim_time: float = 1800.0
    availability_probe_interval: float = 1.0
    seed: int = 1

    # executor: "des" (packet-level simulator) or "rounds" (round-model
    # stabilization engine).  Hash-neutral at "des" so pre-backend cache
    # entries keep hitting.
    backend: str = "des"

    def __post_init__(self) -> None:
        if self.group_size < 2 or self.group_size > self.n_nodes:
            raise ValueError("group_size must be in [2, n_nodes]")
        if self.v_min <= 0:
            raise ValueError("v_min must be > 0 (Noble fix)")
        if self.sim_time <= self.traffic_start:
            raise ValueError("sim_time must exceed traffic_start")
        # Backend-specific constraints (daemon legality, protocol
        # realizability) live with the backend; delegating keeps
        # construction fail-fast.  Imported lazily: backends imports this
        # module for the config type.
        from repro.experiments.backends import backend_by_name

        backend_by_name(self.backend).validate(self)

    # ------------------------------------------------------------------
    def replace(self, **kwargs) -> "ScenarioConfig":
        """Functional update."""
        return dataclasses.replace(self, **kwargs)

    @classmethod
    def paper_scale(cls, **kwargs) -> "ScenarioConfig":
        """The paper's full 1800 s / 64 kbps configuration."""
        return cls(**kwargs)

    @classmethod
    def quick(cls, **kwargs) -> "ScenarioConfig":
        """Scaled-down configuration for benches and CI.

        120 s of simulated time with a 32 kbps source (8 packets/s at
        512 B): the same protocols, faults and contention mechanisms, a
        fraction of the wall-clock.
        """
        defaults = dict(sim_time=120.0, rate_kbps=32.0, traffic_start=8.0)
        defaults.update(kwargs)
        return cls(**defaults)
