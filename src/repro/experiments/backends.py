"""Pluggable experiment backends: one campaign surface, two executors.

The paper's claims span two worlds this repo implements separately: the
packet-level DES simulator (PDR / energy / overhead — Figures 7-16) and
the round-model stabilization engine (rounds / evaluations / moves under
an activation daemon — the Lemma 1-3 machinery).  An
:class:`ExperimentBackend` makes both drivable by the *same* campaign
engine (:mod:`repro.experiments.campaign`): it knows how to

* ``validate(config)`` — reject configs it cannot realize (e.g. the
  round-model-only ``adversarial-max-cost`` daemon on the DES backend),
* ``run(config)`` — execute one :class:`~repro.experiments.config.ScenarioConfig`
  and return a result object,
* ``record_from`` / ``result_from_record`` — (de)serialize results for
  the persistent JSON run cache, and
* ``metrics()`` — declare a typed :class:`MetricSpec` registry, which
  replaces the stringly ``RunSummary``-attribute pulls so aggregation,
  tables, sweeps and figures are backend-agnostic.

Backends are selected by the ``backend`` field of ``ScenarioConfig``
(default ``"des"``, hash-neutral so every pre-existing cache entry keeps
hitting) and can therefore be swept like any other grid axis
(``--grid backend=des,rounds``).

The ``rounds`` backend builds its topology from the *same* arena / seed
fields the DES runner uses — in fact from the identical named RNG
substreams, so a rounds-backend run models the t = 0 snapshot of the DES
scenario with the same node placement and multicast group.  Per run it
is orders of magnitude faster than the DES, which is what lets
stabilization campaigns grow to paper scale (n up to 200, every daemon)
in minutes.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core.daemons import DAEMON_NAMES, require_des_daemon
from repro.core.metrics import PROTOCOL_LABELS
from repro.experiments.config import ScenarioConfig
from repro.experiments.scenario_models import validate_models

#: protocol name -> round-model metric name (the SS-SPST family; the
#: on-demand baselines have no round-model realization)
SS_PROTOCOL_METRICS: Dict[str, str] = {
    label.lower(): metric for metric, label in PROTOCOL_LABELS.items()
}


# ----------------------------------------------------------------------
# Metric specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSpec:
    """A typed, named quantity a backend can extract from its results.

    ``extract`` maps a backend result object to a float; aggregation
    (:meth:`CampaignResult.aggregate`), tables, sweeps and ascii plots
    consume these instead of reaching into ``RunSummary`` attributes, so
    they work identically over every backend.
    """

    name: str
    description: str
    unit: str = ""
    extract: Callable = None  # result -> float

    def __post_init__(self) -> None:
        if self.extract is None:
            # default: attribute of the result (both backends' result
            # types pass summary fields through as attributes)
            object.__setattr__(
                self, "extract", lambda r, _n=self.name: float(getattr(r, _n))
            )


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class ExperimentBackend(abc.ABC):
    """One way of executing a :class:`ScenarioConfig`."""

    #: registry/config name
    name: str = "?"

    @abc.abstractmethod
    def validate(self, config: ScenarioConfig) -> None:
        """Raise ``ValueError`` when this backend cannot run ``config``.

        Called from ``ScenarioConfig.__post_init__`` so invalid configs
        fail at construction, exactly as before the backend split.
        """

    @abc.abstractmethod
    def run(self, config: ScenarioConfig):
        """Execute one run and return the backend's result object.

        The result must expose ``.config`` and support the attribute
        lookups declared by :meth:`metrics`.
        """

    @abc.abstractmethod
    def metrics(self) -> Dict[str, MetricSpec]:
        """The typed metric registry of this backend."""

    # ------------------------------------------------------------------
    # Cache (de)serialization
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def record_from(self, result, elapsed_s: float = 0.0) -> dict:
        """JSON-safe cache record of one finished run."""

    @abc.abstractmethod
    def result_from_record(self, record: dict):
        """Rebuild the result a record was made from.

        Must tolerate records written by *older* code: missing
        newly-added summary/diagnostic fields default rather than error
        (the cache schema is forward-grown, never rewritten in place).
        """

def _tolerant_kwargs(
    fields: Iterable[dataclasses.Field], data: dict
) -> Dict[str, object]:
    """Dataclass kwargs from a possibly old (or future) record section.

    Unknown keys are dropped; missing keys fall back to the field type's
    zero (``nan`` for floats, 0 for ints, "" for str) so records written
    before a field existed keep loading.
    """
    # field.type is the annotation *string* under PEP 563 modules
    zeros = {"float": float("nan"), float: float("nan"), "str": "", str: ""}
    out: Dict[str, object] = {}
    for f in fields:
        if f.name in data:
            out[f.name] = data[f.name]
        else:
            out[f.name] = zeros.get(f.type, 0)
    return out


def config_from_record(config_dict: dict) -> ScenarioConfig:
    """Rebuild a config from a record, tolerating era differences.

    Records written before a field existed lack its key (the dataclass
    default — behavior-neutral by the hash-neutrality rule — applies);
    keys a future version might add are dropped.
    """
    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    return ScenarioConfig(**{k: v for k, v in config_dict.items() if k in known})


# ----------------------------------------------------------------------
# DES backend
# ----------------------------------------------------------------------
class DesBackend(ExperimentBackend):
    """The packet-level discrete-event simulator (``run_scenario``).

    Wraps today's runner unchanged: identical results, identical cache
    records (the ``backend`` field is hash-neutral at ``"des"``), so
    every pre-existing ``--cache-dir`` entry keeps hitting.
    """

    name = "des"

    #: RunResult diagnostics persisted alongside the summary
    DIAGNOSTIC_FIELDS = (
        "parent_changes",
        "events_executed",
        "frames_sent",
        "frames_collided",
        "link_breaks_per_s",
        "link_events_per_s",
        "mean_degree",
        "partition_fraction",
        "fairness_jain",
        "group_pdr_min",
        "link_stress_mean",
        "link_stress_max",
        "tree_overlap_ratio",
    )

    #: per-field defaults for records written before a diagnostic existed
    #: (counters default to 0; the mobility-profile floats to nan so old
    #: records aggregate as "unknown", not "zero churn"; likewise the
    #: cross-group diagnostics added with repro.groups)
    DIAGNOSTIC_DEFAULTS = {
        "link_breaks_per_s": float("nan"),
        "link_events_per_s": float("nan"),
        "mean_degree": float("nan"),
        "partition_fraction": float("nan"),
        "fairness_jain": float("nan"),
        "group_pdr_min": float("nan"),
        "link_stress_mean": float("nan"),
        "link_stress_max": float("nan"),
        "tree_overlap_ratio": float("nan"),
    }

    def validate(self, config: ScenarioConfig) -> None:
        # The round-model-only adversarial daemon has no beacon-schedule
        # realization; same message the config itself used to raise.
        require_des_daemon(config.daemon)
        if config.engine != "object":
            raise ValueError(
                f"engine {config.engine!r} is a rounds-backend knob; the "
                f"DES backend has no round engine (use backend='rounds')"
            )
        if config.topology != "dense":
            raise ValueError(
                f"topology {config.topology!r} is a rounds-backend knob; "
                f"the DES backend builds its own dense geometry (use "
                f"backend='rounds')"
            )
        validate_models(config, self.name)

    def run(self, config: ScenarioConfig):
        from repro.experiments.runner import run_scenario

        return run_scenario(config)

    def record_from(self, result, elapsed_s: float = 0.0) -> dict:
        from repro.experiments.store import CACHE_SCHEMA

        return {
            "schema": CACHE_SCHEMA,
            "config": dataclasses.asdict(result.config),
            "summary": result.summary.as_dict(),
            "diagnostics": {
                f: getattr(result, f) for f in self.DIAGNOSTIC_FIELDS
            },
            "elapsed_s": elapsed_s,
        }

    def result_from_record(self, record: dict):
        from repro.experiments.runner import RunResult
        from repro.metrics.hub import RunSummary

        diagnostics = record.get("diagnostics", {})
        return RunResult(
            summary=RunSummary(
                **_tolerant_kwargs(
                    dataclasses.fields(RunSummary), record["summary"]
                )
            ),
            config=config_from_record(record["config"]),
            **{
                f: diagnostics.get(f, self.DIAGNOSTIC_DEFAULTS.get(f, 0))
                for f in self.DIAGNOSTIC_FIELDS
            },
        )

    def metrics(self) -> Dict[str, MetricSpec]:
        specs = [
            MetricSpec("pdr", "packet delivery ratio (delivered / originated)"),
            MetricSpec(
                "energy_per_packet_mj",
                "network energy per data packet delivered",
                "mJ",
            ),
            MetricSpec("avg_delay_ms", "mean first-copy delivery delay", "ms"),
            MetricSpec(
                "control_overhead",
                "control bytes transmitted per data byte delivered",
            ),
            MetricSpec(
                "unavailability",
                "fraction of probe windows a receiver had no delivery",
            ),
            MetricSpec("data_originated", "data packets injected at the source"),
            MetricSpec("data_delivered", "first-copy deliveries summed over receivers"),
            MetricSpec("total_energy_j", "total network energy drained", "J"),
            MetricSpec("control_bytes_tx", "control bytes put on the air", "B"),
            MetricSpec("data_bytes_tx", "data bytes put on the air", "B"),
            MetricSpec("duplicates_suppressed", "duplicate deliveries discarded"),
            MetricSpec("parent_changes", "SS-SPST family parent switches (churn)"),
            MetricSpec("events_executed", "DES kernel events executed"),
            MetricSpec("frames_sent", "MAC frames transmitted"),
            MetricSpec("frames_collided", "MAC frames lost to collisions"),
            MetricSpec(
                "link_breaks_per_s",
                "link breaks per second of the mobility scenario "
                "(the fault rate self-stabilization absorbs)",
                "1/s",
            ),
            MetricSpec(
                "link_events_per_s",
                "all link births + breaks per second of the mobility scenario",
                "1/s",
            ),
            MetricSpec(
                "mean_degree",
                "time-averaged unit-disk neighbor count of the scenario",
            ),
            MetricSpec(
                "partition_fraction",
                "fraction of sampled instants the topology was disconnected "
                "(a structural ceiling on PDR)",
            ),
            MetricSpec(
                "fairness_jain",
                "Jain fairness index over per-group PDRs (1.0 = equal service)",
            ),
            MetricSpec("group_pdr_min", "PDR of the worst-served group"),
            MetricSpec(
                "link_stress_mean",
                "mean per-edge usage count across the k final group trees",
            ),
            MetricSpec(
                "link_stress_max",
                "hottest edge's usage count across the k final group trees",
            ),
            MetricSpec(
                "tree_overlap_ratio",
                "1 - union/total of group-tree edges (0 = edge-disjoint trees)",
            ),
        ]
        return {s.name: s for s in specs}


# ----------------------------------------------------------------------
# Rounds backend
# ----------------------------------------------------------------------
@dataclass
class RoundSummary:
    """Stabilization quantities of one rounds-backend run.

    The ``recovery_*`` fields measure absorbing one transient single-node
    fault (a corrupted advertised cost) from the settled state via
    ``run_perturbed`` — the self-stabilization cost the paper's lemmas
    are about.  They are ``nan`` when the run did not converge (e.g. an
    F/E limit cycle under a fixed activation order).
    """

    rounds: int
    evaluations: int
    moves: int
    chain_steps: int
    converged: int  # 0/1 (int so it aggregates as a rate)
    connected: int  # 0/1: the sampled topology was connected
    total_cost: float  # capped Lyapunov total of the final state
    recovery_rounds: float
    recovery_evaluations: float
    recovery_moves: float
    recovery_chain_steps: float
    # Cross-group diagnostics (repro.groups); a single group scores
    # fairness 1.0, stress 1.0, overlap 0.0.  nan in old records.
    fairness_jain: float = float("nan")
    link_stress_mean: float = float("nan")
    link_stress_max: float = float("nan")
    tree_overlap_ratio: float = float("nan")

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class RoundRunResult:
    """Rounds-backend counterpart of :class:`~repro.experiments.runner.RunResult`."""

    summary: RoundSummary
    config: ScenarioConfig

    def __getattr__(self, item):
        # Same passthrough contract as RunResult (and the same dunder /
        # pre-`summary` guards so pickling through worker pools works).
        if item.startswith("__") and item.endswith("__"):
            raise AttributeError(item)
        try:
            summary = self.__dict__["summary"]
        except KeyError:
            raise AttributeError(item) from None
        return getattr(summary, item)


def build_round_scenario(config: ScenarioConfig):
    """``(topology, metric)`` for a config's round-model realization.

    The scenario structure comes from the config's scenario models via
    :func:`~repro.experiments.scenario_models.build_scenario_space` —
    the *identical* named-RNG-substream path the DES runner builds from —
    so this is the t = 0 snapshot of the DES scenario: same placement,
    same mobility starting point, same multicast group, for every
    placement/mobility/membership model and every protocol sharing the
    seed.  The metric is the config protocol's SS-SPST cost metric over
    the config's radio constants.
    """
    from repro.core.metrics import metric_by_name
    from repro.energy.radio import FirstOrderRadioModel
    from repro.experiments.scenario_models import build_scenario_space
    from repro.graph.sparse import SparseTopology
    from repro.graph.topology import Topology

    space = build_scenario_space(config)
    topo_cls = SparseTopology if config.topology == "sparse" else Topology
    topo = topo_cls.from_positions(
        space.mobility.positions(0.0),
        config.max_range,
        source=space.source,
        members=space.receivers,
    )
    radio = FirstOrderRadioModel(
        e_elec=config.e_elec,
        e_rx=config.e_rx,
        eps_amp=config.eps_amp,
        alpha=config.alpha,
        max_range=config.max_range,
        d_floor=10.0,  # runner parity
    )
    metric = metric_by_name(SS_PROTOCOL_METRICS[config.protocol], radio)
    return topo, metric


class RoundsBackend(ExperimentBackend):
    """The round-model stabilization engine (:class:`RoundEngine`).

    Accepts *every* registered daemon — including the round-model-only
    ``adversarial-max-cost`` stress schedule the DES backend rejects —
    and reports stabilization rounds, rule evaluations, moves,
    chain-pricing steps and the perturbed-recovery cost.
    """

    name = "rounds"

    def validate(self, config: ScenarioConfig) -> None:
        if config.daemon not in DAEMON_NAMES:
            raise ValueError(
                f"unknown daemon {config.daemon!r}; choose from "
                f"{sorted(DAEMON_NAMES)}"
            )
        if config.protocol not in SS_PROTOCOL_METRICS:
            raise ValueError(
                f"protocol {config.protocol!r} has no round-model "
                f"realization; the rounds backend models the SS-SPST "
                f"family {sorted(SS_PROTOCOL_METRICS)}"
            )
        validate_models(config, self.name)

    def run(self, config: ScenarioConfig) -> RoundRunResult:
        from repro.core.convergence import engine_for
        from repro.core.rounds import fresh_states, total_cost
        from repro.core.state import NodeState
        from repro.groups.metrics import group_tree_stats, jain_index
        from repro.util.rng import RngStreams

        if config.group_count > 1:
            # k independent engines over one placement; group 0 keeps the
            # historical daemon stream so its trajectory matches a k=1 run.
            from repro.groups.driver import run_multigroup_rounds

            return run_multigroup_rounds(config)

        topo, metric = build_round_scenario(config)
        streams = RngStreams(config.seed)
        # The distributed daemon's local-parallel width is a config knob
        # (daemon_k); other daemons take no options.
        daemon_kwargs = (
            {"k": config.daemon_k} if config.daemon == "distributed" else {}
        )
        engine = engine_for(
            topo, metric, config.daemon, engine=config.engine,
            rng=streams.get("daemon"), **daemon_kwargs,
        )
        settled = engine.run(fresh_states(topo, metric))

        nan = float("nan")
        recovery = (nan, nan, nan, nan)
        if settled.converged:
            # One transient fault on the settled tree: a non-source node
            # advertises a garbage cost; run_perturbed absorbs it.
            frng = streams.get("faults")
            v = int(frng.integers(1, topo.n))
            st = settled.states[v]
            corrupted = NodeState(
                parent=st.parent,
                cost=float(frng.uniform(0.0, metric.infinity(topo))),
                hop=st.hop,
            )
            rec_engine = engine_for(
                topo, metric, config.daemon, engine=config.engine,
                rng=streams.get("recovery"), **daemon_kwargs,
            )
            rec = rec_engine.run_perturbed(list(settled.states), [(v, corrupted)])
            recovery = (
                float(rec.rounds),
                float(rec.evaluations),
                float(rec.moves),
                float(rec.chain_steps),
            )
        cost = total_cost(settled.states, metric.infinity(topo))
        parents = {i: st.parent for i, st in enumerate(settled.states)}
        stats = group_tree_stats(
            {0: parents},
            {0: topo.source},
            {0: sorted(set(topo.members) - {topo.source})},
        )
        summary = RoundSummary(
            rounds=settled.rounds,
            evaluations=settled.evaluations,
            moves=settled.moves,
            chain_steps=settled.chain_steps,
            converged=int(settled.converged),
            connected=int(topo.is_connected()),
            total_cost=cost,
            recovery_rounds=recovery[0],
            recovery_evaluations=recovery[1],
            recovery_moves=recovery[2],
            recovery_chain_steps=recovery[3],
            fairness_jain=jain_index([cost]),
            link_stress_mean=stats["link_stress_mean"],
            link_stress_max=stats["link_stress_max"],
            tree_overlap_ratio=stats["tree_overlap_ratio"],
        )
        return RoundRunResult(summary=summary, config=config)

    def record_from(self, result: RoundRunResult, elapsed_s: float = 0.0) -> dict:
        from repro.experiments.store import CACHE_SCHEMA

        return {
            "schema": CACHE_SCHEMA,
            "backend": self.name,
            "config": dataclasses.asdict(result.config),
            "summary": result.summary.as_dict(),
            "diagnostics": {},
            "elapsed_s": elapsed_s,
        }

    def result_from_record(self, record: dict) -> RoundRunResult:
        return RoundRunResult(
            summary=RoundSummary(
                **_tolerant_kwargs(
                    dataclasses.fields(RoundSummary), record["summary"]
                )
            ),
            config=config_from_record(record["config"]),
        )

    def metrics(self) -> Dict[str, MetricSpec]:
        specs = [
            MetricSpec("rounds", "rounds with >= 1 move until the fixpoint"),
            MetricSpec("evaluations", "rule evaluations spent stabilizing"),
            MetricSpec("moves", "individual state changes applied"),
            MetricSpec("chain_steps", "ancestor steps of SS-SPST-E chain pricing"),
            MetricSpec("converged", "reached a fixpoint within max_rounds (0/1)"),
            MetricSpec("connected", "sampled topology was connected (0/1)"),
            MetricSpec("total_cost", "capped Lyapunov total of the final state"),
            MetricSpec("recovery_rounds", "rounds to absorb one transient fault"),
            MetricSpec(
                "recovery_evaluations", "evaluations to absorb one transient fault"
            ),
            MetricSpec("recovery_moves", "moves to absorb one transient fault"),
            MetricSpec(
                "recovery_chain_steps", "chain steps to absorb one transient fault"
            ),
            MetricSpec(
                "fairness_jain",
                "Jain fairness index over per-group tree costs "
                "(1.0 = equal resource footprint)",
            ),
            MetricSpec(
                "link_stress_mean",
                "mean per-edge usage count across the k settled group trees",
            ),
            MetricSpec(
                "link_stress_max",
                "hottest edge's usage count across the k settled group trees",
            ),
            MetricSpec(
                "tree_overlap_ratio",
                "1 - union/total of group-tree edges (0 = edge-disjoint trees)",
            ),
        ]
        return {s.name: s for s in specs}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
BACKENDS: Dict[str, ExperimentBackend] = {
    b.name: b for b in (DesBackend(), RoundsBackend())
}

#: canonical backend order used across configs, CLI help and reports
BACKEND_NAMES: Tuple[str, ...] = tuple(BACKENDS)


def backend_by_name(name: str) -> ExperimentBackend:
    """Look up a backend by registry name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment backend {name!r}; choose from "
            f"{sorted(BACKENDS)}"
        ) from None


def metric_extractor(
    metric: str, backend_names: Iterable[str] = ("des",)
) -> Callable:
    """A backend-dispatching extractor for a metric name.

    Resolves ``metric`` against every backend a campaign spans; results
    from a backend that does not define it extract as ``nan`` (which the
    CI aggregation filters), so mixed-backend campaigns can still print
    one table.
    """
    specs = {b: backend_by_name(b).metrics() for b in set(backend_names)}
    if not any(metric in m for m in specs.values()):
        available = sorted(set().union(*specs.values())) if specs else []
        raise ValueError(
            f"unknown metric {metric!r} for backend(s) "
            f"{sorted(specs)}; choose from {available}"
        )

    def extract(result) -> float:
        backend = getattr(result.config, "backend", "des")
        spec = specs.get(backend, {}).get(metric)
        return float(spec.extract(result)) if spec is not None else float("nan")

    return extract


def default_metrics(backend_names: Iterable[str]) -> Tuple[str, ...]:
    """Sensible table columns when the caller named none."""
    names = set(backend_names)
    if names == {"rounds"}:
        return ("rounds", "evaluations", "moves")
    if "rounds" in names:  # mixed-backend campaign
        return ("pdr", "rounds")
    return ("pdr", "energy_per_packet_mj")
