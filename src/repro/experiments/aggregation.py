"""Streaming campaign aggregation: running per-cell mean/CI.

This is the **aggregation layer** of the campaign service (see
``docs/campaigns.md``).  :class:`Welford` is the single-pass
mean/variance accumulator that *is* the project's CI implementation —
:func:`repro.analysis.stats.mean_ci` folds through it — so a streaming
aggregate and a batch aggregate are the same arithmetic by construction,
not approximately.

:class:`StreamingAggregate` maintains one accumulator-feed per
(cell, metric) as run records land, in any arrival order, and snapshots
to exactly the values ``CampaignResult.aggregate`` would produce over
the same runs (bit-for-bit: values are folded in campaign slot order,
not arrival order, so float non-associativity cannot diverge the two).
:func:`campaign_status` assembles the same view straight from a
:class:`~repro.experiments.store.ResultStore`, which is what lets
``status`` render tables for a campaign that is still running — or that
some other machine is running.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Welford",
    "StreamingAggregate",
    "CampaignStatus",
    "campaign_status",
]


class Welford:
    """Single-pass running mean/variance (Welford's algorithm).

    Carries the same value discipline as the historical two-pass
    ``mean_ci``: non-finite samples are filtered, zero samples yield a
    ``nan`` summary, a single sample yields an infinite half-width.
    This class is the one source of truth for CI arithmetic — batch and
    streaming aggregation both fold through it.
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if value != value or abs(value) == float("inf"):
            return  # same filter as mean_ci: non-finite samples drop out
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> "Welford":
        for value in values:
            self.add(value)
        return self

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator), ``nan`` below two samples."""
        if self.n < 2:
            return float("nan")
        return self._m2 / (self.n - 1)

    def ci(self, confidence: float = 0.95):
        """The running Student-t :class:`~repro.analysis.stats.CiSummary`."""
        from repro.analysis.stats import CiSummary, t_quantile

        if self.n == 0:
            return CiSummary(float("nan"), float("nan"), 0)
        if self.n == 1:
            return CiSummary(self.mean, float("inf"), 1)
        t = t_quantile(confidence, self.n - 1)
        half = t * math.sqrt(self.variance / self.n)
        return CiSummary(self.mean, half, self.n)


#: a cell key as CampaignResult.by_cell uses it: (protocol, point items)
CellKey = Tuple[str, Tuple]


class StreamingAggregate:
    """Per-cell running aggregates over a campaign, fed one run at a time.

    ``update(index, result)`` accepts runs in any completion order
    (``index`` is the run's position in ``spec.configs()``);
    :meth:`snapshot` folds each cell's landed values in slot order, so
    it equals ``CampaignResult.aggregate`` over the same runs exactly.
    """

    def __init__(self, spec, metrics: Sequence[str]) -> None:
        from repro.experiments.backends import metric_extractor

        self.spec = spec
        self.metrics = tuple(metrics)
        self.total = spec.size()
        self.done = 0
        backends = spec.backends()
        self._extract: Dict[str, Callable] = {
            m: metric_extractor(m, backends) for m in self.metrics
        }
        # one slot per run per metric; None = not landed yet
        self._values: Dict[str, List[Optional[float]]] = {
            m: [None] * self.total for m in self.metrics
        }
        self._landed = [False] * self.total

    def update(self, index: int, result) -> None:
        """Fold one landed run (idempotent per slot)."""
        if self._landed[index]:
            return
        self._landed[index] = True
        self.done += 1
        for metric, extract in self._extract.items():
            self._values[metric][index] = float(extract(result))

    # ------------------------------------------------------------------
    def _cell_slices(self) -> List[Tuple[CellKey, slice]]:
        out = []
        per_cell = len(self.spec.seeds)
        for c, (proto, point) in enumerate(self.spec.cells()):
            key = (proto, tuple(point.items()))
            out.append((key, slice(c * per_cell, (c + 1) * per_cell)))
        return out

    def cell_counts(self) -> Dict[CellKey, int]:
        """Landed runs per cell (0-count cells included)."""
        return {
            key: sum(1 for x in self._landed[sl] if x)
            for key, sl in self._cell_slices()
        }

    def snapshot(
        self, confidence: float = 0.95
    ) -> Dict[str, Dict[CellKey, "object"]]:
        """{metric: {cell: CiSummary}} over everything landed so far.

        Cells with no landed runs are omitted, mirroring
        ``CampaignResult.aggregate`` on a sharded/partial campaign.
        """
        out: Dict[str, Dict[CellKey, object]] = {}
        for metric in self.metrics:
            values = self._values[metric]
            agg: Dict[CellKey, object] = {}
            for key, sl in self._cell_slices():
                landed = [
                    values[i]
                    for i in range(sl.start, sl.stop)
                    if self._landed[i]
                ]
                if landed:
                    agg[key] = Welford().extend(landed).ci(confidence)
            out[metric] = agg
        return out


@dataclass
class CampaignStatus:
    """A point-in-time view of a (possibly still running) campaign."""

    spec: object
    done: int
    total: int
    metrics: Tuple[str, ...]
    aggregates: Dict[str, Dict[CellKey, object]]  # metric -> cell -> CI
    counts: Dict[CellKey, int] = field(default_factory=dict)
    workers: Dict[str, dict] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def format_table(self) -> str:
        """Partial-campaign aggregate table (mirrors the campaign table,
        with a ``n/total`` landed-count column per cell)."""
        from repro.experiments.campaign import cell_label

        per_cell = len(self.spec.seeds)
        labels = {key: cell_label(key[1]) for key in self.counts}
        width = max([24] + [len(v) for v in labels.values()])
        header = f"{'protocol':>12s} {'grid point':>{width}s} {'n':>7s}"
        for m in self.metrics:
            header += f" {m:>24s}"
        rows = [header]
        for key, count in self.counts.items():
            proto, _ = key
            row = (
                f"{proto:>12s} {labels[key]:>{width}s} "
                f"{f'{count}/{per_cell}':>7s}"
            )
            for metric in self.metrics:
                ci = self.aggregates[metric].get(key)
                if ci is None:
                    row += f" {'-':>12s} {'-':>11s}"
                    continue
                hw = (
                    f"±{ci.half_width:.4f}"
                    if ci.half_width == ci.half_width
                    else "±nan"
                )
                row += f" {ci.mean:>12.4f} {hw:>11s}"
            rows.append(row)
        return "\n".join(rows)

    def format_workers(self, now: Optional[float] = None) -> str:
        """One line per known worker with heartbeat age and state."""
        import time as _time

        if not self.workers:
            return "# workers: none seen"
        now = _time.time() if now is None else now
        parts = [
            f"{name} ({max(0.0, now - info.get('seen_s', now)):.1f}s ago, "
            f"{info.get('state', '?')})"
            for name, info in sorted(self.workers.items())
        ]
        return f"# workers: {', '.join(parts)}"


def campaign_status(
    spec, store, metrics: Optional[Sequence[str]] = None
) -> CampaignStatus:
    """Assemble the streaming view of ``spec`` from a result store.

    Every run already persisted feeds the per-cell accumulators; runs
    still pending (or executing elsewhere) simply have not landed yet.
    Read-only: safe to call while schedulers are writing.
    """
    from repro.experiments.backends import default_metrics
    from repro.experiments.store import open_store, result_from_record

    store = open_store(store)
    if metrics is None:
        metrics = list(default_metrics(spec.backends()))
    agg = StreamingAggregate(spec, metrics)
    for i, cfg in enumerate(spec.configs()):
        record = store.load(cfg)
        if record is not None:
            agg.update(i, result_from_record(record))
    return CampaignStatus(
        spec=spec,
        done=agg.done,
        total=agg.total,
        metrics=agg.metrics,
        aggregates=agg.snapshot(),
        counts=agg.cell_counts(),
        workers=store.heartbeats(),
    )
