"""The campaign service: one warm store, many concurrent consumers.

The importable counterpart of the ``submit``/``status``/``results`` CLI
subcommands (see ``docs/campaigns.md``).  A :class:`CampaignService`
binds a result store and a scheduler once; figures, benches, notebooks
and CI legs then share that warm store — submitting campaigns, watching
partial aggregates stream in, and assembling tables — without each
reinventing store/scheduler plumbing::

    from repro.experiments.service import CampaignService

    svc = CampaignService.open("campaign.sqlite", scheduler="async",
                               workers=4)
    svc.submit(spec)                  # executes only what's missing
    print(svc.status(spec).format_table())   # streaming per-cell CI
    table = svc.results(spec)         # read-only assembly
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.aggregation import CampaignStatus, campaign_status
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    collect_campaign,
    run_campaign,
)
from repro.experiments.scheduler import Scheduler, scheduler_by_name
from repro.experiments.store import (
    ResultStore,
    migrate_json_dir,
    open_store,
)

__all__ = ["CampaignService"]


class CampaignService:
    """Submit/status/results over one shared result store."""

    def __init__(
        self, store, scheduler: Optional[Scheduler] = None
    ) -> None:
        self.store: ResultStore = open_store(store)
        self.scheduler = scheduler

    @classmethod
    def open(
        cls, store, scheduler: str = "pool", workers: int = 1
    ) -> "CampaignService":
        """Build a service from a store spec and a scheduler name."""
        return cls(store, scheduler_by_name(scheduler, workers))

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        shard: Optional[Tuple[int, int]] = None,
        steal: bool = False,
        memo: Optional[Dict] = None,
        progress=None,
        on_update=None,
    ) -> CampaignResult:
        """Run ``spec``, executing only the runs the store is missing."""
        return run_campaign(
            spec,
            workers=workers,
            store=self.store,
            scheduler=self.scheduler,
            shard=shard,
            steal=steal,
            memo=memo,
            progress=progress,
            on_update=on_update,
        )

    def status(
        self, spec: CampaignSpec, metrics: Optional[Sequence[str]] = None
    ) -> CampaignStatus:
        """The streaming per-cell view of ``spec`` — read-only, safe
        while schedulers (here or on other machines) are writing."""
        return campaign_status(spec, self.store, metrics=metrics)

    def results(
        self, spec: CampaignSpec, memo: Optional[Dict] = None
    ) -> CampaignResult:
        """Assemble ``spec`` from the store without executing anything."""
        return collect_campaign(spec, self.store, memo=memo)

    def migrate_from(self, json_root: str) -> Tuple[int, int]:
        """Ingest a legacy JSON cache dir; returns (migrated, skipped)."""
        return migrate_json_dir(json_root, self.store)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
