"""Runner for the paper's worked examples (Figures 1-6, Examples 1-5).

Executes the round model on the reconstructed Figure-1 topology for all
four metrics and on the Figure-5 discard example, and reports stabilized
trees, round counts, per-metric tree costs and the comparison against the
exhaustive optimum — the static-analysis counterpart of the DES benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import SyncExecutor, fresh_states, metric_by_name
from repro.core.examples import EXAMPLE_RADIO, figure1_topology, figure5_topology
from repro.core.metrics import METRIC_NAMES, PROTOCOL_LABELS, EnergyAwareMetric
from repro.graph import exhaustive_min_energy_tree
from repro.graph.tree import TreeAssignment


@dataclass
class ExampleOutcome:
    """Result of stabilizing one metric on the worked example."""

    metric: str
    label: str
    rounds: int
    converged: bool
    parents: List[Optional[int]]
    e_cost: float  # tree cost under the E metric (nJ/bit)
    e_discard: float  # discard component (nJ/bit)
    forwarding: List[int]


def run_figure1_examples() -> Dict[str, ExampleOutcome]:
    """Stabilize the Figure-1 topology under every metric."""
    topo = figure1_topology()
    e_metric = EnergyAwareMetric(EXAMPLE_RADIO)
    out: Dict[str, ExampleOutcome] = {}
    for name in METRIC_NAMES:
        metric = metric_by_name(name, EXAMPLE_RADIO)
        res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
        tree = res.tree(topo)
        out[name] = ExampleOutcome(
            metric=name,
            label=PROTOCOL_LABELS[name],
            rounds=res.rounds,
            converged=res.converged,
            parents=[s.parent for s in res.states],
            e_cost=e_metric.tree_cost(topo, tree) * 1e9,
            e_discard=e_metric.tree_discard_cost(topo, tree) * 1e9,
            forwarding=sorted(tree.forwarding_nodes()),
        )
    return out


def run_figure5_example() -> Dict[str, Optional[int]]:
    """X's chosen parent under each metric on the Figure-5 topology."""
    topo = figure5_topology()
    parents: Dict[str, Optional[int]] = {}
    for name in METRIC_NAMES:
        metric = metric_by_name(name, EXAMPLE_RADIO)
        res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
        parents[name] = res.states[3].parent
    return parents


def optimality_gap() -> Dict[str, float]:
    """SS-SPST-E fixpoint cost vs. the exhaustive E_min on the example.

    Returns the stabilized E-tree cost, the exhaustive optimum, and their
    ratio (1.0 = the distributed protocol found the global optimum).
    """
    topo = figure1_topology()
    metric = EnergyAwareMetric(EXAMPLE_RADIO)
    res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
    tree_cost = metric.tree_cost(topo, res.tree(topo))
    _, best_cost = exhaustive_min_energy_tree(topo, metric)
    return {
        "stabilized_nj": tree_cost * 1e9,
        "optimal_nj": best_cost * 1e9,
        "ratio": tree_cost / best_cost if best_cost else float("inf"),
    }


def format_examples_report() -> str:
    """One printable report covering Examples 1-5."""
    lines = ["# Worked example (Figures 1-6) — round model"]
    for name, oc in run_figure1_examples().items():
        lines.append(
            f"{oc.label:11s} rounds={oc.rounds} converged={oc.converged} "
            f"E-cost={oc.e_cost:8.1f} nJ/bit discard={oc.e_discard:6.1f} "
            f"forwarders={oc.forwarding}"
        )
        lines.append(f"{'':11s} parents={oc.parents}")
    lines.append("# Figure 5 — X's parent under each metric")
    for name, parent in run_figure5_example().items():
        lines.append(f"{PROTOCOL_LABELS[name]:11s} X -> {parent}")
    gap = optimality_gap()
    lines.append(
        f"# E_min gap: stabilized {gap['stabilized_nj']:.1f} vs optimal "
        f"{gap['optimal_nj']:.1f} nJ/bit (ratio {gap['ratio']:.3f})"
    )
    return "\n".join(lines)
