"""Schedulers: pluggable execution engines for campaign runs.

This is the **scheduler layer** of the campaign service (see
``docs/campaigns.md``).  A :class:`Scheduler` takes a list of indexed
jobs and a worker function and delivers ``(index, result)`` pairs to a
callback in completion order; everything else — cache lookups, sharding,
persistence, aggregation — stays in the layers around it.  Three
engines:

* :class:`SerialScheduler` — in-process loop (deterministic, zero
  overhead; what ``workers=1`` always meant).
* :class:`PoolScheduler` — ``multiprocessing.Pool.imap_unordered``,
  byte-for-byte the historical ``workers=N`` behavior.
* :class:`AsyncScheduler` — an asyncio job queue over a process-pool
  executor: workers *steal* from one shared deque (a slow run never
  idles the other workers), publish heartbeats through the result
  store, and cancel gracefully — a :class:`CancelCampaign` raised by
  the result callback stops dispatch, lets in-flight runs finish and
  deliver, then re-raises.  Combined with per-record persistence this
  makes any campaign killable and resumable at run granularity.

Workers are separate processes in both parallel engines, so the worker
function and job payloads must be picklable top-level callables.
"""

from __future__ import annotations

import abc
import asyncio
import collections
import concurrent.futures
import multiprocessing
import os
import socket
import time
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "CancelCampaign",
    "Scheduler",
    "SerialScheduler",
    "PoolScheduler",
    "AsyncScheduler",
    "SCHEDULER_NAMES",
    "scheduler_by_name",
]

#: payload of one schedulable run: (slot index, worker-function argument)
Job = Tuple[int, object]
#: delivery callback: on_result(slot index, worker-function return)
OnResult = Callable[[int, object], None]


class CancelCampaign(Exception):
    """Raised *by a result callback* to stop a campaign gracefully.

    Schedulers treat it as a cancellation signal, not an error: dispatch
    stops, in-flight runs are drained (delivered where the engine can),
    and the exception propagates to the caller, which keeps every result
    delivered so far.  :func:`repro.experiments.campaign.run_campaign`
    turns it into a partial :class:`CampaignResult` marked ``cancelled``.
    """


def worker_id(slot: int = 0) -> str:
    """A heartbeat identity unique per host / process / worker slot."""
    return f"{socket.gethostname()}-{os.getpid()}-w{slot}"


class Scheduler(abc.ABC):
    """One way of executing a batch of independent jobs."""

    name: str = "?"

    @abc.abstractmethod
    def execute(
        self,
        fn: Callable[[object], object],
        jobs: Sequence[Job],
        on_result: OnResult,
        store=None,
    ) -> None:
        """Run ``fn(payload)`` for every ``(index, payload)`` job.

        ``on_result(index, result)`` fires in completion order, in the
        caller's process/thread.  ``store`` (a
        :class:`~repro.experiments.store.ResultStore`) is the heartbeat
        channel for engines that publish liveness; others ignore it.
        A :class:`CancelCampaign` from ``on_result`` stops dispatching
        and re-raises after the engine has wound down.
        """


class SerialScheduler(Scheduler):
    """In-process sequential execution (the ``workers=1`` path)."""

    name = "serial"

    def execute(self, fn, jobs, on_result, store=None) -> None:
        for i, payload in jobs:
            on_result(i, fn(payload))


def _call_indexed(packed: Tuple[Callable, int, object]) -> Tuple[int, object]:
    """Pool-side trampoline carrying the job's slot index, so unordered
    completions map back to the right result slot."""
    fn, i, payload = packed
    return i, fn(payload)


class PoolScheduler(Scheduler):
    """``multiprocessing.Pool`` fan-out — the historical parallel path.

    Falls back to serial when the batch (or ``workers``) is 1, exactly
    like the pre-refactor campaign loop.  Cancellation is abrupt here
    (the pool context terminates in-flight workers); use
    :class:`AsyncScheduler` when graceful draining matters.
    """

    name = "pool"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    def execute(self, fn, jobs, on_result, store=None) -> None:
        n = min(self.workers, len(jobs))
        if n <= 1:
            SerialScheduler().execute(fn, jobs, on_result, store=store)
            return
        packed = [(fn, i, payload) for i, payload in jobs]
        with multiprocessing.Pool(n) as pool:
            for i, result in pool.imap_unordered(_call_indexed, packed):
                on_result(i, result)


class AsyncScheduler(Scheduler):
    """Asyncio job queue over a process pool: stealing, heartbeats,
    graceful cancel.

    ``workers`` coroutines pull from one shared deque — there is no
    up-front partition of jobs to workers, so a worker that lands a slow
    run simply contributes fewer runs while the others drain the rest
    (work stealing).  Each worker publishes a heartbeat row through the
    result store every ``heartbeat_s`` while the campaign runs, so
    ``status`` views can show who is alive and what they are doing.
    CPU-bound runs execute in a ``ProcessPoolExecutor``; the event loop
    only coordinates.
    """

    name = "async"

    def __init__(self, workers: int = 1, heartbeat_s: float = 2.0) -> None:
        self.workers = max(1, int(workers))
        self.heartbeat_s = heartbeat_s

    def execute(self, fn, jobs, on_result, store=None) -> None:
        asyncio.run(self._drive(fn, list(jobs), on_result, store))

    async def _drive(self, fn, jobs: List[Job], on_result, store) -> None:
        queue = collections.deque(jobs)
        cancelled = asyncio.Event()  # a callback asked to stop
        done = asyncio.Event()  # winding down (also ends heartbeats)
        n = min(self.workers, len(jobs)) or 1
        loop = asyncio.get_running_loop()
        with concurrent.futures.ProcessPoolExecutor(max_workers=n) as pool:
            beats = asyncio.create_task(self._heartbeat_loop(store, n, done))
            try:
                await asyncio.gather(
                    *(
                        self._worker(
                            slot, fn, queue, on_result, pool, cancelled, loop
                        )
                        for slot in range(n)
                    )
                )
            finally:
                done.set()
                beats.cancel()
                try:
                    await beats
                except asyncio.CancelledError:
                    pass
                if store is not None:
                    for slot in range(n):
                        store.heartbeat(worker_id(slot), state="done")
        if cancelled.is_set():
            raise CancelCampaign()

    async def _worker(
        self, slot, fn, queue, on_result, pool, cancelled, loop
    ) -> None:
        while queue and not cancelled.is_set():
            i, payload = queue.popleft()  # steal the next run, whoever's
            result = await loop.run_in_executor(pool, fn, payload)
            try:
                # Deliver even when another worker cancelled meanwhile:
                # a finished run is a finished run, and persisting it is
                # what makes cancellation resume-safe.
                on_result(i, result)
            except CancelCampaign:
                cancelled.set()

    async def _heartbeat_loop(self, store, n, done) -> None:
        if store is None:
            return
        while not done.is_set():
            for slot in range(n):
                store.heartbeat(worker_id(slot), state="running")
            try:
                await asyncio.wait_for(done.wait(), timeout=self.heartbeat_s)
            except asyncio.TimeoutError:
                continue


SCHEDULER_NAMES = ("serial", "pool", "async")


def scheduler_by_name(name: str, workers: int = 1) -> Scheduler:
    """Resolve a ``--scheduler`` value into an engine instance."""
    if name == "serial":
        return SerialScheduler()
    if name == "pool":
        return PoolScheduler(workers=workers)
    if name == "async":
        return AsyncScheduler(workers=workers)
    raise ValueError(
        f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}"
    )
