"""Network-lifetime extension experiment.

The paper motivates energy awareness with battery-powered nodes but
simulates unlimited energy.  This extension gives every node a finite
battery and measures the lifetime consequences of the metric choice:
time to first node death, death curve, and delivery sustained over the
battery-limited session.  (Lifetime maximization under overhearing is the
subject of the authors' companion work, Deng & Gupta ICDCN'06 — reference
[7] of the paper.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network
from repro.experiments.scenario_models import resolved_models
from repro.metrics.hub import MetricsHub
from repro.protocols.registry import make_agent_factory


@dataclass
class LifetimeResult:
    """Outcome of one battery-limited run."""

    protocol: str
    battery_j: float
    first_death_t: Optional[float]
    deaths: List[float] = field(default_factory=list)  # death times
    delivered: int = 0
    pdr: float = 0.0

    @property
    def alive_at_end(self) -> bool:
        return self.first_death_t is None


def run_lifetime(
    config: ScenarioConfig,
    battery_j: float,
) -> LifetimeResult:
    """Run one scenario with finite per-node batteries.

    The source is exempted (a dead source ends the session trivially and
    measures nothing about the tree's energy placement).
    """
    if battery_j <= 0:
        raise ValueError("battery capacity must be positive")
    sim, network = build_network(config)
    hub = MetricsHub(n_receivers=len(network.receivers))
    hub.set_packet_size_hint(config.packet_bytes)
    network.hub = hub

    deaths: List[float] = []
    for node in network.nodes:
        if node.is_source:
            continue
        node.battery.capacity_j = battery_j
        node.battery.remaining_j = battery_j
        node.battery._on_depleted = (
            lambda nid=node.id: deaths.append(sim.now)
        )

    network.attach_agents(
        make_agent_factory(
            config.protocol,
            beacon_interval=config.beacon_interval,
            daemon=config.daemon,
        )
    )
    network.start()
    # The config's scenario models drive the workload and any mid-run
    # membership churn, exactly as in run_scenario.
    models = resolved_models(config)
    models["traffic"].build(network, config).start()
    models["membership"].install(network, config)
    sim.run(until=config.sim_time)

    summary = hub.summary(network.total_energy())
    return LifetimeResult(
        protocol=config.protocol,
        battery_j=battery_j,
        first_death_t=min(deaths) if deaths else None,
        deaths=sorted(deaths),
        delivered=summary.data_delivered,
        pdr=summary.pdr,
    )


def _lifetime_execute(payload) -> LifetimeResult:
    """Scheduler worker: one (config, battery) lifetime run.

    Top level (picklable) so ``compare_lifetimes`` can fan out on any
    :class:`~repro.experiments.scheduler.Scheduler`.
    """
    config, battery_j = payload
    return run_lifetime(config, battery_j)


def compare_lifetimes(
    protocols,
    battery_j: float,
    base: Optional[ScenarioConfig] = None,
    seeds=(1, 2),
    scheduler=None,
    workers: int = 1,
) -> Dict[str, List[LifetimeResult]]:
    """Battery-limited comparison across protocols on shared scenarios.

    Runs through the campaign scheduler layer: pass ``workers > 1`` (or
    an explicit ``scheduler``) to fan the protocol × seed grid out in
    parallel; results come back in the same deterministic order either
    way.
    """
    from repro.experiments.scheduler import PoolScheduler

    base = base or ScenarioConfig.quick()
    protocols = list(protocols)
    seeds = list(seeds)
    jobs = []
    for p_i, protocol in enumerate(protocols):
        for s_i, seed in enumerate(seeds):
            config = base.replace(protocol=protocol, seed=seed)
            jobs.append((p_i * len(seeds) + s_i, (config, battery_j)))

    results: List[Optional[LifetimeResult]] = [None] * len(jobs)
    engine = scheduler if scheduler is not None else PoolScheduler(workers)
    engine.execute(
        _lifetime_execute, jobs, lambda i, res: results.__setitem__(i, res)
    )
    return {
        protocol: results[p_i * len(seeds) : (p_i + 1) * len(seeds)]
        for p_i, protocol in enumerate(protocols)
    }
