"""Parameter sweeps: the building block of every figure.

A :class:`Sweep` varies one scenario parameter over a list of values for a
set of protocols, averaging each cell over seeds — exactly how the paper
produced its graphs ("We used various scenario files ... and took an
average value to plot the graphs").

Execution goes through the campaign engine
(:mod:`repro.experiments.campaign`): a sweep is a single-axis campaign,
so it inherits the worker pool (``workers=``), the persistent JSON result
cache (``cache_dir=``) and resumability for free.  The in-process ``cache``
dict keeps its historical role of sharing simulations between sweeps that
extract different metrics from the same runs (Figures 7/8/9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from typing import Union

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult, run_scenario

#: extractor: result -> float (the figure's Y value), or a metric *name*
#: resolved through the backend's MetricSpec registry (backend-agnostic)
Extractor = Union[Callable[[RunResult], float], str]


def _x_key(x):
    """Normalize an axis value: numeric axes to float, categorical axes
    (e.g. the ``daemon`` discipline) kept as strings."""
    if isinstance(x, str):
        return x
    return float(x)


@dataclass
class SweepResult:
    """A grid of averaged Y values: series per protocol over the X axis.

    The X axis is numeric for the paper's sweeps (velocity, beacon
    interval, group size) and categorical for extension axes like the
    activation ``daemon``.
    """

    x_name: str
    x_values: List  # floats, or strings for categorical axes
    y_name: str
    series: Dict[str, List[float]]  # protocol -> y per x
    raw: Dict[Tuple[str, object], List[RunResult]] = field(default_factory=dict)

    def format_table(self, title: str = "") -> str:
        """Gnuplot-style rows like the paper's figures."""
        lines = []
        if title:
            lines.append(f"# {title}")
        protos = list(self.series)
        header = f"{self.x_name:>12s} " + " ".join(f"{p:>12s}" for p in protos)
        lines.append(header)
        for i, x in enumerate(self.x_values):
            label = f"{x:12.3f}" if not isinstance(x, str) else f"{x:>12s}"
            row = f"{label} " + " ".join(
                f"{self.series[p][i]:12.4f}" for p in protos
            )
            lines.append(row)
        return "\n".join(lines)


@dataclass
class Sweep:
    """Definition of one sweep."""

    x_name: str  # ScenarioConfig field to vary
    x_values: Sequence[float]
    protocols: Sequence[str]
    y_name: str
    extract: Extractor
    base: ScenarioConfig
    seeds: Sequence[int] = (1, 2, 3)

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        cache: Optional[Dict] = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        store=None,
        scheduler=None,
    ) -> SweepResult:
        """Run the grid through the campaign engine.

        ``cache`` maps ScenarioConfig -> RunResult and is shared across
        sweeps: figures that differ only in the metric they extract
        (e.g. Figures 7/8/9) reuse the same simulations.  ``workers``
        runs the grid on a process pool (or any explicit ``scheduler``);
        ``store`` — a result-store spec or instance, with ``cache_dir``
        kept as JSON-dir shorthand — additionally persists every run so
        later invocations (or other campaigns sharing cells) skip it.
        """
        # Imported here: campaign imports this module's types for reuse.
        from repro.experiments.campaign import CampaignSpec, run_campaign

        spec = CampaignSpec.from_mapping(
            name=f"sweep-{self.x_name}",
            base=self.base,
            protocols=tuple(self.protocols),
            seeds=tuple(self.seeds),
            grid={self.x_name: tuple(self.x_values)},
        )
        campaign = run_campaign(
            spec,
            workers=workers,
            cache_dir=cache_dir,
            store=store,
            scheduler=scheduler,
            memo=cache,
            progress=progress,
        )

        extract = self.extract
        if isinstance(extract, str):
            # Metric-name extractors resolve per backend through the
            # typed MetricSpec registry, so sweeps are backend-agnostic.
            from repro.experiments.backends import metric_extractor

            extract = metric_extractor(extract, spec.backends())

        series: Dict[str, List[float]] = {p: [] for p in self.protocols}
        raw: Dict[Tuple[str, object], List[RunResult]] = {}
        by_cell = campaign.by_cell()
        for x in self.x_values:
            for proto in self.protocols:
                results = by_cell[(proto, ((self.x_name, x),))]
                raw[(proto, _x_key(x))] = list(results)
                ys = [extract(r) for r in results]
                finite = [y for y in ys if y == y and y != float("inf")]
                series[proto].append(
                    sum(finite) / len(finite) if finite else float("nan")
                )
        return SweepResult(
            x_name=self.x_name,
            x_values=[_x_key(x) for x in self.x_values],
            y_name=self.y_name,
            series=series,
            raw=raw,
        )


def run_sweep(sweep: Sweep, **kwargs) -> SweepResult:
    """Convenience wrapper."""
    return sweep.run(**kwargs)
