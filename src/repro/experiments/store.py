"""Result stores: pluggable persistence for campaign run records.

This module is the **store layer** of the campaign service (see
``docs/campaigns.md``).  It owns two things the rest of the experiment
stack builds on:

* **Run identity** — :func:`config_key` (the stable content hash of a
  :class:`~repro.experiments.config.ScenarioConfig`), the cache schema
  constants, and :func:`shard_of` (the deterministic config-hash shard
  partition).  These are byte-for-byte the pre-refactor definitions: a
  cache dir written by any earlier version keeps hitting, and ``--shard
  I/K`` assigns every run to the same machine it always did.
* **The** :class:`ResultStore` **protocol** and its two backends —
  :class:`JsonDirStore` (one ``<hash>.json`` file per run, the historical
  layout) and :class:`SqliteStore` (one row per run in an append-only
  SQLite table indexed by config hash + schema version, WAL journaling,
  batched writes).  :func:`migrate_json_dir` ingests a v1/v2 JSON cache
  dir into any other store losslessly.

Both stores expose the same lookup semantics: unreadable, stale-schema,
foreign-backend or hand-edited records are *misses*, never errors, so a
corrupt store can never fail a campaign.  Stores also carry two small
side channels for the scheduler layer: worker **heartbeats** and run
**claims** (cross-shard work stealing).
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.config import ScenarioConfig

#: record-layout version written to new cache files.  v2 added the
#: optional ``backend`` key (absent = "des"); loading still accepts every
#: version in ``COMPATIBLE_SCHEMAS`` and tolerates records that lack
#: later-added summary/diagnostic fields, so old caches keep hitting.
CACHE_SCHEMA = 2

#: record versions the loader accepts; files outside this set are
#: treated as cache misses, never errors.
COMPATIBLE_SCHEMAS = (1, 2)

#: version prefix of the *config hash* — deliberately decoupled from
#: ``CACHE_SCHEMA`` (bumping the record layout must not re-key every
#: cached run; bump this only when run *semantics* change).
HASH_SCHEMA = 1

#: claims older than this are considered abandoned (a stolen run whose
#: worker died) and may be re-claimed by another scheduler
DEFAULT_CLAIM_TTL_S = 600.0

#: leftover ``*.tmp.*`` files older than this are swept on store open (a
#: killed writer's debris; the atomic-replace discipline means they were
#: never visible as records)
STALE_TMP_S = 3600.0


# ----------------------------------------------------------------------
# Config identity
# ----------------------------------------------------------------------
#: the always-hashed ScenarioConfig fields — the paper's original
#: scenario surface, hashed since the first cache existed.  Together
#: with ``_HASH_NEUTRAL_DEFAULTS`` below this is the machine-readable
#: hash contract: every dataclass field must appear in exactly one of
#: the two tables.  ``repro.lint`` enforces that statically (rules
#: H201-H203), :func:`hash_participation` enforces it at runtime (the
#: campaign ``--dry-run`` prints the same view), so the static and
#: runtime pictures of "what forks a cache cell" can never drift.
CORE_HASH_FIELDS: Tuple[str, ...] = (
    "protocol",
    "n_nodes",
    "arena_w",
    "arena_h",
    "v_min",
    "v_max",
    "pause_time",
    "group_size",
    "max_range",
    "e_elec",
    "e_rx",
    "eps_amp",
    "alpha",
    "bitrate_bps",
    "loss_prob",
    "capture_threshold",
    "beacon_interval",
    "rate_kbps",
    "packet_bytes",
    "traffic_start",
    "sim_time",
    "availability_probe_interval",
    "seed",
)

#: fields added to ScenarioConfig *after* caches existed in the wild,
#: mapped to the behavior-neutral default they were introduced with.  At
#: that default the field is dropped from the hash payload (and patched
#: into stored records on load), so every pre-existing cache entry — and
#: every campaign hash — stays valid; only non-default values fork new
#: cache cells.
_HASH_NEUTRAL_DEFAULTS: Dict[str, object] = {
    "daemon": "distributed",
    "backend": "des",
    # scenario-model axes (PR 5): the paper's scenario is the default on
    # every axis, so default configs keep their pre-model-API hashes
    "placement": "uniform",
    "mobility": "waypoint",
    "membership": "static-random",
    "traffic": "cbr",
    "model_params": (),
    "daemon_k": 4,
    "density_ref_n": 0,
    # rounds-engine implementation (PR 6): bit-identical trajectories by
    # contract, so the axis never changes results — only "array" forks a
    # cell (useful to benchmark cache-cold, not to distinguish outputs)
    "engine": "object",
    # topology representation (PR 8): hash-neutral at "dense"; "sparse"
    # forks a cell because CSR edge discovery rounds near-coincident
    # pair distances differently than the dense matrix identity
    "topology": "dense",
    # multi-group multicast (PR 10): one group is the paper's scenario
    # and bit-identical to the pre-groups code by construction (extra
    # groups draw from their own substreams), so a single-group config
    # keeps its historical hash on every axis value combination below
    "group_count": 1,
    "group_size_model": "fixed",
    "overlap_model": "independent",
}


def hash_participation() -> Tuple[Tuple[str, ...], Dict[str, object]]:
    """The hash contract as ``(hashed fields, neutral field -> default)``.

    Derived from the dataclass itself and cross-checked against the
    literal :data:`CORE_HASH_FIELDS` table — the same table
    ``repro.lint`` reads statically — raising ``RuntimeError`` on any
    drift, so a runtime consumer (the campaign ``--dry-run`` plan) can
    never show a different participation picture than the linter.
    """
    field_names = tuple(f.name for f in dataclasses.fields(ScenarioConfig))
    hashed = tuple(
        name for name in field_names if name not in _HASH_NEUTRAL_DEFAULTS
    )
    if set(hashed) != set(CORE_HASH_FIELDS) or any(
        name not in field_names for name in _HASH_NEUTRAL_DEFAULTS
    ):
        raise RuntimeError(
            "hash contract drift: CORE_HASH_FIELDS/_HASH_NEUTRAL_DEFAULTS "
            "do not partition the ScenarioConfig fields — run "
            "`python -m repro.lint src/repro` for the field-level report"
        )
    return hashed, dict(_HASH_NEUTRAL_DEFAULTS)


def _hash_payload(config: ScenarioConfig) -> Dict[str, object]:
    payload = dataclasses.asdict(config)
    for name, default in _HASH_NEUTRAL_DEFAULTS.items():
        if payload.get(name) == default:
            del payload[name]
    # External scenario inputs (the trace file) join the identity by
    # *content*: editing the file must fork the cache key, not serve
    # stale results computed from the old trajectories.
    from repro.experiments.scenario_models import scenario_content_fingerprint

    fingerprint = scenario_content_fingerprint(config)
    if fingerprint is not None:
        payload["scenario_content"] = fingerprint
    return payload


def config_key(config: ScenarioConfig) -> str:
    """Stable content hash of a scenario config.

    Canonical JSON (sorted keys, exact float repr) of every dataclass
    field, prefixed with the cache schema version.  Two configs collide
    iff they are field-for-field identical, so the hash is a safe cache
    key across processes and sessions.  Later-added fields are dropped at
    their defaults (see ``_HASH_NEUTRAL_DEFAULTS``) so old caches keep
    hitting.
    """
    payload = json.dumps(
        _hash_payload(config), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(
        f"v{HASH_SCHEMA}:{payload}".encode("utf-8")
    ).hexdigest()
    return digest[:24]


def shard_of(config: ScenarioConfig, n_shards: int) -> int:
    """Deterministic shard assignment by config hash.

    Stable across machines and campaign compositions (it depends on the
    run's identity alone), so K workers pointing ``--shard i/K`` at one
    shared store partition any campaign without coordination.
    """
    return int(config_key(config), 16) % n_shards


# ----------------------------------------------------------------------
# Persistent per-run records
# ----------------------------------------------------------------------
def record_from_result(result: object, elapsed_s: float = 0.0) -> dict:
    """JSON-safe record of one finished run (any backend)."""
    from repro.experiments.backends import backend_by_name

    backend = backend_by_name(getattr(result.config, "backend", "des"))
    return backend.record_from(result, elapsed_s=elapsed_s)


def result_from_record(record: dict) -> object:
    """Rebuild the result a record was made from (any backend, any era).

    Dispatches on the record's ``backend`` key (absent in v1 records,
    meaning DES) and tolerates records that lack later-added summary or
    diagnostic fields — a v1 cache written before those fields existed
    keeps loading unchanged.
    """
    from repro.experiments.backends import backend_by_name

    return backend_by_name(record.get("backend", "des")).result_from_record(
        record
    )


def checked_record(record: dict, config: ScenarioConfig) -> Optional[dict]:
    """Validate a raw record against the config it claims to describe.

    Returns the record (with its config section normalized) when it is a
    compatible-era, same-backend, field-for-field match; ``None``
    otherwise.  This is the single identity gate both store backends
    apply on load, so a hand-moved file or a hash collision can never
    impersonate another run.
    """
    if record.get("schema") not in COMPATIBLE_SCHEMAS:
        return None
    if record.get("backend", "des") != config.backend:
        return None  # a foreign backend's record cannot impersonate
    stored = record.get("config")
    if not isinstance(stored, dict):
        return None
    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    if not set(stored) <= known:
        return None  # a future era's record cannot impersonate
    # Records written before a hash-neutral field existed lack it; they
    # describe the default behavior by construction.  Rebuilding the
    # config normalizes JSON artifacts (model_params round-trips as
    # lists of lists) before the identity comparison.
    stored = {**_HASH_NEUTRAL_DEFAULTS, **stored}
    try:
        rebuilt = ScenarioConfig(**stored)
    except (TypeError, ValueError):
        return None  # unconstructible record (hand-edited file)
    if rebuilt != config:
        return None  # hash collision or hand-edited file
    record["config"] = dataclasses.asdict(rebuilt)
    return record


# ----------------------------------------------------------------------
# The store protocol
# ----------------------------------------------------------------------
class ResultStore(abc.ABC):
    """One way of persisting campaign run records.

    The primitive write is :meth:`put` — append one record under an
    explicit key (idempotent: a concurrent duplicate write of the same
    run resolves to one record, which is what makes racing shards safe).
    :meth:`store`/:meth:`load` are the config-addressed convenience
    layer every campaign consumer uses.
    """

    name: str = "?"

    # -- records -------------------------------------------------------
    @abc.abstractmethod
    def put(self, key: str, record: dict) -> str:
        """Persist ``record`` under ``key``; returns its location."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[dict]:
        """The raw record stored under ``key``, or None (no validation)."""

    def store(self, config: ScenarioConfig, record: dict) -> str:
        """Persist a finished run's record, keyed by its config hash."""
        return self.put(config_key(config), record)

    def load(self, config: ScenarioConfig) -> Optional[dict]:
        """The cached record for ``config``, or None.

        Unreadable/stale/foreign records are misses: the run is simply
        redone (and the record rewritten), so a corrupt store can never
        fail a campaign.
        """
        record = self.get(config_key(config))
        if record is None:
            return None
        return checked_record(record, config)

    def put_many(self, items: Iterable[Tuple[str, dict]]) -> int:
        """Batched append; returns the number of records written."""
        count = 0
        for key, record in items:
            self.put(key, record)
            count += 1
        return count

    def keys(self) -> List[str]:
        """Every record key present (unvalidated)."""
        raise NotImplementedError

    def run_count(self) -> int:
        return len(self.keys())

    def flush(self) -> None:
        """Make every buffered write durable."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- scheduler side channels --------------------------------------
    def heartbeat(self, worker: str, state: str = "running") -> None:
        """Record that ``worker`` is alive right now (best effort)."""

    def heartbeats(self) -> Dict[str, dict]:
        """worker -> {"seen_s": epoch, "state": str} of known workers."""
        return {}

    def claim(
        self, key: str, worker: str, ttl_s: float = DEFAULT_CLAIM_TTL_S
    ) -> bool:
        """Try to claim run ``key`` for ``worker`` (work stealing).

        Returns True when the claim is ours — nobody holds it, or the
        existing claim is staler than ``ttl_s`` (its worker died).
        Claims only avoid duplicated *work*; correctness never depends
        on them because :meth:`put` is idempotent per key.
        """
        return True

    def release(self, key: str) -> None:
        """Drop any claim on ``key`` (called once its record is stored)."""


# ----------------------------------------------------------------------
# JSON directory store (the historical cache layout)
# ----------------------------------------------------------------------
class JsonDirStore(ResultStore):
    """Directory of ``<config_key>.json`` run records.

    Byte-for-byte the historical ``--cache-dir`` layout: every record a
    pre-refactor campaign wrote keeps hitting, and every record this
    store writes is loadable by pre-refactor code.  Writes are
    crash-safe: the record lands in a tempfile that is fsynced and then
    atomically renamed into place, so a killed campaign can leave
    debris ``*.tmp.*`` files (swept on the next open) but never a
    truncated record that would silently demote to a cache miss.
    """

    name = "json"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._sweep_stale_tmps()

    def _sweep_stale_tmps(self) -> None:
        now = time.time()
        try:
            entries = os.listdir(self.root)
        except OSError:
            return
        for name in entries:
            if ".tmp." not in name:
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.path.getmtime(path) > STALE_TMP_S:
                    os.unlink(path)
            except OSError:
                pass  # another process swept it first

    # -- records -------------------------------------------------------
    def key_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def path(self, config: ScenarioConfig) -> str:
        return self.key_path(config_key(config))

    def put(self, key: str, record: dict) -> str:
        path = self.key_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())  # durable before it becomes visible
        os.replace(tmp, path)
        self.release(key)
        return path

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self.key_path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def keys(self) -> List[str]:
        return [
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        ]

    # -- scheduler side channels --------------------------------------
    def _side_dir(self, kind: str) -> str:
        path = os.path.join(self.root, kind)
        os.makedirs(path, exist_ok=True)
        return path

    def heartbeat(self, worker: str, state: str = "running") -> None:
        path = os.path.join(self._side_dir(".workers"), f"{worker}.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"seen_s": time.time(), "state": state}, fh)
        os.replace(tmp, path)

    def heartbeats(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        workers = os.path.join(self.root, ".workers")
        if not os.path.isdir(workers):
            return out
        for name in os.listdir(workers):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(workers, name), encoding="utf-8") as fh:
                    out[name[: -len(".json")]] = json.load(fh)
            except (OSError, ValueError):
                continue
        return out

    def _claim_path(self, key: str) -> str:
        return os.path.join(self._side_dir(".claims"), f"{key}.claim")

    def claim(
        self, key: str, worker: str, ttl_s: float = DEFAULT_CLAIM_TTL_S
    ) -> bool:
        path = self._claim_path(key)
        payload = json.dumps({"worker": worker, "since_s": time.time()})
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                stale = time.time() - os.path.getmtime(path) > ttl_s
            except OSError:
                return False  # claim vanished mid-check: somebody owns it
            if not stale:
                return False
            # abandoned claim: take it over (atomic replace; the loser
            # of a takeover race merely re-runs an idempotent put)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
            return True
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return True

    def release(self, key: str) -> None:
        claims = os.path.join(self.root, ".claims")
        if not os.path.isdir(claims):
            return
        try:
            os.unlink(os.path.join(claims, f"{key}.claim"))
        except OSError:
            pass


class ResultCache(JsonDirStore):
    """Pre-refactor name of :class:`JsonDirStore` (kept for imports)."""


# ----------------------------------------------------------------------
# SQLite columnar store
# ----------------------------------------------------------------------
class SqliteStore(ResultStore):
    """Append-only SQLite store: one row per run record.

    Built for campaigns with millions of records, where a
    file-per-run directory stops scaling (directory scans, inode
    pressure, no indexed lookup):

    * rows live in a single ``runs`` table with ``(key, schema)`` as the
      primary key — point lookup by config hash is an index probe;
    * hot columns (backend, protocol, seed, elapsed) are split out for
      SQL-side slicing while the full record round-trips losslessly in a
      JSON column, so every consumer of the JSON layout sees identical
      contents;
    * WAL journaling + ``synchronous=NORMAL``: concurrent readers never
      block the writer, and a mid-write kill can never leave a torn row
      (the satellite discipline of the JSON store, provided by the
      engine);
    * writes are batched: ``batch_size`` records per transaction (the
      default of 1 keeps the campaign's lose-at-most-in-flight resume
      guarantee; migration and bulk ingest pass something larger or use
      :meth:`put_many`, one transaction for the whole batch).

    Records are schema-versioned exactly like the JSON layout, and
    ``INSERT OR REPLACE`` on the key makes concurrent duplicate writes
    (racing shards, stolen runs) collapse to one row.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str,
        batch_size: int = 1,
        timeout_s: float = 30.0,
    ) -> None:
        self.path = path
        self.batch_size = max(1, int(batch_size))
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path, timeout=timeout_s)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:  # one transaction for the schema
            self._conn.execute(
                """CREATE TABLE IF NOT EXISTS runs (
                       key TEXT NOT NULL,
                       schema INTEGER NOT NULL,
                       backend TEXT NOT NULL,
                       protocol TEXT,
                       seed INTEGER,
                       elapsed_s REAL,
                       record TEXT NOT NULL,
                       created_s REAL NOT NULL,
                       PRIMARY KEY (key, schema)
                   )"""
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_by_backend "
                "ON runs (backend, protocol)"
            )
            self._conn.execute(
                """CREATE TABLE IF NOT EXISTS workers (
                       worker TEXT PRIMARY KEY,
                       seen_s REAL NOT NULL,
                       state TEXT NOT NULL
                   )"""
            )
            self._conn.execute(
                """CREATE TABLE IF NOT EXISTS claims (
                       key TEXT PRIMARY KEY,
                       worker TEXT NOT NULL,
                       since_s REAL NOT NULL
                   )"""
            )
        self._pending: List[Tuple[str, dict]] = []

    # -- records -------------------------------------------------------
    @staticmethod
    def _row(key: str, record: dict) -> Tuple:
        config = record.get("config") or {}
        return (
            key,
            int(record.get("schema", 0)),
            record.get("backend", "des"),
            config.get("protocol"),
            config.get("seed"),
            record.get("elapsed_s"),
            json.dumps(record, sort_keys=True),
            time.time(),
        )

    def put(self, key: str, record: dict) -> str:
        self._pending.append((key, record))
        if len(self._pending) >= self.batch_size:
            self.flush()
        return f"{self.path}#{key}"

    def put_many(self, items: Iterable[Tuple[str, dict]]) -> int:
        self.flush()
        rows = [self._row(key, record) for key, record in items]
        self._write_rows(rows)
        return len(rows)

    def _write_rows(self, rows: List[Tuple]) -> None:
        if not rows:
            return
        keys = [r[0] for r in rows]
        with self._conn:  # one transaction per batch
            self._conn.executemany(
                "INSERT OR REPLACE INTO runs "
                "(key, schema, backend, protocol, seed, elapsed_s, record, "
                "created_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.executemany(
                "DELETE FROM claims WHERE key = ?", [(k,) for k in keys]
            )

    def flush(self) -> None:
        pending, self._pending = self._pending, []
        self._write_rows([self._row(k, r) for k, r in pending])

    def get(self, key: str) -> Optional[dict]:
        self.flush()
        # newest *loadable* layout wins when several schema eras coexist:
        # a row written by some future schema must not shadow a record
        # this version can still read
        marks = ",".join("?" * len(COMPATIBLE_SCHEMAS))
        rows = self._conn.execute(
            f"SELECT record FROM runs WHERE key = ? ORDER BY "
            f"(schema IN ({marks})) DESC, schema DESC",
            (key, *COMPATIBLE_SCHEMAS),
        ).fetchall()
        for (raw,) in rows:
            try:
                return json.loads(raw)
            except ValueError:
                continue
        return None

    def keys(self) -> List[str]:
        self.flush()
        return [
            key
            for (key,) in self._conn.execute(
                "SELECT DISTINCT key FROM runs"
            ).fetchall()
        ]

    def run_count(self) -> int:
        self.flush()
        (count,) = self._conn.execute(
            "SELECT COUNT(DISTINCT key) FROM runs"
        ).fetchone()
        return int(count)

    def close(self) -> None:
        self.flush()
        self._conn.close()

    # -- scheduler side channels --------------------------------------
    def heartbeat(self, worker: str, state: str = "running") -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO workers (worker, seen_s, state) "
                "VALUES (?, ?, ?)",
                (worker, time.time(), state),
            )

    def heartbeats(self) -> Dict[str, dict]:
        return {
            worker: {"seen_s": seen, "state": state}
            for worker, seen, state in self._conn.execute(
                "SELECT worker, seen_s, state FROM workers"
            ).fetchall()
        }

    def claim(
        self, key: str, worker: str, ttl_s: float = DEFAULT_CLAIM_TTL_S
    ) -> bool:
        now = time.time()
        try:
            with self._conn:  # IMMEDIATE-equivalent: one writer at a time
                row = self._conn.execute(
                    "SELECT worker, since_s FROM claims WHERE key = ?", (key,)
                ).fetchone()
                if row is not None and now - row[1] <= ttl_s:
                    return row[0] == worker
                self._conn.execute(
                    "INSERT OR REPLACE INTO claims (key, worker, since_s) "
                    "VALUES (?, ?, ?)",
                    (key, worker, now),
                )
            return True
        except sqlite3.OperationalError:
            return False  # contended lock: treat as somebody else's claim

    def release(self, key: str) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM claims WHERE key = ?", (key,))


# ----------------------------------------------------------------------
# Store resolution
# ----------------------------------------------------------------------
#: suffixes that make a bare path mean "SQLite file", not "JSON dir"
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(spec: Union[str, ResultStore]) -> ResultStore:
    """Resolve a store spec into a live store.

    ``spec`` may already be a :class:`ResultStore` (returned as is), or a
    string: ``json:DIR`` / ``sqlite:PATH`` explicit forms, a path ending
    in ``.sqlite``/``.sqlite3``/``.db`` (SQLite), or any other path (a
    JSON record dir — the historical ``--cache-dir`` meaning).
    """
    if isinstance(spec, ResultStore):
        return spec
    if spec.startswith("json:"):
        return JsonDirStore(spec[len("json:"):])
    if spec.startswith("sqlite:"):
        return SqliteStore(spec[len("sqlite:"):])
    if spec.endswith(_SQLITE_SUFFIXES):
        return SqliteStore(spec)
    return JsonDirStore(spec)


def store_location(spec: Union[str, ResultStore]) -> str:
    """The filesystem path behind a store spec (without opening it)."""
    if isinstance(spec, JsonDirStore):
        return spec.root
    if isinstance(spec, SqliteStore):
        return spec.path
    if isinstance(spec, str):
        for prefix in ("json:", "sqlite:"):
            if spec.startswith(prefix):
                return spec[len(prefix):]
        return spec
    raise TypeError(f"not a store spec: {spec!r}")


def probe_store(spec: Union[str, ResultStore]) -> Optional[ResultStore]:
    """Open a store only if its backing location already exists.

    Dry runs probe the warm-cache state through this, so planning never
    creates directories or database files as a side effect.
    """
    if isinstance(spec, ResultStore):
        return spec
    return open_store(spec) if os.path.exists(store_location(spec)) else None


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
def migrate_json_dir(
    src_root: str,
    dest: Union[str, ResultStore],
    batch_size: int = 256,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Tuple[int, int]:
    """Ingest a v1/v2 ``<hash>.json`` cache dir into another store.

    Records are copied **losslessly**: the destination receives every
    field of every parseable record under its original key (the filename
    stem — the config hash computed when the record was written), keeping
    its own schema version.  Files that do not parse as records are
    skipped and counted, never fatal.  Returns ``(migrated, skipped)``.
    """
    store = open_store(dest)
    if isinstance(store, SqliteStore):
        store.batch_size = max(store.batch_size, batch_size)
    migrated = skipped = 0
    batch: List[Tuple[str, dict]] = []

    def _drain() -> None:
        nonlocal migrated
        migrated += store.put_many(batch)
        batch.clear()

    for name in sorted(os.listdir(src_root)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(src_root, name)
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            skipped += 1
            continue
        if not isinstance(record, dict) or "schema" not in record:
            skipped += 1
            continue
        batch.append((name[: -len(".json")], record))
        if len(batch) >= batch_size:
            _drain()
            if progress:
                progress(f"migrated {migrated} records...")
    _drain()
    store.flush()
    return migrated, skipped
