"""One experiment definition per figure of the paper (Figures 7-16).

Each :class:`FigureDef` knows how to build its parameter sweep at *quick*
scale (minutes of wall-clock; shorter runs, coarser grids, 3 seeds) or at
*paper* scale (1800 s runs, the full grids), how to print the series the
paper plots, and which **shape checks** must hold — the qualitative
orderings and trends the reproduction is accountable for (absolute
mJ/ms values depend on unpublished ns-2 constants; see DESIGN.md §4).

Shape checks are deliberately robust statements (trend endpoints, series
means, winner identities) rather than point comparisons, because
individual cells carry seed noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.core.daemons import DAEMON_NAMES
from repro.experiments.config import ScenarioConfig
from repro.experiments.sweeps import Sweep, SweepResult

FAMILY = ("ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e")
FOURWAY = ("maodv", "odmrp", "ss-spst", "ss-spst-e")

VELOCITIES_QUICK = (1.0, 5.0, 10.0, 20.0)
VELOCITIES_FULL = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0)
BEACONS_QUICK = (1.0, 2.0, 3.0, 4.0)
BEACONS_FULL = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
GROUPS_QUICK = (10, 30, 50)
GROUPS_FULL = (10, 20, 30, 40, 50)
#: categorical daemon axis (extension figure figd01); the adversarial
#: daemon has no DES realization and is excluded by construction
DAEMONS_QUICK = ("distributed", "central", "synchronous")
DAEMONS_FULL = ("distributed", "randomized", "central", "synchronous", "weakly-fair")
#: categorical mobility-model axis (extension figure figm01); the trace
#: model needs a scenario file and is excluded from canned grids
MOBILITY_QUICK = ("waypoint", "gauss-markov", "static")
MOBILITY_FULL = ("waypoint", "gauss-markov", "random-walk", "static")

ShapeCheck = Tuple[str, Callable[[SweepResult], bool]]


def _mean(xs: Sequence[float]) -> float:
    xs = [x for x in xs if x == x]
    return sum(xs) / len(xs) if xs else float("nan")


def _raw_mean(result: SweepResult, protocol: str, x, attr: str) -> float:
    """Mean of a per-run attribute over one cell's raw results.

    Lets shape checks reach diagnostics beyond the plotted metric —
    e.g. figm01 checks stabilization cost (``parent_changes``) while
    plotting PDR."""
    runs = result.raw.get((protocol, x), [])
    return _mean([float(getattr(r, attr)) for r in runs])


def _decreasing_ends(series: List[float], slack: float = 0.02) -> bool:
    """First value exceeds last (trend down) within a slack."""
    return series[0] >= series[-1] - slack


def _increasing_ends(series: List[float], slack: float = 0.02) -> bool:
    return series[-1] >= series[0] - slack


@dataclass
class FigureDef:
    """A reproducible figure.

    ``extract`` is either a callable over run results or a **metric
    name** resolved through the backend's typed
    :class:`~repro.experiments.backends.MetricSpec` registry (the
    backend-agnostic form).  ``extra_grid`` adds secondary campaign axes
    beyond the plotted ``x_name`` — e.g. figd02's activation-daemon axis
    — which the campaign CLI runs in full while :meth:`sweep` plots the
    primary axis at the base config.
    """

    fig_id: str
    title: str
    x_name: str
    y_name: str
    extract: Union[Callable, str]
    protocols: Sequence[str]
    x_quick: Sequence[float]
    x_full: Sequence[float]
    base_quick: ScenarioConfig
    base_full: ScenarioConfig
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""
    extra_grid: Dict[str, Sequence] = field(default_factory=dict)

    def sweep(self, quick: bool = True, seeds: Sequence[int] = (1, 2, 3)) -> Sweep:
        return Sweep(
            x_name=self.x_name,
            x_values=self.x_quick if quick else self.x_full,
            protocols=self.protocols,
            y_name=self.y_name,
            extract=self.extract,
            base=self.base_quick if quick else self.base_full,
            seeds=seeds,
        )

    def campaign_spec(self, quick: bool = True, seeds: Sequence[int] = (1, 2, 3)):
        """The figure's grid as a campaign (shares cells — and therefore
        cached runs — with every other figure over the same scenarios)."""
        from repro.experiments.campaign import CampaignSpec

        grid = {self.x_name: tuple(self.x_quick if quick else self.x_full)}
        for name, values in self.extra_grid.items():
            grid[name] = tuple(values)
        return CampaignSpec.from_mapping(
            name=self.fig_id,
            base=self.base_quick if quick else self.base_full,
            protocols=tuple(self.protocols),
            seeds=tuple(seeds),
            grid=grid,
        )

    def run(
        self,
        quick: bool = True,
        seeds: Sequence[int] = (1, 2, 3),
        cache: Dict = None,
        workers: int = 1,
        cache_dir: str = None,
        store=None,
        scheduler=None,
    ) -> SweepResult:
        return self.sweep(quick=quick, seeds=seeds).run(
            cache=cache,
            workers=workers,
            cache_dir=cache_dir,
            store=store,
            scheduler=scheduler,
        )

    def check(self, result: SweepResult) -> Dict[str, bool]:
        """Evaluate every shape check; returns {description: holds}."""
        return {desc: bool(fn(result)) for desc, fn in self.checks}


def _quick(**kw) -> ScenarioConfig:
    return ScenarioConfig.quick(**kw)


def _full(**kw) -> ScenarioConfig:
    return ScenarioConfig.paper_scale(**kw)


def _build_figures() -> Dict[str, FigureDef]:
    figs: Dict[str, FigureDef] = {}

    # ---------------------------------------------------------------- fig07
    figs["fig07"] = FigureDef(
        fig_id="fig07",
        title="Packet Delivery Ratio vs. Velocity (SS-SPST family)",
        x_name="v_max",
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        protocols=FAMILY,
        x_quick=VELOCITIES_QUICK,
        x_full=VELOCITIES_FULL,
        base_quick=_quick(),
        base_full=_full(),
        checks=[
            (
                "PDR decreases with speed for every variant",
                lambda r: all(_decreasing_ends(s, 0.05) for s in r.series.values()),
            ),
            (
                "SS-SPST-E delivers no better than SS-SPST on average",
                lambda r: _mean(r.series["ss-spst-e"]) <= _mean(r.series["ss-spst"]) + 0.02,
            ),
        ],
        notes=(
            "Paper: hop > T > E > F.  Our SS-SPST-F is more stable than the "
            "authors' (see EXPERIMENTS.md), so the PDR penalty lands on "
            "SS-SPST-E's deeper trees instead of on F."
        ),
    )

    # ---------------------------------------------------------------- fig08
    figs["fig08"] = FigureDef(
        fig_id="fig08",
        title="Unavailability Ratio vs. Velocity (SS-SPST family)",
        x_name="v_max",
        y_name="unavailability",
        extract=lambda r: r.summary.unavailability,
        protocols=FAMILY,
        x_quick=VELOCITIES_QUICK,
        x_full=VELOCITIES_FULL,
        base_quick=_quick(),
        base_full=_full(),
        checks=[
            (
                "unavailability rises with speed for SS-SPST and SS-SPST-E",
                lambda r: _increasing_ends(r.series["ss-spst"], 0.03)
                and _increasing_ends(r.series["ss-spst-e"], 0.03),
            ),
            (
                "SS-SPST-E is less available than SS-SPST on average",
                lambda r: _mean(r.series["ss-spst-e"]) >= _mean(r.series["ss-spst"]) - 0.02,
            ),
        ],
    )

    # ---------------------------------------------------------------- fig09
    figs["fig09"] = FigureDef(
        fig_id="fig09",
        title="Energy Consumption per Packet Delivered vs. Velocity (SS-SPST family)",
        x_name="v_max",
        y_name="energy_per_packet_mj",
        extract=lambda r: r.summary.energy_per_packet_mj,
        protocols=FAMILY,
        x_quick=VELOCITIES_QUICK,
        x_full=VELOCITIES_FULL,
        base_quick=_quick(),
        base_full=_full(),
        checks=[
            (
                "SS-SPST-E spends less energy than SS-SPST at every speed",
                lambda r: all(
                    e < h
                    for e, h in zip(r.series["ss-spst-e"], r.series["ss-spst"])
                ),
            ),
            (
                "SS-SPST-E is the cheapest variant at low mobility",
                lambda r: r.series["ss-spst-e"][0]
                == min(r.series[p][0] for p in r.series),
            ),
            (
                "SS-SPST-F also undercuts plain SS-SPST (node metric helps)",
                lambda r: _mean(r.series["ss-spst-f"]) < _mean(r.series["ss-spst"]),
            ),
            (
                "the E-vs-hop saving narrows (or at least does not widen) at speed",
                lambda r: (r.series["ss-spst"][-1] - r.series["ss-spst-e"][-1])
                <= (r.series["ss-spst"][0] - r.series["ss-spst-e"][0]) * 1.5 + 2.0,
            ),
        ],
        notes=(
            "Paper ordering hop > T > F > E.  Under our radio constants the "
            "T variant's relay-heavy trees pay more electronics/overhearing "
            "than one long hop, so T lands above hop (see EXPERIMENTS.md)."
        ),
    )

    # ---------------------------------------------------------------- fig10
    figs["fig10"] = FigureDef(
        fig_id="fig10",
        title="Packet Delivery Ratio vs. Beacon Interval",
        x_name="beacon_interval",
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=BEACONS_QUICK,
        x_full=BEACONS_FULL,
        base_quick=_quick(v_max=5.0),
        base_full=_full(v_max=5.0),
        checks=[
            (
                "PDR drops as the beacon interval grows (both protocols)",
                lambda r: all(_decreasing_ends(s, 0.02) for s in r.series.values()),
            ),
            (
                "the drop steepens past 3 s for SS-SPST-E",
                lambda r: (r.series["ss-spst-e"][-2] - r.series["ss-spst-e"][-1])
                >= (r.series["ss-spst-e"][0] - r.series["ss-spst-e"][1]) - 0.02,
            ),
        ],
    )

    # ---------------------------------------------------------------- fig11
    figs["fig11"] = FigureDef(
        fig_id="fig11",
        title="Energy Consumption per Packet Delivered vs. Beacon Interval",
        x_name="beacon_interval",
        y_name="energy_per_packet_mj",
        extract=lambda r: r.summary.energy_per_packet_mj,
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=BEACONS_QUICK,
        x_full=BEACONS_FULL,
        base_quick=_quick(v_max=5.0),
        base_full=_full(v_max=5.0),
        checks=[
            (
                "energy/packet is not monotonically decreasing in the interval "
                "(losses take over: the curve turns back up)",
                lambda r: r.series["ss-spst-e"][-1]
                >= min(r.series["ss-spst-e"]) - 0.25,
            ),
            (
                "SS-SPST-E stays cheaper than SS-SPST at every interval",
                lambda r: all(
                    e <= h + 0.5
                    for e, h in zip(r.series["ss-spst-e"], r.series["ss-spst"])
                ),
            ),
        ],
    )

    # ---------------------------------------------------------------- fig12
    figs["fig12"] = FigureDef(
        fig_id="fig12",
        title="Packet Delivery Ratio vs. Multicast Group Size",
        x_name="group_size",
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        protocols=FOURWAY,
        x_quick=GROUPS_QUICK,
        x_full=GROUPS_FULL,
        base_quick=_quick(v_max=1.0),
        base_full=_full(v_max=1.0),
        checks=[
            (
                "self-stabilizing protocols are group-scalable "
                "(SS-SPST PDR varies < 0.15 across group sizes)",
                lambda r: max(r.series["ss-spst"]) - min(r.series["ss-spst"]) < 0.15,
            ),
            (
                "ODMRP delivers best at small groups",
                lambda r: r.series["odmrp"][0]
                == max(r.series[p][0] for p in r.series),
            ),
            (
                "MAODV delivers least at small groups",
                lambda r: r.series["maodv"][0]
                <= min(r.series[p][0] for p in ("odmrp", "ss-spst")) + 0.02,
            ),
        ],
        notes=(
            "Paper: ODMRP's PDR collapses at large groups (redundant-path "
            "overhead in their 64 kbps setting); our mesh stays deliverable "
            "— the group-scalability of the SS family is the claim checked."
        ),
    )

    # ---------------------------------------------------------------- fig13
    figs["fig13"] = FigureDef(
        fig_id="fig13",
        title="Control Byte Overhead vs. Multicast Group Size",
        x_name="group_size",
        y_name="control_overhead",
        extract=lambda r: r.summary.control_overhead,
        protocols=FOURWAY,
        x_quick=GROUPS_QUICK,
        x_full=GROUPS_FULL,
        base_quick=_quick(v_max=1.0),
        base_full=_full(v_max=1.0),
        checks=[
            (
                "ODMRP has the highest control overhead",
                lambda r: _mean(r.series["odmrp"])
                == max(_mean(s) for s in r.series.values()),
            ),
            (
                "MAODV has the least control overhead",
                lambda r: _mean(r.series["maodv"])
                == min(_mean(s) for s in r.series.values()),
            ),
            (
                "SS-SPST-E spends more control bytes than SS-SPST "
                "(bigger beacons)",
                lambda r: _mean(r.series["ss-spst-e"]) >= _mean(r.series["ss-spst"]),
            ),
        ],
    )

    # ---------------------------------------------------------------- fig14
    figs["fig14"] = FigureDef(
        fig_id="fig14",
        title="Packet Delivery Ratio vs. Velocity (4-way comparison)",
        x_name="v_max",
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        protocols=FOURWAY,
        x_quick=VELOCITIES_QUICK,
        x_full=VELOCITIES_FULL,
        base_quick=_quick(),
        base_full=_full(),
        checks=[
            (
                "ODMRP's PDR is the highest even at high speed",
                lambda r: r.series["odmrp"][-1]
                == max(r.series[p][-1] for p in r.series),
            ),
            (
                "every protocol loses delivery as speed grows",
                lambda r: all(_decreasing_ends(s, 0.05) for s in r.series.values()),
            ),
        ],
    )

    # ---------------------------------------------------------------- fig15
    figs["fig15"] = FigureDef(
        fig_id="fig15",
        title="Average Delay vs. Multicast Group Size",
        x_name="group_size",
        y_name="avg_delay_ms",
        extract=lambda r: r.summary.avg_delay_ms,
        protocols=FOURWAY,
        x_quick=GROUPS_QUICK,
        x_full=GROUPS_FULL,
        base_quick=_quick(v_max=1.0),
        base_full=_full(v_max=1.0),
        checks=[
            (
                "proactivity pays: SS-SPST undercuts MAODV's delay",
                lambda r: _mean(r.series["ss-spst"]) <= _mean(r.series["maodv"]),
            ),
            (
                "SS-SPST is faster than SS-SPST-E (shallower trees)",
                lambda r: _mean(r.series["ss-spst"]) <= _mean(r.series["ss-spst-e"]),
            ),
        ],
        notes=(
            "Paper: both on-demand protocols are slower than the SS family. "
            "Our broadcast MAC has no per-link ARQ, which understates mesh "
            "delay: ODMRP's first-copy latency lands below SS-SPST here "
            "(documented deviation, EXPERIMENTS.md)."
        ),
    )

    # ---------------------------------------------------------------- figd01
    # Extension (not a paper figure): the activation-daemon axis.  The
    # round model's stabilization guarantees are stated relative to a
    # daemon; this sweep asks how much the packet-level protocol cares
    # which beacon-scheduling discipline realizes it.
    figs["figd01"] = FigureDef(
        fig_id="figd01",
        title="Packet Delivery Ratio vs. Activation Daemon (extension)",
        x_name="daemon",
        y_name="pdr",
        extract=lambda r: r.summary.pdr,
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=DAEMONS_QUICK,
        x_full=DAEMONS_FULL,
        checks=[
            (
                "every daemon keeps the protocol deliverable (PDR finite, in [0, 1])",
                lambda r: all(
                    0.0 <= y <= 1.0 for s in r.series.values() for y in s
                ),
            ),
            (
                "de-synchronized beaconing (distributed) delivers no worse "
                "than lockstep (synchronous) for SS-SPST",
                lambda r: r.series["ss-spst"][
                    list(r.x_values).index("distributed")
                ]
                >= r.series["ss-spst"][list(r.x_values).index("synchronous")]
                - 0.05,
            ),
        ],
        base_quick=_quick(v_max=5.0),
        base_full=_full(v_max=5.0),
        notes=(
            "The adversarial-max-cost daemon is round-model only (no DES "
            "realization) and is deliberately absent from the grid."
        ),
    )

    # ---------------------------------------------------------------- figd02
    # Extension (not a paper figure): stabilization time vs daemon vs n on
    # the ROUNDS backend.  The round model is orders of magnitude faster
    # per run than the DES, so this campaign covers every registered
    # daemon — including the round-model-only adversarial-max-cost stress
    # schedule the DES backend rejects — at paper scale (n up to 200).
    # The campaign CLI runs the full daemon x n grid (extra_grid); the
    # sweep/plot view varies n under the base (distributed) daemon.
    figs["figd02"] = FigureDef(
        fig_id="figd02",
        title="Stabilization Rounds vs. Network Size per Activation Daemon "
        "(rounds backend, extension)",
        x_name="n_nodes",
        y_name="rounds",
        extract="rounds",  # resolved via the rounds backend's MetricSpec
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=(50, 200),
        x_full=(50, 100, 150, 200),
        base_quick=_quick(backend="rounds", group_size=20),
        base_full=_full(backend="rounds", group_size=20),
        extra_grid={"daemon": DAEMON_NAMES},
        checks=[
            (
                "every cell stabilizes under the default daemon "
                "(rounds finite and positive)",
                lambda r: all(
                    y == y and 0 < y < float("inf")
                    for s in r.series.values()
                    for y in s
                ),
            ),
            (
                "stabilization work does not shrink with network size",
                lambda r: all(
                    _increasing_ends(s, 0.5) for s in r.series.values()
                ),
            ),
        ],
        notes=(
            "Rounds-backend topologies are the t=0 snapshot of the DES "
            "scenario (same placement/group streams).  The adversarial "
            "daemon rides in the campaign grid only; `--figure figd02` "
            "through the campaign CLI covers it."
        ),
    )

    # ---------------------------------------------------------------- figd03
    # Extension (not a paper figure): deep-scale stabilization on the
    # rounds backend — the columnar array engine over CSR (sparse)
    # topologies pushes the n axis three orders of magnitude past
    # figd02's paper-scale grid.  Constant density (density_ref_n pins
    # it to the paper's 50-nodes-per-750m-square arena) so the n axis
    # varies network *extent*, not degree; the synchronous daemon keeps
    # round counts comparable across n (serial daemons need O(n) steps
    # per round and are out of reach at 10^5 by construction, not by
    # implementation).
    figs["figd03"] = FigureDef(
        fig_id="figd03",
        title="Stabilization Rounds vs. Network Size at Deep Scale "
        "(array engine over sparse topologies, extension)",
        x_name="n_nodes",
        y_name="rounds",
        extract="rounds",  # resolved via the rounds backend's MetricSpec
        protocols=("ss-spst", "ss-spst-t"),
        x_quick=(1_000, 4_000),
        x_full=(1_000, 10_000, 100_000),
        base_quick=_quick(
            backend="rounds",
            engine="array",
            topology="sparse",
            daemon="synchronous",
            n_nodes=1_000,
            group_size=100,
            density_ref_n=50,
        ),
        base_full=_full(
            backend="rounds",
            engine="array",
            topology="sparse",
            daemon="synchronous",
            n_nodes=1_000,
            group_size=100,
            density_ref_n=50,
        ),
        checks=[
            (
                "every deep-scale cell stabilizes (rounds finite and positive)",
                lambda r: all(
                    y == y and 0 < y < float("inf")
                    for s in r.series.values()
                    for y in s
                ),
            ),
            (
                "stabilization work grows with network extent",
                lambda r: all(
                    _increasing_ends(s, 0.5) for s in r.series.values()
                ),
            ),
        ],
        notes=(
            "engine='array' + topology='sparse' is what makes the 10^5 "
            "column tractable (the dense distance matrix alone is 80 GB "
            "there); results at 'sparse' hash separately from 'dense' "
            "(near-coincident pair distances round differently).  Quick "
            "scale stops at n=4000; `--paper` runs the 10^5 column."
        ),
    )

    # ---------------------------------------------------------------- figm01
    # Extension (not a paper figure): the mobility-model axis of the
    # scenario API.  The paper's causal chain — mobility -> fault rate ->
    # stabilization lag -> PDR — is only ever sampled at one mobility
    # model (random waypoint); this figure varies the *model* while the
    # speed envelope stays fixed, pairing delivery (the plotted PDR) with
    # stabilization cost (parent churn, checked via the raw results) and
    # the measured fault process (link_breaks_per_s is a DES MetricSpec).
    figs["figm01"] = FigureDef(
        fig_id="figm01",
        title="Packet Delivery Ratio and Stabilization Cost vs. Mobility "
        "Model (extension)",
        x_name="mobility",
        y_name="pdr",
        extract="pdr",  # resolved via the DES backend's MetricSpec
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=MOBILITY_QUICK,
        x_full=MOBILITY_FULL,
        base_quick=_quick(v_max=5.0),
        base_full=_full(v_max=5.0),
        checks=[
            (
                "every mobility model keeps the protocol deliverable "
                "(PDR in [0, 1], no nan cells)",
                lambda r: all(
                    y == y and 0.0 <= y <= 1.0
                    for s in r.series.values()
                    for y in s
                ),
            ),
            (
                "a static network (WANET) delivers no worse than waypoint "
                "mobility for SS-SPST-E",
                lambda r: r.series["ss-spst-e"][
                    list(r.x_values).index("static")
                ]
                >= r.series["ss-spst-e"][list(r.x_values).index("waypoint")]
                - 0.05,
            ),
            (
                "zero mobility means less tree churn: static parent "
                "changes do not exceed waypoint's (SS-SPST-E)",
                lambda r: _raw_mean(r, "ss-spst-e", "static", "parent_changes")
                <= _raw_mean(r, "ss-spst-e", "waypoint", "parent_changes"),
            ),
        ],
        notes=(
            "The trace model is deliberately absent (needs a scenario "
            "file; pass --grid mobility=trace --model-param "
            "trace_file=... for replay studies).  Gauss-Markov uses the "
            "same speed envelope midpoint, so differences are the motion "
            "*pattern*, not the speed."
        ),
    )

    # ---------------------------------------------------------------- figg01
    # Extension (not a paper figure): the multi-group workload axis
    # (repro.groups).  The paper evaluates one multicast session at a
    # time; this figure stacks k concurrent SS-SPST sessions on one
    # contended medium and plots aggregate PDR vs group_count (x n via
    # the campaign grid), with cross-group fairness and link stress
    # checked through the raw per-run diagnostics.
    figs["figg01"] = FigureDef(
        fig_id="figg01",
        title="Aggregate PDR and Cross-Group Fairness vs. Concurrent "
        "Groups (extension)",
        x_name="group_count",
        y_name="pdr",
        extract="pdr",  # resolved via the DES backend's MetricSpec
        protocols=("ss-spst", "ss-spst-e"),
        x_quick=(1, 2, 4),
        x_full=(1, 2, 4, 8),
        base_quick=_quick(v_max=5.0, n_nodes=30, group_size=8),
        base_full=_full(v_max=5.0, group_size=10),
        extra_grid={"n_nodes": (30, 50)},
        checks=[
            (
                "aggregate PDR stays in [0, 1] with no nan cells",
                lambda r: all(
                    y == y and 0.0 <= y <= 1.0
                    for s in r.series.values()
                    for y in s
                ),
            ),
            (
                "a single group scores perfect Jain fairness",
                lambda r: _raw_mean(r, "ss-spst", 1, "fairness_jain") > 0.999,
            ),
            (
                "fairness stays a valid Jain index under 4-way contention",
                lambda r: 0.0
                <= _raw_mean(r, "ss-spst", 4, "fairness_jain")
                <= 1.0 + 1e-9,
            ),
            (
                "link stress is populated for multi-group cells "
                "(trees share at least their own edges)",
                lambda r: _raw_mean(r, "ss-spst", 4, "link_stress_mean") >= 1.0,
            ),
            (
                "contention costs delivery: 4 groups do no better than 1",
                lambda r: r.series["ss-spst"][list(r.x_values).index(4)]
                <= r.series["ss-spst"][list(r.x_values).index(1)] + 0.05,
            ),
        ],
        notes=(
            "group_count is hash-neutral at 1 (the paper's single "
            "session), so the k=1 column shares cache cells with every "
            "other figure.  Groups 1..k-1 come from the group-size/"
            "overlap generators; sweep overlap with --grid "
            "overlap_model=independent,disjoint,shared-core."
        ),
    )

    # ---------------------------------------------------------------- fig16
    figs["fig16"] = FigureDef(
        fig_id="fig16",
        title="Energy Consumption per Packet Delivered vs. Velocity (4-way)",
        x_name="v_max",
        y_name="energy_per_packet_mj",
        extract=lambda r: r.summary.energy_per_packet_mj,
        protocols=FOURWAY,
        x_quick=VELOCITIES_QUICK,
        x_full=VELOCITIES_FULL,
        base_quick=_quick(),
        base_full=_full(),
        checks=[
            (
                "SS-SPST-E is the most energy-efficient of all four",
                lambda r: _mean(r.series["ss-spst-e"])
                == min(_mean(s) for s in r.series.values()),
            ),
            (
                "the on-demand protocols cost the most energy",
                lambda r: min(_mean(r.series["odmrp"]), _mean(r.series["maodv"]))
                > max(_mean(r.series["ss-spst"]), _mean(r.series["ss-spst-e"])),
            ),
            (
                "SS-SPST-E undercuts SS-SPST at every speed",
                lambda r: all(
                    e < h
                    for e, h in zip(r.series["ss-spst-e"], r.series["ss-spst"])
                ),
            ),
        ],
    )

    return figs


#: the per-figure registry (fig07..fig16 plus the figd01/figd02/figm01/
#: figg01 extensions)
FIGURES: Dict[str, FigureDef] = _build_figures()
