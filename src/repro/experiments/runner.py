"""Build and run one scenario end to end."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.energy.radio import FirstOrderRadioModel
from repro.experiments.config import ScenarioConfig
from repro.metrics.hub import MetricsHub, RunSummary
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.mac import MacConfig
from repro.net.node import Network
from repro.protocols.registry import make_agent_factory
from repro.protocols.ss_spst import SSSPSTAgent
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.traffic.cbr import CbrSource
from repro.util.geometry import Arena
from repro.util.rng import RngStreams


@dataclass
class RunResult:
    """Summary plus protocol-level diagnostics for one run."""

    summary: RunSummary
    config: ScenarioConfig
    parent_changes: int  # SS-SPST family churn (0 for on-demand protocols)
    events_executed: int
    frames_sent: int
    frames_collided: int

    def __getattr__(self, item):
        # Convenience passthrough: result.pdr == result.summary.pdr.
        # Must raise AttributeError (not recurse) for dunders and for
        # lookups before ``summary`` exists: pickle probes instance
        # attributes like ``__setstate__`` on a not-yet-populated object,
        # which previously recursed forever and broke worker pools.
        if item.startswith("__") and item.endswith("__"):
            raise AttributeError(item)
        try:
            summary = self.__dict__["summary"]
        except KeyError:
            raise AttributeError(item) from None
        return getattr(summary, item)


def build_network(config: ScenarioConfig):
    """Construct simulator + network + group from a config (no agents)."""
    sim = Simulator()
    streams = RngStreams(config.seed)
    arena = Arena(config.arena_w, config.arena_h)
    mobility = RandomWaypoint(
        config.n_nodes,
        arena,
        v_min=config.v_min,
        v_max=config.v_max,
        pause_time=config.pause_time,
        rng=streams.get("mobility"),
    )
    radio = FirstOrderRadioModel(
        e_elec=config.e_elec,
        e_rx=config.e_rx,
        eps_amp=config.eps_amp,
        alpha=config.alpha,
        max_range=config.max_range,
        d_floor=10.0,
    )
    network = Network(
        sim,
        mobility,
        radio,
        streams,
        mac_config=MacConfig(),
        bitrate_bps=config.bitrate_bps,
        loss_prob=config.loss_prob,
        capture_threshold=config.capture_threshold,
    )
    # Group: source 0 plus group_size - 1 receivers drawn from the rest.
    receivers = streams.get("group").choice(
        np.arange(1, config.n_nodes), size=config.group_size - 1, replace=False
    )
    network.set_group(source=0, members=[int(r) for r in receivers])
    return sim, network


def run_scenario(config: ScenarioConfig) -> RunResult:
    """Run one full scenario and return its metrics.

    The same seed yields the identical mobility scenario and group for
    every protocol ("We used the same scenarios to evaluate all the
    protocols", section 6) because protocol-specific randomness draws from
    separate named substreams.
    """
    sim, network = build_network(config)
    hub = MetricsHub(
        n_receivers=len(network.receivers),
        availability_window=max(2.0, 4.0 * 1.0 / _packets_per_second(config)),
    )
    hub.set_packet_size_hint(config.packet_bytes)
    network.hub = hub

    network.attach_agents(
        make_agent_factory(
            config.protocol,
            beacon_interval=config.beacon_interval,
            daemon=config.daemon,
        )
    )
    network.start()

    traffic = CbrSource(
        network,
        rate_kbps=config.rate_kbps,
        packet_bytes=config.packet_bytes,
        start_time=config.traffic_start,
    )
    traffic.start()

    receivers = network.receivers
    prober = PeriodicTimer(
        sim,
        config.availability_probe_interval,
        lambda: hub.probe_availability(receivers, sim.now),
        start_offset=config.traffic_start + config.availability_probe_interval,
    )

    sim.run(until=config.sim_time)

    network.stop()
    traffic.stop()
    prober.stop()

    parent_changes = sum(
        node.agent.parent_changes
        for node in network.nodes
        if isinstance(node.agent, SSSPSTAgent)
    )
    return RunResult(
        summary=hub.summary(network.total_energy()),
        config=config,
        parent_changes=parent_changes,
        events_executed=sim.events_executed,
        frames_sent=network.medium.stats.frames_sent,
        frames_collided=network.medium.stats.frames_collided,
    )


def _packets_per_second(config: ScenarioConfig) -> float:
    return (config.rate_kbps * 1000.0) / (config.packet_bytes * 8)
