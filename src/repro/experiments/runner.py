"""Build and run one scenario end to end."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.radio import FirstOrderRadioModel
from repro.experiments.config import ScenarioConfig
from repro.experiments.scenario_models import (
    build_scenario_space,
    resolved_models,
)
from repro.groups.agents import GroupDispatchAgent, make_group_dispatch_factory
from repro.groups.metrics import group_tree_stats
from repro.groups.traffic import MultiGroupCbr
from repro.metrics.hub import MetricsHub, RunSummary
from repro.mobility.analysis import mobility_profile
from repro.net.mac import MacConfig
from repro.net.node import Network
from repro.protocols.registry import make_agent_factory
from repro.protocols.ss_spst import SSSPSTAgent
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer

#: adjacency sampling step (seconds) for the per-run mobility profile
CHURN_SAMPLE_DT = 1.0


@dataclass
class RunResult:
    """Summary plus protocol-level diagnostics for one run."""

    summary: RunSummary
    config: ScenarioConfig
    parent_changes: int  # SS-SPST family churn (0 for on-demand protocols)
    events_executed: int
    frames_sent: int
    frames_collided: int
    # Mobility fault-process diagnostics (repro.mobility.analysis),
    # sampled from a replay of the run's mobility model: link breaks are
    # the "faults" self-stabilization absorbs, partitioning the ceiling
    # on any protocol's PDR.  nan in records written before these existed.
    link_breaks_per_s: float = float("nan")
    link_events_per_s: float = float("nan")
    mean_degree: float = float("nan")
    partition_fraction: float = float("nan")
    # Cross-group diagnostics (repro.groups): fairness over per-group
    # PDRs, worst-served group, and link-stress/overlap of the k final
    # trees.  Populated for every SS-SPST-family run (a single group
    # scores fairness 1.0, stress 1.0, overlap 0.0); nan for on-demand
    # protocols and in records written before these existed.
    fairness_jain: float = float("nan")
    group_pdr_min: float = float("nan")
    link_stress_mean: float = float("nan")
    link_stress_max: float = float("nan")
    tree_overlap_ratio: float = float("nan")

    def __getattr__(self, item):
        # Convenience passthrough: result.pdr == result.summary.pdr.
        # Must raise AttributeError (not recurse) for dunders and for
        # lookups before ``summary`` exists: pickle probes instance
        # attributes like ``__setstate__`` on a not-yet-populated object,
        # which previously recursed forever and broke worker pools.
        if item.startswith("__") and item.endswith("__"):
            raise AttributeError(item)
        try:
            summary = self.__dict__["summary"]
        except KeyError:
            raise AttributeError(item) from None
        return getattr(summary, item)


def build_network(config: ScenarioConfig):
    """Construct simulator + network + group from a config (no agents).

    The scenario structure — arena, initial placement, mobility process,
    multicast group — comes from the config's scenario models via
    :func:`~repro.experiments.scenario_models.build_scenario_space`, the
    same path the rounds backend snapshots at t = 0.
    """
    sim = Simulator()
    space = build_scenario_space(config)
    radio = FirstOrderRadioModel(
        e_elec=config.e_elec,
        e_rx=config.e_rx,
        eps_amp=config.eps_amp,
        alpha=config.alpha,
        max_range=config.max_range,
        d_floor=10.0,
    )
    network = Network(
        sim,
        space.mobility,
        radio,
        space.streams,
        mac_config=MacConfig(),
        bitrate_bps=config.bitrate_bps,
        loss_prob=config.loss_prob,
        capture_threshold=config.capture_threshold,
    )
    network.set_groups(space.groups)
    return sim, network


def run_scenario(config: ScenarioConfig) -> RunResult:
    """Run one full scenario and return its metrics.

    The same seed yields the identical mobility scenario and group for
    every protocol ("We used the same scenarios to evaluate all the
    protocols", section 6) because protocol-specific randomness draws from
    separate named substreams.
    """
    sim, network = build_network(config)
    multigroup = config.group_count > 1
    hub = MetricsHub(
        n_receivers=len(network.receivers),
        availability_window=max(2.0, 4.0 * 1.0 / _packets_per_second(config)),
    )
    hub.set_packet_size_hint(config.packet_bytes)
    if multigroup:
        hub.set_group_receiver_counts(
            {g.gid: len(g.receivers) for g in network.groups}
        )
    network.hub = hub

    if multigroup:
        # One SS-SPST instance per group per node, one shared medium
        # (validate_group_models already restricted the protocol family).
        network.attach_agents(
            make_group_dispatch_factory(
                config.protocol,
                [g.gid for g in network.groups],
                beacon_interval=config.beacon_interval,
                daemon=config.daemon,
            )
        )
    else:
        network.attach_agents(
            make_agent_factory(
                config.protocol,
                beacon_interval=config.beacon_interval,
                daemon=config.daemon,
            )
        )
    network.start()

    models = resolved_models(config)
    if multigroup:
        traffic = MultiGroupCbr(
            network,
            rate_kbps=config.rate_kbps,
            packet_bytes=config.packet_bytes,
            start_time=config.traffic_start,
        )
    else:
        traffic = models["traffic"].build(network, config)
    traffic.start()
    # Membership models may schedule mid-run join/leave events (rotating;
    # churn only ever touches group 0, the membership model's group).
    models["membership"].install(network, config)

    # The probed set is read live: rotating membership changes who the
    # receivers are mid-run (a no-op for static memberships).
    def _probe() -> None:
        if multigroup:
            for g in network.groups:
                hub.probe_availability(
                    network.group_receivers_of(g.gid), sim.now, group=g.gid
                )
        else:
            hub.probe_availability(network.receivers, sim.now)

    prober = PeriodicTimer(
        sim,
        config.availability_probe_interval,
        _probe,
        start_offset=config.traffic_start + config.availability_probe_interval,
    )

    sim.run(until=config.sim_time)

    network.stop()
    traffic.stop()
    prober.stop()

    parent_changes = sum(
        node.agent.parent_changes
        for node in network.nodes
        if isinstance(node.agent, (SSSPSTAgent, GroupDispatchAgent))
    )
    tree_stats = _final_tree_stats(network)
    profile = _mobility_profile(config)
    return RunResult(
        summary=hub.summary(network.total_energy()),
        config=config,
        parent_changes=parent_changes,
        events_executed=sim.events_executed,
        frames_sent=network.medium.stats.frames_sent,
        frames_collided=network.medium.stats.frames_collided,
        link_breaks_per_s=profile.churn.break_rate,
        link_events_per_s=profile.churn.event_rate,
        mean_degree=profile.churn.mean_degree,
        partition_fraction=profile.partition_fraction,
        fairness_jain=hub.fairness_jain(),
        group_pdr_min=hub.group_pdr_min(),
        **tree_stats,
    )


def _final_tree_stats(network: Network) -> Dict[str, float]:
    """Link-stress/overlap of the final per-group trees.

    Reads settled agent state only — no RNG, no events — so computing it
    cannot perturb the run.  Empty for protocols without an explicit
    parent tree (on-demand baselines): the RunResult keeps its nan
    defaults there.
    """
    parent_maps: Dict[int, Dict[int, Optional[int]]] = {}
    sources: Dict[int, int] = {}
    receivers: Dict[int, object] = {}
    for group in network.groups:
        parents: Dict[int, Optional[int]] = {}
        for node in network.nodes:
            agent = node.agent
            if isinstance(agent, GroupDispatchAgent):
                agent = agent.agent_for(group.gid)
            if not isinstance(agent, SSSPSTAgent):
                return {}
            parents[node.id] = agent.state.parent
        parent_maps[group.gid] = parents
        sources[group.gid] = network.group_source_of(group.gid)
        receivers[group.gid] = network.group_receivers_of(group.gid)
    return group_tree_stats(parent_maps, sources, receivers)


#: config fields the mobility trajectory (and so the profile) depends on
#: (group_count: the platoon model defaults its convoy count to it)
_PROFILE_FIELDS = (
    "seed",
    "group_count",
    "n_nodes",
    "arena_w",
    "arena_h",
    "density_ref_n",
    "placement",
    "mobility",
    "model_params",
    "v_min",
    "v_max",
    "pause_time",
    "max_range",
    "sim_time",
)

#: per-process profile memo — protocol/daemon sweeps share one scenario
#: per seed ("we used the same scenarios for all the protocols"), so the
#: replay is computed once per scenario, not once per run
_PROFILE_MEMO: Dict[tuple, object] = {}


def _mobility_profile(config: ScenarioConfig):
    """Fault-process statistics of the run's mobility scenario.

    Mobility models advance lazily and reject backwards queries, so the
    simulation's own (now-exhausted) model cannot be resampled; a fresh
    scenario space replays the identical trajectory from the same seed.
    Memoized on the trajectory-relevant config fields because the
    profile is protocol-independent.
    """
    key = tuple(getattr(config, f) for f in _PROFILE_FIELDS)
    profile = _PROFILE_MEMO.get(key)
    if profile is None:
        replay = build_scenario_space(config).mobility
        profile = mobility_profile(
            replay,
            config.max_range,
            duration=config.sim_time,
            dt=CHURN_SAMPLE_DT,
        )
        if len(_PROFILE_MEMO) >= 256:  # bound worker-process memory
            _PROFILE_MEMO.clear()
        _PROFILE_MEMO[key] = profile
    return profile


def _packets_per_second(config: ScenarioConfig) -> float:
    return (config.rate_kbps * 1000.0) / (config.packet_bytes * 8)
