"""Declarative scenario models: pluggable placement x mobility x
membership x traffic.

The paper evaluates under exactly one scenario family — uniform placement
in a 750 x 750 m arena, random-waypoint mobility, one static multicast
group, one CBR source.  This module turns each of those choices into a
**registry-backed model axis** on
:class:`~repro.experiments.config.ScenarioConfig` (the same move
:mod:`repro.core.daemons` made for activation schedules and
:mod:`repro.experiments.backends` made for executors), so campaigns can
sweep scenario *structure* like any other grid dimension::

    --grid mobility=waypoint,gauss-markov,static
    --grid placement=uniform,gaussian-clusters --grid membership=rotating

Axes and models
---------------

``placement``
    Where nodes start: ``uniform`` (the paper; default), ``grid``,
    ``gaussian-clusters``, ``edge-weighted``
    (:mod:`repro.mobility.placement`).
``mobility``
    How nodes move: ``waypoint`` (the paper; default), ``gauss-markov``,
    ``random-walk``, ``static``, ``trace`` (:mod:`repro.mobility`).
``membership``
    Who the receivers are: ``static-random`` (the paper; default),
    ``geographic-cluster``, ``rotating`` (join/leave churn).
``traffic``
    What the source sends: ``cbr`` (the paper; default), ``on-off``
    bursty, ``multi-source`` interleaved flows (:mod:`repro.traffic`).

Model-specific sub-parameters travel in the config's frozen
``model_params`` mapping (``--model-param key=value`` on the CLI); each
model declares the keys it accepts in its ``params`` dict, and unknown
keys are rejected at config construction so typos cannot silently run
the default.

Determinism and backend parity
------------------------------

Every model draws only from named :class:`~repro.util.rng.RngStreams`
substreams (``placement``, ``mobility``, ``group``, ``membership``,
``traffic.*``), so scenarios are bit-reproducible per seed across
processes, and the **default axes replicate the historical draw
sequence exactly** — default-config results, cache hashes and cache
entries are unchanged by this API.  Both executors build their world
through :func:`build_scenario_space`, so a ``rounds``-backend run models
the t = 0 snapshot of the DES scenario — identical placement, identical
group — for *every* placement/mobility/membership model, not just the
defaults.

Per-backend realizability is checked by :func:`validate_models` (called
from the backends' ``validate`` hooks): e.g. ``trace`` mobility requires
a ``trace_file`` model parameter, and non-default ``traffic`` models are
rejected on the ``rounds`` backend, which replays the t = 0 topology and
runs no packet workload.  ``rotating`` membership *is* accepted on
rounds: the round model sees the t = 0 group, which rotation leaves
intact by construction.
"""

from __future__ import annotations

import abc
import hashlib
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.models import (
    GroupSet,
    build_groups,
    group_param_keys,
    validate_group_models,
)
from repro.mobility.base import MobilityModel
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.platoon import PlatoonMobility
from repro.mobility.placement import (
    edge_weighted_positions,
    gaussian_cluster_positions,
    grid_positions,
)
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPlacement
from repro.mobility.trace import TraceMobility, load_trace_file
from repro.util.geometry import Arena
from repro.util.rng import RngStreams

if TYPE_CHECKING:  # config imports backends imports this module
    from repro.experiments.config import ScenarioConfig
    from repro.net.node import Network

#: axis names in canonical order (also the ScenarioConfig field names)
AXES: Tuple[str, ...] = ("placement", "mobility", "membership", "traffic")


class ScenarioModel(abc.ABC):
    """One choice on one scenario axis.

    Subclasses declare their ``axis``, registry ``name`` and the
    ``model_params`` keys they accept (``params``: key -> default), and
    implement the axis-specific build method.  ``validate`` may impose
    extra config constraints (e.g. a required parameter).
    """

    #: which axis this model belongs to
    axis: str = "?"
    #: registry/config name
    name: str = "?"
    #: accepted ``model_params`` keys -> default values
    params: Dict[str, object] = {}

    def validate(self, config: "ScenarioConfig", backend: str) -> None:
        """Raise ``ValueError`` when ``config`` cannot realize this model."""

    def param(self, config: "ScenarioConfig", key: str):
        """A model parameter from the config, or this model's default."""
        return dict(config.model_params).get(key, self.params[key])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.axis} model {self.name!r}>"


# ----------------------------------------------------------------------
# Placement axis
# ----------------------------------------------------------------------
class PlacementModel(ScenarioModel):
    """Initial-position sampler.

    ``initial_positions`` returns an ``(n, 2)`` array, or ``None`` to let
    the mobility model self-sample (the uniform default's historical
    path — it keeps default scenarios draw-for-draw identical to the
    pre-model-API code).  Non-default samplers draw from the dedicated
    ``placement`` substream.
    """

    axis = "placement"

    @abc.abstractmethod
    def initial_positions(
        self, config: "ScenarioConfig", arena: Arena, streams: RngStreams
    ) -> Optional[np.ndarray]: ...


class UniformPlacement(PlacementModel):
    name = "uniform"

    def initial_positions(self, config, arena, streams):
        return None  # mobility self-samples; historical draw order


class GridPlacement(PlacementModel):
    name = "grid"
    params = {"grid_jitter": 0.0}

    def initial_positions(self, config, arena, streams):
        return grid_positions(
            config.n_nodes,
            arena,
            streams.get("placement"),
            jitter_frac=float(self.param(config, "grid_jitter")),
        )


class GaussianClustersPlacement(PlacementModel):
    name = "gaussian-clusters"
    params = {"clusters": 4, "cluster_sigma": 0.0}

    def validate(self, config, backend):
        if int(self.param(config, "clusters")) < 1:
            raise ValueError("gaussian-clusters placement needs clusters >= 1")

    def initial_positions(self, config, arena, streams):
        return gaussian_cluster_positions(
            config.n_nodes,
            arena,
            streams.get("placement"),
            clusters=int(self.param(config, "clusters")),
            cluster_sigma=float(self.param(config, "cluster_sigma")),
        )


class EdgeWeightedPlacement(PlacementModel):
    name = "edge-weighted"
    params = {"edge_bias": 0.7, "edge_margin_frac": 0.15}

    def initial_positions(self, config, arena, streams):
        return edge_weighted_positions(
            config.n_nodes,
            arena,
            streams.get("placement"),
            edge_bias=float(self.param(config, "edge_bias")),
            edge_margin_frac=float(self.param(config, "edge_margin_frac")),
        )


# ----------------------------------------------------------------------
# Mobility axis
# ----------------------------------------------------------------------
class MobilityAxisModel(ScenarioModel):
    """Factory for a :class:`~repro.mobility.base.MobilityModel`.

    ``initial_positions`` comes from the placement model (``None`` means
    self-sample from the ``mobility`` substream, the historical path).
    """

    axis = "mobility"

    @abc.abstractmethod
    def build(
        self,
        config: "ScenarioConfig",
        arena: Arena,
        initial_positions: Optional[np.ndarray],
        streams: RngStreams,
    ) -> MobilityModel: ...


class WaypointMobility(MobilityAxisModel):
    name = "waypoint"

    def build(self, config, arena, initial_positions, streams):
        return RandomWaypoint(
            config.n_nodes,
            arena,
            v_min=config.v_min,
            v_max=config.v_max,
            pause_time=config.pause_time,
            rng=streams.get("mobility"),
            initial_positions=initial_positions,
        )


class GaussMarkovMobility(MobilityAxisModel):
    name = "gauss-markov"
    #: gm_mean_speed 0 = midpoint of [v_min, v_max]
    params = {
        "gm_mean_speed": 0.0,
        "gm_alpha": 0.85,
        "gm_sigma_speed": 1.0,
        "gm_sigma_dir": 0.35,
        "gm_tick": 1.0,
    }

    def build(self, config, arena, initial_positions, streams):
        mean_speed = float(self.param(config, "gm_mean_speed"))
        if mean_speed <= 0.0:
            mean_speed = 0.5 * (config.v_min + config.v_max)
        rng = streams.get("mobility")
        if initial_positions is None:
            initial_positions = arena.sample_points(config.n_nodes, rng)
        return GaussMarkov(
            config.n_nodes,
            arena,
            mean_speed=mean_speed,
            alpha=float(self.param(config, "gm_alpha")),
            sigma_speed=float(self.param(config, "gm_sigma_speed")),
            sigma_dir=float(self.param(config, "gm_sigma_dir")),
            tick=float(self.param(config, "gm_tick")),
            rng=rng,
            initial_positions=initial_positions,
        )


class RandomWalkMobility(MobilityAxisModel):
    name = "random-walk"
    params = {"walk_mean_epoch": 10.0}

    def build(self, config, arena, initial_positions, streams):
        return RandomWalk(
            config.n_nodes,
            arena,
            v_min=config.v_min,
            v_max=config.v_max,
            mean_epoch=float(self.param(config, "walk_mean_epoch")),
            rng=streams.get("mobility"),
            initial_positions=initial_positions,
        )


class StaticMobility(MobilityAxisModel):
    name = "static"

    def build(self, config, arena, initial_positions, streams):
        if initial_positions is not None:
            return StaticPlacement(
                config.n_nodes, arena, positions=initial_positions
            )
        return StaticPlacement(config.n_nodes, arena, rng=streams.get("mobility"))


class PlatoonMobilityModel(MobilityAxisModel):
    """Correlated convoy motion (:mod:`repro.mobility.platoon`).

    ``platoon_count = 0`` (the default) means one platoon per multicast
    group — the natural multi-group workload where each session's
    audience travels together — while an explicit count decouples
    convoy structure from group structure.
    """

    name = "platoon"
    params = {"platoon_count": 0, "platoon_spread": 60.0}

    def validate(self, config, backend):
        if int(self.param(config, "platoon_count")) < 0:
            raise ValueError("platoon mobility needs platoon_count >= 0")
        if float(self.param(config, "platoon_spread")) < 0:
            raise ValueError("platoon mobility needs platoon_spread >= 0")
        if config.placement != "uniform":
            raise ValueError(
                "platoon mobility derives every position from its convoy "
                "anchors; the placement axis must stay at its 'uniform' "
                "default"
            )

    def build(self, config, arena, initial_positions, streams):
        count = int(self.param(config, "platoon_count"))
        if count <= 0:
            count = max(config.group_count, 1)
        return PlatoonMobility(
            config.n_nodes,
            arena,
            platoon_count=count,
            spread=float(self.param(config, "platoon_spread")),
            v_min=config.v_min,
            v_max=config.v_max,
            pause_time=config.pause_time,
            rng=streams.get("mobility"),
        )


class TraceMobilityModel(MobilityAxisModel):
    name = "trace"
    params = {"trace_file": ""}

    def validate(self, config, backend):
        if not str(self.param(config, "trace_file")):
            raise ValueError(
                "trace mobility needs a scenario file: pass "
                "model_params trace_file=<path> (--model-param on the CLI)"
            )
        if config.placement != "uniform":
            raise ValueError(
                "trace mobility carries its own positions; the placement "
                "axis must stay at its 'uniform' default"
            )

    def build(self, config, arena, initial_positions, streams):
        traces = load_trace_file(str(self.param(config, "trace_file")))
        if len(traces) != config.n_nodes:
            raise ValueError(
                f"trace file holds {len(traces)} node traces but the "
                f"config has n_nodes={config.n_nodes}"
            )
        return TraceMobility(arena, traces)


# ----------------------------------------------------------------------
# Membership axis
# ----------------------------------------------------------------------
class MembershipModel(ScenarioModel):
    """Multicast group construction (and, on the DES, group churn).

    ``initial_group`` fixes the t = 0 group — it is what both backends
    share, so des/rounds topology parity holds per model.  ``install``
    is a DES-only post-build hook for models that schedule join/leave
    events during the run (default: nothing).
    """

    axis = "membership"

    @abc.abstractmethod
    def initial_group(
        self,
        config: "ScenarioConfig",
        mobility: MobilityModel,
        streams: RngStreams,
    ) -> Tuple[int, List[int]]:
        """``(source, receivers)`` at t = 0 (receivers exclude the source)."""

    def install(self, network: "Network", config: "ScenarioConfig") -> None:
        """Schedule mid-run membership events on a built DES network."""


class StaticRandomMembership(MembershipModel):
    name = "static-random"

    def initial_group(self, config, mobility, streams):
        # Historical draws, bit-for-bit: source 0 plus group_size - 1
        # receivers drawn from the rest via the "group" substream.
        receivers = streams.get("group").choice(
            np.arange(1, config.n_nodes),
            size=config.group_size - 1,
            replace=False,
        )
        return 0, [int(r) for r in receivers]


class GeographicClusterMembership(MembershipModel):
    """Receivers are the nodes nearest a random geographic hot-spot.

    Models a localized audience (a lecture hall, a sensor cluster): the
    ``membership`` substream draws one focus point in the arena and the
    ``group_size - 1`` non-source nodes closest to it at t = 0 join.
    """

    name = "geographic-cluster"

    def initial_group(self, config, mobility, streams):
        focus = mobility.arena.sample_points(1, streams.get("membership"))[0]
        positions = mobility.positions(0.0)
        dist = np.hypot(
            positions[:, 0] - focus[0], positions[:, 1] - focus[1]
        )
        dist[0] = np.inf  # the source joins by definition, not by distance
        nearest = np.argsort(dist, kind="stable")[: config.group_size - 1]
        return 0, sorted(int(v) for v in nearest)


class RotatingMembership(StaticRandomMembership):
    """Receiver churn: every ``rotation_period`` seconds one receiver
    leaves and one non-member joins.

    The t = 0 group is ``static-random``'s (the inherited
    ``initial_group`` — one implementation, so the draw sequences cannot
    drift apart): rotating and static runs of one seed start from the
    same scenario, and the rounds backend, which replays the t = 0
    snapshot, sees exactly that group.  Join/leave picks draw from the
    ``membership`` substream; group size is invariant, and when every
    node is already a member (``group_size == n_nodes``) rotation has
    nobody to admit and does nothing.
    """

    name = "rotating"
    params = {"rotation_period": 60.0}

    def validate(self, config, backend):
        if float(self.param(config, "rotation_period")) <= 0:
            raise ValueError("rotating membership needs rotation_period > 0")

    def install(self, network, config):
        from repro.sim.timers import PeriodicTimer

        period = float(self.param(config, "rotation_period"))
        rng = network.streams.get("membership")

        def rotate() -> None:
            receivers = sorted(network.receivers)
            # Only living nodes can join (battery-limited runs deplete
            # nodes); dead receivers may still rotate *out*, which is how
            # a battery-limited group replaces casualties.
            outsiders = sorted(
                v
                for v in set(range(network.n)) - network.members
                if network.nodes[v].alive
            )
            if not receivers or not outsiders:
                return
            leaver = receivers[int(rng.integers(len(receivers)))]
            joiner = outsiders[int(rng.integers(len(outsiders)))]
            network.update_membership(joins=[joiner], leaves=[leaver])

        # Kept alive by the timer's own simulator events; starts after
        # traffic so the first rotation hits a warmed-up tree.
        PeriodicTimer(
            network.sim,
            period,
            rotate,
            start_offset=config.traffic_start + period,
        )


# ----------------------------------------------------------------------
# Traffic axis
# ----------------------------------------------------------------------
class TrafficModel(ScenarioModel):
    """Workload factory for the DES backend.

    The rounds backend replays the t = 0 topology and runs no packet
    workload, so only the default ``cbr`` marker is accepted there (see
    :func:`validate_models`).
    """

    axis = "traffic"

    @abc.abstractmethod
    def build(self, network: "Network", config: "ScenarioConfig"):
        """A source object with ``start()`` / ``stop()`` / ``packets_sent``."""


class CbrTraffic(TrafficModel):
    name = "cbr"

    def build(self, network, config):
        from repro.traffic.cbr import CbrSource

        return CbrSource(
            network,
            rate_kbps=config.rate_kbps,
            packet_bytes=config.packet_bytes,
            start_time=config.traffic_start,
        )


class OnOffTraffic(TrafficModel):
    name = "on-off"
    params = {"onoff_on_s": 10.0, "onoff_off_s": 10.0}

    def validate(self, config, backend):
        if float(self.param(config, "onoff_on_s")) <= 0:
            raise ValueError("on-off traffic needs onoff_on_s > 0")
        if float(self.param(config, "onoff_off_s")) < 0:
            raise ValueError("on-off traffic needs onoff_off_s >= 0")

    def build(self, network, config):
        from repro.traffic.onoff import OnOffSource

        return OnOffSource(
            network,
            rate_kbps=config.rate_kbps,
            packet_bytes=config.packet_bytes,
            start_time=config.traffic_start,
            on_mean_s=float(self.param(config, "onoff_on_s")),
            off_mean_s=float(self.param(config, "onoff_off_s")),
        )


class MultiSourceTraffic(TrafficModel):
    name = "multi-source"
    params = {"flows": 2}

    def validate(self, config, backend):
        if int(self.param(config, "flows")) < 1:
            raise ValueError("multi-source traffic needs flows >= 1")

    def build(self, network, config):
        from repro.traffic.multiflow import MultiFlowSource

        return MultiFlowSource(
            network,
            rate_kbps=config.rate_kbps,
            packet_bytes=config.packet_bytes,
            start_time=config.traffic_start,
            flows=int(self.param(config, "flows")),
        )


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
def _registry(*models: ScenarioModel) -> Dict[str, ScenarioModel]:
    return {m.name: m for m in models}


REGISTRIES: Dict[str, Dict[str, ScenarioModel]] = {
    "placement": _registry(
        UniformPlacement(),
        GridPlacement(),
        GaussianClustersPlacement(),
        EdgeWeightedPlacement(),
    ),
    "mobility": _registry(
        WaypointMobility(),
        GaussMarkovMobility(),
        RandomWalkMobility(),
        StaticMobility(),
        PlatoonMobilityModel(),
        TraceMobilityModel(),
    ),
    "membership": _registry(
        StaticRandomMembership(),
        GeographicClusterMembership(),
        RotatingMembership(),
    ),
    "traffic": _registry(CbrTraffic(), OnOffTraffic(), MultiSourceTraffic()),
}

#: the hash-neutral default model of each axis (the paper's scenario)
DEFAULT_MODELS: Dict[str, str] = {
    "placement": "uniform",
    "mobility": "waypoint",
    "membership": "static-random",
    "traffic": "cbr",
}

#: canonical model-name order per axis (CLI help, docs, tests)
MODEL_NAMES: Dict[str, Tuple[str, ...]] = {
    axis: tuple(registry) for axis, registry in REGISTRIES.items()
}


def model_by_name(axis: str, name: str) -> ScenarioModel:
    """Look up one axis model by registry name."""
    try:
        registry = REGISTRIES[axis]
    except KeyError:
        raise ValueError(
            f"unknown scenario axis {axis!r}; choose from {sorted(REGISTRIES)}"
        ) from None
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown {axis} model {name!r}; choose from {sorted(registry)}"
        ) from None


def resolved_models(config: "ScenarioConfig") -> Dict[str, ScenarioModel]:
    """The four models a config resolves to, keyed by axis."""
    return {axis: model_by_name(axis, getattr(config, axis)) for axis in AXES}


def validate_models(config: "ScenarioConfig", backend: str) -> None:
    """Axis-resolution + per-model + per-backend scenario validation.

    Called from each :class:`~repro.experiments.backends.ExperimentBackend`'s
    ``validate`` (and therefore from ``ScenarioConfig.__post_init__``), so
    an unknown model name, an unrealizable backend/model pairing or a
    mistyped ``model_params`` key fails at config construction.
    """
    models = resolved_models(config)  # raises on unknown names
    if backend == "rounds" and config.traffic != DEFAULT_MODELS["traffic"]:
        raise ValueError(
            f"traffic model {config.traffic!r} has no rounds realization; "
            f"the rounds backend replays the t = 0 topology and runs no "
            f"packet workload"
        )
    for model in models.values():
        model.validate(config, backend)
    validate_group_models(config, backend)
    # Keys are checked against every *registered* model, not only the
    # resolved ones: a campaign base legitimately carries parameters for
    # models a grid axis selects per cell (--grid membership=rotating
    # --model-param rotation_period=30), while a typo'd key still fails
    # at construction.
    accepted = {
        key
        for registry in REGISTRIES.values()
        for model in registry.values()
        for key in model.params
    } | group_param_keys()
    unknown = sorted(set(dict(config.model_params)) - accepted)
    if unknown:
        raise ValueError(
            f"model_params key(s) {unknown} are not accepted by any "
            f"registered scenario model; known keys: {sorted(accepted)}"
        )


#: (path, mtime, size) -> content digest, so repeated config_key calls
#: (shard assignment, cache lookups, dry runs) stat instead of re-read
_FILE_DIGEST_MEMO: Dict[Tuple[str, float, int], str] = {}


def scenario_content_fingerprint(config: "ScenarioConfig") -> Optional[str]:
    """Content digest of external scenario inputs, or ``None``.

    Cache identity must cover what a run *reads*, not only the config
    fields: a ``trace`` run's trajectories live in the trace file, so
    editing that file in place must fork the campaign cache key instead
    of silently serving results computed from the old waypoints.  An
    unreadable file fingerprints as a marker (the run itself will fail
    loudly at build time).
    """
    if config.mobility != "trace":
        return None
    path = str(dict(config.model_params).get("trace_file", ""))
    if not path:
        return None
    try:
        stat = os.stat(path)
        key = (path, stat.st_mtime, stat.st_size)
        digest = _FILE_DIGEST_MEMO.get(key)
        if digest is None:
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            _FILE_DIGEST_MEMO[key] = digest
        return digest
    except OSError:
        return "unreadable"


def non_default_axes(config: "ScenarioConfig") -> Dict[str, str]:
    """The scenario axes a config moved off the paper's defaults
    (plus ``model_params`` when any are set) — the dry-run audit view."""
    out = {
        axis: getattr(config, axis)
        for axis in AXES
        if getattr(config, axis) != DEFAULT_MODELS[axis]
    }
    if config.model_params:
        out["model_params"] = ",".join(
            f"{k}={v}" for k, v in config.model_params
        )
    return out


def plan_lines(configs: Sequence["ScenarioConfig"]) -> List[str]:
    """Dry-run summary: resolved models per axis across a campaign,
    flagging every non-default value with ``*``."""
    lines = ["# scenario models (non-default marked *):"]
    for axis in AXES:
        values = list(dict.fromkeys(getattr(c, axis) for c in configs))
        shown = ",".join(
            v + ("" if v == DEFAULT_MODELS[axis] else "*") for v in values
        )
        lines.append(f"#   {axis}: {shown}")
    all_params = list(
        dict.fromkeys(c.model_params for c in configs if c.model_params)
    )
    if all_params:
        # Params are non-default by definition, so each set gets the star.
        shown = " | ".join(
            ",".join(f"{k}={v}" for k, v in params) + "*"
            for params in all_params
        )
        lines.append(f"#   model_params: {shown}")
    return lines


# ----------------------------------------------------------------------
# Scenario construction (shared by both backends)
# ----------------------------------------------------------------------
@dataclass
class ScenarioSpace:
    """The realized scenario structure of one config at t = 0.

    Built identically by the DES runner and the rounds backend from the
    same named RNG substreams, which is what guarantees t = 0 topology
    parity across backends for every model combination.
    """

    arena: Arena
    streams: RngStreams
    mobility: MobilityModel
    source: int
    receivers: List[int]
    models: Dict[str, ScenarioModel]
    #: the realized multicast groups; ``groups[0]`` is always
    #: ``(source, receivers)`` and a ``group_count=1`` config realizes
    #: it without any extra RNG draws (bit-identity contract)
    groups: GroupSet


def effective_arena(config: "ScenarioConfig") -> Arena:
    """The run's arena, with constant-density n-scaling applied.

    With ``density_ref_n = 0`` (the hash-neutral default) the configured
    ``arena_w x arena_h`` is used verbatim.  A positive value declares
    the configured arena to be sized for that many nodes, and scales
    both dimensions by ``sqrt(n_nodes / density_ref_n)`` so node density
    stays fixed along an ``n_nodes`` sweep — without it, growing n in a
    fixed arena conflates size effects with density effects.
    """
    if config.density_ref_n <= 0:
        return Arena(config.arena_w, config.arena_h)
    scale = math.sqrt(config.n_nodes / config.density_ref_n)
    return Arena(config.arena_w * scale, config.arena_h * scale)


def build_scenario_space(config: "ScenarioConfig") -> ScenarioSpace:
    """Resolve the config's models and realize the scenario structure."""
    models = resolved_models(config)
    streams = RngStreams(config.seed)
    arena = effective_arena(config)
    positions0 = models["placement"].initial_positions(config, arena, streams)
    mobility = models["mobility"].build(config, arena, positions0, streams)
    source, receivers = models["membership"].initial_group(
        config, mobility, streams
    )
    groups = build_groups(config, source, receivers, streams)
    return ScenarioSpace(
        arena=arena,
        streams=streams,
        mobility=mobility,
        source=source,
        receivers=receivers,
        models=models,
        groups=groups,
    )
