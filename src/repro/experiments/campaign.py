"""Experiment campaigns: declarative grids over pluggable layers.

The paper's evaluation (section 6) is a grid of scenarios — protocols ×
parameter values × seed replications.  A :class:`CampaignSpec` declares
such a grid once; :func:`run_campaign` executes it through three
pluggable layers (see ``docs/campaigns.md`` for the architecture and
operations guide):

* a **result store** (:mod:`repro.experiments.store`) — the JSON record
  dir (the historical ``--cache-dir``) or the SQLite columnar store —
  keyed by a stable hash of the full
  :class:`~repro.experiments.config.ScenarioConfig`, so re-running a
  campaign (or a different campaign sharing cells) only executes the
  missing runs and an interrupted campaign resumes where it stopped;
* a **scheduler** (:mod:`repro.experiments.scheduler`) — serial, the
  multiprocessing pool, or the asyncio work-stealing queue with worker
  heartbeats and graceful cancel;
* **streaming aggregation** (:mod:`repro.experiments.aggregation`) —
  per-cell running mean ± Student-t CI (Welford) updated as records
  land, so ``status`` renders tables for campaigns still in flight.

Each run executes on the config's **experiment backend**
(:mod:`repro.experiments.backends`): ``des`` — the packet-level
simulator — or ``rounds`` — the round-model stabilization engine, orders
of magnitude faster per run.  ``backend`` is an ordinary config field,
so it sweeps like any grid axis.

Command line (the flat form; ``submit``/``status``/``results``/
``migrate`` subcommands cover the service workflow)::

    PYTHONPATH=src python -m repro.experiments.campaign \
        --protocols ss-spst,ss-spst-e --grid v_max=1,5,10 \
        --seeds 1,2,3 --workers 4 --store campaign.sqlite

    PYTHONPATH=src python -m repro.experiments.campaign status \
        --figure figd02 --store campaign.sqlite

Distributed campaigns: ``--shard I/K`` executes only a deterministic
config-hash partition of the runs, so K machines sharing a store split
one campaign without coordination (see
:func:`~repro.experiments.store.shard_of`); ``--steal`` additionally
claims and runs other shards' leftovers once the own share is in.  A
final un-sharded invocation assembles everything from the store.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import os
import sys
import time
import typing
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.backends import (
    DesBackend,
    backend_by_name,
    default_metrics,
    metric_extractor,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult

# Run identity and record persistence live in the store layer; the names
# are re-exported here because this module defined them for five PRs and
# tests/notebooks import them from both places.
from repro.experiments.store import (  # noqa: F401  (re-exports)
    CACHE_SCHEMA,
    COMPATIBLE_SCHEMAS,
    HASH_SCHEMA,
    _HASH_NEUTRAL_DEFAULTS,
    JsonDirStore,
    ResultCache,
    ResultStore,
    SqliteStore,
    config_key,
    migrate_json_dir,
    open_store,
    probe_store,
    record_from_result,
    result_from_record,
    shard_of,
    store_location,
)
from repro.experiments.scheduler import (
    SCHEDULER_NAMES,
    CancelCampaign,
    PoolScheduler,
    Scheduler,
    scheduler_by_name,
    worker_id,
)
from repro.experiments.aggregation import (
    StreamingAggregate,
    campaign_status,
)

#: RunResult diagnostics persisted alongside the summary
#: (kept as a module name for backwards compatibility; the DES backend
#: owns the authoritative list)
_DIAGNOSTIC_FIELDS = DesBackend.DIAGNOSTIC_FIELDS


# ----------------------------------------------------------------------
# Campaign spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative protocol/parameter grid with seed replications.

    ``grid`` is an ordered tuple of ``(field_name, values)`` pairs; the
    campaign runs the cartesian product of all grid axes × protocols ×
    seeds on top of ``base``.
    """

    name: str
    base: ScenarioConfig
    protocols: Tuple[str, ...]
    seeds: Tuple[int, ...]
    grid: Tuple[Tuple[str, Tuple], ...] = ()

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("a campaign needs at least one protocol")
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        for name, values in self.grid:
            if name not in ScenarioConfig.__dataclass_fields__:
                raise ValueError(f"unknown ScenarioConfig field {name!r}")
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")

    @classmethod
    def from_mapping(
        cls,
        name: str,
        base: ScenarioConfig,
        protocols: Sequence[str],
        seeds: Sequence[int],
        grid: Optional[Dict[str, Sequence]] = None,
    ) -> "CampaignSpec":
        return cls(
            name=name,
            base=base,
            protocols=tuple(protocols),
            seeds=tuple(int(s) for s in seeds),
            grid=tuple((k, tuple(v)) for k, v in (grid or {}).items()),
        )

    # ------------------------------------------------------------------
    def points(self) -> List[Dict[str, object]]:
        """The grid points (field -> value dicts), in declaration order."""
        if not self.grid:
            return [{}]
        axes = [[(name, v) for v in values] for name, values in self.grid]
        return [dict(combo) for combo in itertools.product(*axes)]

    def cells(self) -> List[Tuple[str, Dict[str, object]]]:
        """(protocol, grid point) pairs — one aggregation cell each."""
        return [(p, pt) for pt in self.points() for p in self.protocols]

    def configs(self) -> List[ScenarioConfig]:
        """Every run of the campaign: cells × seeds."""
        out = []
        for proto, point in self.cells():
            for seed in self.seeds:
                out.append(
                    self.base.replace(protocol=proto, seed=seed, **point)
                )
        return out

    def size(self) -> int:
        return len(self.protocols) * len(self.seeds) * len(self.points())

    def backends(self) -> Tuple[str, ...]:
        """The experiment backends this campaign spans.

        The base config's backend, unless ``backend`` is a grid axis —
        then every cell's backend comes from the axis values.
        """
        for name, values in self.grid:
            if name == "backend":
                return tuple(dict.fromkeys(values))
        return (self.base.backend,)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(config: ScenarioConfig) -> dict:
    """Worker-side: run one config on its backend, return its record."""
    backend = backend_by_name(config.backend)
    t0 = time.perf_counter()
    result = backend.run(config)
    return backend.record_from(result, elapsed_s=time.perf_counter() - t0)


@dataclass
class CampaignResult:
    """All runs of a campaign plus cache accounting.

    ``results`` is aligned with ``spec.configs()``; entries are ``None``
    for runs outside this invocation's shard that no store could supply
    (``skipped`` counts them) — and, on a cancelled campaign, for runs
    that never got to execute.  Aggregation works over whatever is
    present, so a shard (or a cancelled run) still prints its partial
    table.
    """

    spec: CampaignSpec
    results: List[Optional[RunResult]]  # aligned with spec.configs()
    executed: int = 0
    cache_hits: int = 0  # store hits
    memo_hits: int = 0  # in-memory memo hits
    skipped: int = 0  # out-of-shard runs left to other machines
    stolen: int = 0  # foreign-shard runs claimed and executed here
    cancelled: bool = False  # a CancelCampaign stopped dispatch early
    elapsed_s: float = 0.0
    stream: Optional[StreamingAggregate] = None  # live per-cell mean/CI

    # ------------------------------------------------------------------
    def by_cell(self) -> Dict[Tuple[str, Tuple], List[RunResult]]:
        """Available seed replications grouped per (protocol, grid point)
        cell.

        The point is keyed by its ``(field, value)`` tuple so cells stay
        hashable; iteration order follows the spec.  Skipped
        (out-of-shard, unstored) runs are absent from the lists.
        """
        out: Dict[Tuple[str, Tuple], List[RunResult]] = {}
        i = 0
        for proto, point in self.spec.cells():
            key = (proto, tuple(point.items()))
            chunk = self.results[i : i + len(self.spec.seeds)]
            out[key] = [r for r in chunk if r is not None]
            i += len(self.spec.seeds)
        return out

    def aggregate(
        self, extract: Callable[[RunResult], float], confidence: float = 0.95
    ):
        """Per-cell mean ± CI of an extracted quantity.

        Returns ``{(protocol, point_items): CiSummary}`` — the campaign
        counterpart of :func:`repro.analysis.stats.sweep_cis`.  Cells with
        no available runs (a foreign shard's share) are omitted.
        """
        # Imported lazily: analysis.stats imports sweeps for typing, and
        # sweeps runs through this module.
        from repro.analysis.stats import mean_ci

        return {
            key: mean_ci([extract(r) for r in runs], confidence)
            for key, runs in self.by_cell().items()
            if runs
        }

    def extractor(self, metric: str) -> Callable:
        """The backend-dispatching extractor for a metric name.

        Resolved against every backend the campaign spans (see
        :func:`repro.experiments.backends.metric_extractor`), so the same
        name works over DES runs, rounds runs, or a mix.
        """
        return metric_extractor(metric, self.spec.backends())

    def format_table(self, metrics: Sequence[str] = ("pdr",)) -> str:
        """Aggregate table: one row per cell, mean ± CI per metric."""
        rows = []
        counts = {key: len(runs) for key, runs in self.by_cell().items()}
        labels = {key: cell_label(key[1]) for key in counts}
        width = max([24] + [len(v) for v in labels.values()])
        header = f"{'protocol':>12s} {'grid point':>{width}s} {'n':>3s}"
        for m in metrics:
            header += f" {m:>24s}"
        rows.append(header)
        aggs = [self.aggregate(self.extractor(m)) for m in metrics]
        for key in aggs[0] if aggs else []:
            proto, point = key
            row = f"{proto:>12s} {labels[key]:>{width}s} {counts[key]:>3d}"
            for agg in aggs:
                ci = agg[key]
                hw = f"±{ci.half_width:.4f}" if ci.half_width == ci.half_width else "±nan"
                row += f" {ci.mean:>12.4f} {hw:>11s}"
            rows.append(row)
        return "\n".join(rows)


def cell_label(point_items: Iterable[Tuple[str, object]]) -> str:
    """Human-readable grid-point label (``k=v,...`` or ``-``), shared by
    the aggregate table and the JSON campaign record."""
    return ",".join(f"{k}={v}" for k, v in point_items) or "-"


def _summary_extractor(name: str) -> Callable[[RunResult], float]:
    """Deprecated: DES-only metric pull by name.

    A thin alias over the ``des`` backend's typed
    :class:`~repro.experiments.backends.MetricSpec` registry — the one
    source of truth for metric extraction.  Use
    ``metric_extractor(name, spec.backends())`` or
    ``CampaignResult.extractor(name)``, which dispatch per backend (see
    the README migration note).
    """
    specs = backend_by_name("des").metrics()
    if name not in specs:
        raise ValueError(
            f"unknown summary metric {name!r}: not in the 'des' backend's "
            f"MetricSpec registry; choose from {sorted(specs)}"
        )
    spec = specs[name]
    return lambda r: float(spec.extract(r))


def _resolve_store(
    store, cache_dir: Optional[str]
) -> Optional[ResultStore]:
    """One store from the modern ``store=`` and legacy ``cache_dir=``
    arguments (``cache_dir`` is shorthand for a JSON dir store)."""
    if store is not None and cache_dir is not None:
        raise ValueError(
            "pass store= or cache_dir=, not both "
            "(cache_dir=DIR is shorthand for store='json:DIR')"
        )
    if store is not None:
        return open_store(store)
    if cache_dir is not None:
        return JsonDirStore(cache_dir)
    return None


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    memo: Optional[Dict[ScenarioConfig, RunResult]] = None,
    progress: Optional[Callable[[str], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
    store=None,
    scheduler: Optional[Scheduler] = None,
    steal: bool = False,
    stream_metrics: Optional[Sequence[str]] = None,
    on_update: Optional[Callable[[StreamingAggregate], None]] = None,
) -> CampaignResult:
    """Execute a campaign, reusing every result that is already known.

    Lookup order per run: ``memo`` (an in-memory dict shared across
    campaigns in one process — the sweep/figure cache) → the result
    store → execute.  Pending runs go to the ``scheduler`` (default: the
    multiprocessing pool when ``workers > 1``); each finished record is
    written to the store as it arrives, so interrupting the campaign
    loses at most the in-flight runs.

    ``store`` is a :class:`~repro.experiments.store.ResultStore` or a
    spec string (``json:DIR``, ``sqlite:PATH``, or a bare path);
    ``cache_dir`` remains as shorthand for a JSON dir store.

    ``shard=(i, k)`` distributes one campaign over ``k`` machines
    sharing a store: runs are partitioned deterministically by config
    hash (:func:`~repro.experiments.store.shard_of`) and only shard
    ``i``'s share is *executed* here — foreign-shard runs are still
    served from the store when available (so overlapping or repeated
    shard invocations resume cleanly), and are otherwise reported as
    ``skipped``.  With ``steal=True`` this invocation instead *claims*
    foreign leftovers through the store and runs them after its own
    share (claims expire if the claimant dies; records are idempotent
    per key, so a duplicate run can never double-count).  After every
    shard has run, a final un-sharded invocation against the shared
    store assembles the full campaign without executing anything.

    Streaming aggregation runs alongside: ``result.stream`` holds the
    per-cell running mean/CI over every landed run, and ``on_update``
    (called after each executed record) may watch it — or raise
    :class:`~repro.experiments.scheduler.CancelCampaign` to stop the
    campaign gracefully, which returns the partial result marked
    ``cancelled`` with everything so far persisted.
    """
    if shard is not None:
        index, count = shard
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(
                f"shard index {index} out of range for {count} shard"
                f"{'s' if count != 1 else ''} (need 0 <= i < k)"
            )
    t0 = time.perf_counter()
    configs = spec.configs()
    result_store = _resolve_store(store, cache_dir)
    stream = StreamingAggregate(
        spec,
        stream_metrics
        if stream_metrics is not None
        else default_metrics(spec.backends()),
    )

    results: List[Optional[RunResult]] = [None] * len(configs)
    pending: List[Tuple[int, ScenarioConfig]] = []
    stolen_jobs: List[Tuple[int, ScenarioConfig]] = []
    memo_hits = cache_hits = skipped = 0
    me = worker_id()

    for i, cfg in enumerate(configs):
        if memo is not None and cfg in memo:
            results[i] = memo[cfg]
            memo_hits += 1
            stream.update(i, results[i])
            continue
        record = result_store.load(cfg) if result_store is not None else None
        if record is not None:
            results[i] = result_from_record(record)
            cache_hits += 1
            if memo is not None:
                memo[cfg] = results[i]
            stream.update(i, results[i])
            continue
        if shard is not None and shard_of(cfg, shard[1]) != shard[0]:
            if (
                steal
                and result_store is not None
                and result_store.claim(config_key(cfg), me)
            ):
                stolen_jobs.append((i, cfg))
            else:
                skipped += 1
            continue
        pending.append((i, cfg))

    executed = 0
    cancelled = False

    def _finish(i: int, record: dict) -> None:
        nonlocal executed
        cfg = configs_by_index[i]
        results[i] = result_from_record(record)
        executed += 1
        if result_store is not None:
            result_store.store(cfg, record)
        if memo is not None:
            memo[cfg] = results[i]
        stream.update(i, results[i])
        if progress:
            progress(
                f"[{spec.name}] {cfg.protocol} seed={cfg.seed} "
                f"({record['elapsed_s']:.2f}s)"
            )
        if on_update is not None:
            on_update(stream)  # may raise CancelCampaign

    # own-shard runs first; stolen leftovers only once our share is in
    jobs = pending + stolen_jobs
    configs_by_index = dict(jobs)
    engine = scheduler if scheduler is not None else PoolScheduler(workers)
    if isinstance(engine, str):
        engine = scheduler_by_name(engine, workers)
    try:
        if jobs:
            engine.execute(_execute, jobs, _finish, store=result_store)
    except CancelCampaign:
        cancelled = True
    finally:
        if result_store is not None:
            # claims for stolen runs we never got to: hand them back now
            # rather than letting the TTL expire them
            for i, cfg in stolen_jobs:
                if results[i] is None:
                    result_store.release(config_key(cfg))
            result_store.flush()

    return CampaignResult(
        spec=spec,
        results=list(results),
        executed=executed,
        cache_hits=cache_hits,
        memo_hits=memo_hits,
        skipped=skipped,
        stolen=sum(1 for i, _ in stolen_jobs if results[i] is not None),
        cancelled=cancelled,
        elapsed_s=time.perf_counter() - t0,
        stream=stream,
    )


def collect_campaign(
    spec: CampaignSpec,
    store,
    memo: Optional[Dict[ScenarioConfig, RunResult]] = None,
) -> CampaignResult:
    """Assemble a campaign from a store without executing anything.

    The read-only counterpart of :func:`run_campaign` (the ``results``
    service verb): every stored run loads into its slot, missing runs
    count as ``skipped``.  Aggregation and tables work over whatever is
    present.
    """
    t0 = time.perf_counter()
    result_store = open_store(store)
    configs = spec.configs()
    results: List[Optional[RunResult]] = [None] * len(configs)
    stream = StreamingAggregate(spec, default_metrics(spec.backends()))
    cache_hits = 0
    for i, cfg in enumerate(configs):
        record = result_store.load(cfg)
        if record is None:
            continue
        results[i] = result_from_record(record)
        cache_hits += 1
        if memo is not None:
            memo[cfg] = results[i]
        stream.update(i, results[i])
    return CampaignResult(
        spec=spec,
        results=results,
        executed=0,
        cache_hits=cache_hits,
        skipped=len(configs) - cache_hits,
        elapsed_s=time.perf_counter() - t0,
        stream=stream,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _field_types() -> Dict[str, type]:
    hints = typing.get_type_hints(ScenarioConfig)
    return {f.name: hints[f.name] for f in dataclasses.fields(ScenarioConfig)}


def _coerce(field_name: str, raw: str):
    """Parse a CLI string into the ScenarioConfig field's type."""
    types = _field_types()
    if field_name not in types:
        raise SystemExit(
            f"unknown ScenarioConfig field {field_name!r}; choose from "
            f"{sorted(types)}"
        )
    if field_name == "model_params":
        raise SystemExit(
            "model_params is not settable as a flat field; use "
            "--model-param KEY=VALUE (repeatable)"
        )
    typ = types[field_name]
    if typ is int:
        return int(raw)
    if typ is float:
        return float(raw)
    return raw


def _coerce_param_value(raw: str):
    """Model-param values: int if it parses, else float, else string."""
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def _parse_model_params(items: List[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(
                f"--model-param expects key=value (got {item!r})"
            )
        key, _, value = item.partition("=")
        params[key] = _coerce_param_value(value)
    return params


def _parse_grid(specs: List[str]) -> Dict[str, Tuple]:
    grid: Dict[str, Tuple] = {}
    for item in specs:
        if "=" not in item:
            raise SystemExit(f"--grid expects field=v1,v2,... (got {item!r})")
        name, _, values = item.partition("=")
        grid[name] = tuple(_coerce(name, v) for v in values.split(",") if v)
    return grid


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    """The campaign-shape flags shared by the flat CLI and every
    subcommand (``submit``/``status``/``results`` must name the same
    campaign to talk about the same runs)."""
    what = parser.add_argument_group("what to run")
    what.add_argument(
        "--figure",
        help="run a figure's grid (fig07..fig16, or the figd01/figd02/"
        "figd03/figm01/figg01 extensions) instead of --grid",
    )
    what.add_argument(
        "--backend",
        default=None,
        help="experiment backend for the base config: 'des' (packet-level "
        "simulator, the default) or 'rounds' (round-model stabilization "
        "engine; accepts every daemon and is orders of magnitude faster "
        "per run).  Sweepable as a grid axis too: --grid backend=des,rounds",
    )
    what.add_argument(
        "--engine",
        default=None,
        help="round-engine implementation for the base config (rounds "
        "backend only): 'object' (scalar reference, the default) or "
        "'array' (vectorized columnar evaluation — bit-identical "
        "trajectories, built for 10^4-10^5 nodes).  Sweepable as a grid "
        "axis too: --grid engine=object,array",
    )
    what.add_argument(
        "--protocols",
        default="ss-spst,ss-spst-e",
        help="comma-separated protocol list (ignored with --figure)",
    )
    what.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="grid axis over a ScenarioConfig field; repeatable",
    )
    what.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        dest="overrides",
        help="override a base-config field; repeatable",
    )
    what.add_argument(
        "--model-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="model_params",
        help="scenario-model sub-parameter merged into the base config's "
        "model_params (e.g. gm_alpha=0.7, rotation_period=30, "
        "trace_file=scen.json); repeatable.  Keys must be accepted by a "
        "resolved placement/mobility/membership/traffic model",
    )
    what.add_argument("--seeds", default="1,2,3", help="comma-separated seeds")
    what.add_argument(
        "--paper",
        action="store_true",
        help="paper-scale base config (default: quick scale)",
    )
    what.add_argument(
        "--name", default="cli", help="campaign name (progress labels)"
    )


def _add_store_args(parser: argparse.ArgumentParser, group=None) -> None:
    target = group if group is not None else parser
    target.add_argument(
        "--store",
        default=None,
        metavar="SPEC",
        help="result store: a directory (JSON record dir, the historical "
        "cache layout), a *.sqlite/*.db path (SQLite columnar store), or "
        "an explicit json:DIR / sqlite:PATH spec",
    )
    target.add_argument(
        "--cache-dir",
        default=None,
        help="legacy shorthand for --store json:DIR",
    )


def _add_metrics_arg(target) -> None:
    target.add_argument(
        "--metrics",
        default=None,
        help="metric names for the aggregate table (default: per-backend "
        "choice, e.g. pdr,energy_per_packet_mj on des and "
        "rounds,evaluations,moves on rounds)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description="Run a protocol/parameter/seed campaign in parallel "
        "with a persistent per-run result store.",
    )
    _add_spec_args(parser)
    how = parser.add_argument_group("how to run")
    how.add_argument("--workers", type=int, default=1, help="pool size")
    _add_store_args(parser, how)
    how.add_argument(
        "--scheduler",
        default=None,
        choices=SCHEDULER_NAMES,
        help="execution engine: 'serial', 'pool' (multiprocessing, the "
        "default for --workers > 1), or 'async' (asyncio job queue with "
        "work stealing, heartbeats and graceful cancel)",
    )
    how.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help="execute only shard I of K (deterministic config-hash "
        "partition); K machines pointing different shards at one shared "
        "store split the campaign, and a final un-sharded run assembles "
        "it from the store",
    )
    how.add_argument(
        "--steal",
        action="store_true",
        help="with --shard: after executing the own share, claim and run "
        "other shards' still-missing runs through the store (claims "
        "expire if the claimant dies; records stay exactly-once per key)",
    )
    _add_metrics_arg(how)
    how.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan — backend, per-run identities, grid size, "
        "shard assignment and warm-cache hit count — without executing",
    )
    how.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write a machine-readable campaign record (aggregates + "
        "cache accounting) to PATH after the run",
    )
    how.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--list-figures", action="store_true", help="list figure ids and exit"
    )
    return parser


def _parse_shard(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    if raw is None:
        return None
    try:
        index_s, _, count_s = raw.partition("/")
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise SystemExit(
            f"--shard expects I/K with integer I and K (got {raw!r})"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise SystemExit(
            f"--shard {raw}: need K >= 1 and 0 <= I < K "
            f"(shard indices are zero-based)"
        )
    return index, count


def _parse_overrides(items: List[str]) -> Dict[str, object]:
    overrides = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--set expects field=value (got {item!r})")
        name, _, value = item.partition("=")
        overrides[name] = _coerce(name, value)
    return overrides


def _reject_grid_collisions(
    overrides: Dict[str, object], axes: Iterable[str], context: str
) -> None:
    """``--set`` values on a grid axis would be silently clobbered by the
    grid's values (every cell re-assigns the axis field on top of the
    base config) — that is never what the caller meant, so fail loudly."""
    clash = sorted(set(overrides) & set(axes))
    if clash:
        fields = ", ".join(clash)
        raise SystemExit(
            f"--set {fields}: field{'s' if len(clash) > 1 else ''} "
            f"{fields} {'are' if len(clash) > 1 else 'is'} a grid axis of "
            f"{context}; the grid values would overwrite the override. "
            f"Drop the --set, or use --grid {clash[0]}=... to pin the axis."
        )


def _merge_field_flag(
    overrides: Dict[str, object],
    field: str,
    value: Optional[str],
    axes: Iterable[str],
) -> None:
    """Fold a dedicated field flag (``--backend``, ``--engine``) into the
    override set, rejecting contradictions.

    Each flag is sugar for ``--set <field>=...`` but gets its own error
    messages: silently letting a ``--set`` or a grid axis win over an
    explicit flag would run a different executor than the one the caller
    named."""
    if not value:
        return
    if field in set(axes):
        raise SystemExit(
            f"--{field} {value}: {field!r} is already a grid axis; the "
            f"axis values would overwrite the flag.  Drop --{field} and "
            f"let --grid {field}=... drive the sweep."
        )
    if overrides.get(field, value) != value:
        raise SystemExit(
            f"--{field} {value} contradicts --set "
            f"{field}={overrides[field]}; drop one of them."
        )
    overrides[field] = value


def _apply_model_params(
    base: ScenarioConfig, params: Dict[str, object]
) -> ScenarioConfig:
    """Merge ``--model-param`` pairs over the base's ``model_params``."""
    if not params:
        return base
    merged = dict(base.model_params)
    merged.update(params)
    return base.replace(model_params=merged)


def spec_from_args(args) -> CampaignSpec:
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    # All overrides are applied in one replace(): interdependent fields
    # (n_nodes + group_size) would otherwise fail validation midway.
    overrides = _parse_overrides(args.overrides)
    model_params = _parse_model_params(getattr(args, "model_params", []))
    backend_flag = getattr(args, "backend", None)
    engine_flag = getattr(args, "engine", None)
    if args.figure:
        from repro.experiments.figures import FIGURES

        if args.figure not in FIGURES:
            raise SystemExit(
                f"unknown figure {args.figure!r}; try --list-figures"
            )
        spec = FIGURES[args.figure].campaign_spec(
            quick=not args.paper, seeds=seeds
        )
        axis_names = tuple(name for name, _ in spec.grid)
        _merge_field_flag(overrides, "backend", backend_flag, axis_names)
        _merge_field_flag(overrides, "engine", engine_flag, axis_names)
        if overrides:
            _reject_grid_collisions(
                overrides,
                (name for name, _ in spec.grid),
                f"figure {args.figure}",
            )
        base = spec.base.replace(**overrides) if overrides else spec.base
        base = _apply_model_params(base, model_params)
        if base is not spec.base:
            spec = dataclasses.replace(spec, base=base)
        return spec
    grid = _parse_grid(args.grid)
    _merge_field_flag(overrides, "backend", backend_flag, grid)
    _merge_field_flag(overrides, "engine", engine_flag, grid)
    _reject_grid_collisions(overrides, grid, "this campaign (--grid)")
    base = ScenarioConfig.paper_scale() if args.paper else ScenarioConfig.quick()
    if overrides:
        base = base.replace(**overrides)
    base = _apply_model_params(base, model_params)
    return CampaignSpec.from_mapping(
        name=args.name,
        base=base,
        protocols=tuple(p for p in args.protocols.split(",") if p),
        seeds=seeds,
        grid=grid,
    )


def _store_spec_from_args(args) -> Optional[str]:
    """Resolve ``--store``/``--cache-dir`` into one store spec string."""
    if args.store and args.cache_dir:
        raise SystemExit(
            "--store and --cache-dir both given; --cache-dir DIR is "
            "shorthand for --store json:DIR — drop one of them"
        )
    if args.store:
        return args.store
    if args.cache_dir:
        return f"json:{args.cache_dir}"
    return None


def _metrics_from_args(args, spec: CampaignSpec) -> List[str]:
    if args.metrics:
        return [m for m in args.metrics.split(",") if m]
    return list(default_metrics(spec.backends()))


# ----------------------------------------------------------------------
# Service subcommands
# ----------------------------------------------------------------------
SUBCOMMANDS = ("submit", "status", "results", "migrate")


def _build_view_parser(verb: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments.campaign {verb}",
        description=description,
    )
    _add_spec_args(parser)
    _add_store_args(parser)
    _add_metrics_arg(parser)
    return parser


def _require_store(args) -> str:
    store_spec = _store_spec_from_args(args)
    if store_spec is None:
        raise SystemExit("this subcommand needs --store (or --cache-dir)")
    return store_spec


def _main_status(argv: Sequence[str]) -> int:
    parser = _build_view_parser(
        "status",
        "Streaming view of a campaign's store: per-cell running mean/CI "
        "over whatever has landed so far, plus worker heartbeats.  "
        "Read-only; safe while schedulers are writing.",
    )
    args = parser.parse_args(argv)
    try:
        spec = spec_from_args(args)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    store = probe_store(_require_store(args))
    if store is None:
        print(f"# campaign {spec.name}: 0/{spec.size()} runs (store absent)")
        return 0
    status = campaign_status(
        spec, store, metrics=_metrics_from_args(args, spec) if args.metrics else None
    )
    print(
        f"# campaign {spec.name}: {status.done}/{status.total} runs complete"
        f"{' [complete]' if status.complete else ''}"
    )
    print(status.format_table())
    print(status.format_workers())
    return 0


def _main_results(argv: Sequence[str]) -> int:
    parser = _build_view_parser(
        "results",
        "Assemble a campaign's aggregate table from its store without "
        "executing anything (missing runs are reported, not run).",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the machine-readable campaign record to PATH",
    )
    args = parser.parse_args(argv)
    try:
        spec = spec_from_args(args)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    campaign = collect_campaign(spec, _require_store(args))
    metrics = _metrics_from_args(args, spec)
    print(
        f"# campaign {spec.name}: {spec.size()} runs "
        f"(stored={campaign.cache_hits} missing={campaign.skipped})"
    )
    print(campaign.format_table(metrics))
    if args.json_out:
        _write_json_record(args.json_out, campaign, metrics)
        print(f"# wrote {args.json_out}")
    return 0


def _main_migrate(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign migrate",
        description="Losslessly ingest a v1/v2 JSON cache dir into "
        "another result store (typically SQLite).",
    )
    parser.add_argument("src", help="source JSON record dir (<hash>.json)")
    parser.add_argument(
        "dest", help="destination store spec (e.g. campaign.sqlite)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress"
    )
    args = parser.parse_args(argv)
    if not os.path.isdir(args.src):
        raise SystemExit(f"source is not a directory: {args.src}")
    progress = None if args.quiet else lambda msg: print(msg, flush=True)
    with open_store(args.dest) as dest:
        migrated, skipped = migrate_json_dir(
            args.src, dest, progress=progress
        )
    print(
        f"# migrated {migrated} records from {args.src} to "
        f"{store_location(args.dest)} (skipped {skipped} non-records)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        verb, rest = argv[0], argv[1:]
        if verb == "status":
            return _main_status(rest)
        if verb == "results":
            return _main_results(rest)
        if verb == "migrate":
            return _main_migrate(rest)
        # "submit" is the flat CLI under its service name
        argv = rest
    return _main_flat(argv)


def _main_flat(argv: Sequence[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list_figures:
        from repro.experiments.figures import FIGURES

        for fid, fig in sorted(FIGURES.items()):
            print(f"{fid}: {fig.title}")
        return 0

    try:
        spec = spec_from_args(args)
        configs = spec.configs()  # constructs (and so validates) every run
    except ValueError as exc:  # spec/config validation -> clean CLI error
        raise SystemExit(str(exc)) from None
    shard = _parse_shard(args.shard)
    store_spec = _store_spec_from_args(args)
    if args.dry_run:
        # The full plan without executing anything: per-run identity and
        # shard/store status, then the campaign shape.  The store is only
        # probed when its location already exists (opening would create
        # it), so a dry run is always side-effect free.
        store = probe_store(store_spec) if store_spec else None
        from repro.experiments.scenario_models import (
            non_default_axes,
            plan_lines,
        )

        warm = mine_count = 0
        for cfg in configs:
            marker = ""
            if shard is not None:
                mine = shard_of(cfg, shard[1]) == shard[0]
                mine_count += mine
                marker = "  [mine]" if mine else "  [other shard]"
            if store is not None and store.load(cfg) is not None:
                warm += 1
                marker += "  [cached]"
            # Non-default scenario models ride on the run line so sharded
            # operators can audit exactly what a grid cell will build.
            models = "".join(
                f" {axis}={value}"
                for axis, value in non_default_axes(cfg).items()
            )
            print(
                f"{config_key(cfg)} {cfg.backend:>6s} {cfg.protocol} "
                f"daemon={cfg.daemon} seed={cfg.seed}{models}{marker}"
            )
        print(
            f"# {spec.size()} runs = {len(spec.cells())} cells "
            f"x {len(spec.seeds)} seeds"
        )
        print(f"# backend(s): {','.join(spec.backends())}")
        # The cache-identity contract, from the same table the linter
        # reads (rules H2xx): which fields key the result store, and
        # which are hash-neutral while left at their default.
        from repro.experiments.store import hash_participation

        hashed, neutral = hash_participation()
        print(f"# hash-participating fields ({len(hashed)}): {', '.join(hashed)}")
        print(
            f"# hash-neutral at default ({len(neutral)}): "
            + ", ".join(f"{k}={neutral[k]!r}" for k in sorted(neutral))
        )
        for line in plan_lines(configs):
            print(line)
        if shard is not None:
            print(
                f"# shard {shard[0]}/{shard[1]}: mine={mine_count} "
                f"other={spec.size() - mine_count}"
            )
        if store is not None:
            print(f"# warm cache hits: {warm}/{spec.size()}")
        elif store_spec:
            # historical wording when the legacy flag named the store
            what = "cache dir" if args.cache_dir else "store"
            print(f"# warm cache hits: 0/{spec.size()} ({what} absent)")
        return 0

    progress = None if args.quiet else lambda msg: print(msg, flush=True)
    scheduler = (
        scheduler_by_name(args.scheduler, args.workers)
        if args.scheduler
        else None
    )
    campaign = run_campaign(
        spec,
        workers=args.workers,
        store=store_spec,
        progress=progress,
        shard=shard,
        scheduler=scheduler,
        steal=args.steal,
    )
    metrics = _metrics_from_args(args, spec)
    print()
    shard_note = (
        f" shard={shard[0]}/{shard[1]} skipped={campaign.skipped}"
        if shard is not None
        else ""
    )
    steal_note = f" stolen={campaign.stolen}" if args.steal else ""
    cancel_note = " CANCELLED" if campaign.cancelled else ""
    print(
        f"# campaign {spec.name}: {spec.size()} runs "
        f"(executed={campaign.executed} cached={campaign.cache_hits} "
        f"memo={campaign.memo_hits}{shard_note}{steal_note}) "
        f"in {campaign.elapsed_s:.1f}s{cancel_note}"
    )
    print(campaign.format_table(metrics))
    if args.json_out:
        _write_json_record(args.json_out, campaign, metrics)
        print(f"# wrote {args.json_out}")
    return 0


def _finite_or_none(value: float):
    """Non-finite floats become null: strict RFC 8259 consumers (jq,
    JSON.parse, ...) reject the bare NaN/Infinity tokens json.dump would
    otherwise emit for single-replication CIs or non-converged cells."""
    return value if value == value and abs(value) != float("inf") else None


def _write_json_record(
    path: str, campaign: CampaignResult, metrics: Sequence[str]
) -> None:
    """Machine-readable campaign record (the CI bench artifact)."""
    cells = {}
    counts = {key: len(runs) for key, runs in campaign.by_cell().items()}
    for metric in metrics:
        agg = campaign.aggregate(campaign.extractor(metric))
        for (proto, point), ci in agg.items():
            cell = cells.setdefault(
                f"{proto} {cell_label(point)}", {"n": counts[(proto, point)]}
            )
            cell[metric] = {
                "mean": _finite_or_none(ci.mean),
                "half_width": _finite_or_none(ci.half_width),
            }
    record = {
        "schema": CACHE_SCHEMA,
        "campaign": campaign.spec.name,
        "backends": list(campaign.spec.backends()),
        "size": campaign.spec.size(),
        "executed": campaign.executed,
        "cache_hits": campaign.cache_hits,
        "skipped": campaign.skipped,
        "elapsed_s": campaign.elapsed_s,
        "metrics": list(metrics),
        "cells": cells,
    }
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    sys.exit(main())
