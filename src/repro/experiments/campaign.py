"""Parallel experiment campaigns over pluggable backends.

The paper's evaluation (section 6) is a grid of scenarios — protocols ×
parameter values × seed replications.  A :class:`CampaignSpec` declares
such a grid once; :func:`run_campaign` executes it on a
``multiprocessing`` worker pool with a per-run JSON result cache keyed by
a stable hash of the full :class:`~repro.experiments.config.ScenarioConfig`.
Each run executes on the config's **experiment backend**
(:mod:`repro.experiments.backends`): ``des`` — the packet-level
simulator — or ``rounds`` — the round-model stabilization engine, orders
of magnitude faster per run, which is what lets stabilization-vs-daemon
campaigns (``figd02``) reach paper scale.  ``backend`` is an ordinary
config field, so it sweeps like any grid axis.
Re-running a campaign (or a different campaign sharing cells — e.g. the
Figure 7/8/9 sweeps, which extract different metrics from the *same*
simulations) only executes the missing runs, and an interrupted campaign
resumes from whatever the cache already holds.

Aggregation groups the per-seed replications into mean ± Student-t
confidence intervals via :func:`repro.analysis.stats.mean_ci`.

Command line::

    PYTHONPATH=src python -m repro.experiments.campaign \
        --protocols ss-spst,ss-spst-e --grid v_max=1,5,10 \
        --seeds 1,2,3 --workers 4 --cache-dir .campaign-cache

    PYTHONPATH=src python -m repro.experiments.campaign --figure fig09 \
        --workers 4 --cache-dir .campaign-cache

Cache layout: one ``<hash>.json`` file per run under ``--cache-dir``,
holding the schema version, the exact config, the
:class:`~repro.metrics.hub.RunSummary` fields and the runner diagnostics.
Files are written atomically (tmp + rename) so a killed campaign never
leaves a truncated record behind.

Distributed campaigns: ``--shard I/K`` executes only a deterministic
config-hash partition of the runs, so K machines sharing a cache dir
split one campaign without coordination (see :func:`shard_of`); a final
un-sharded invocation assembles everything from cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import sys
import time
import typing
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.backends import (
    DesBackend,
    backend_by_name,
    default_metrics,
    metric_extractor,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult

#: record-layout version written to new cache files.  v2 added the
#: optional ``backend`` key (absent = "des"); loading still accepts every
#: version in ``COMPATIBLE_SCHEMAS`` and tolerates records that lack
#: later-added summary/diagnostic fields, so old caches keep hitting.
CACHE_SCHEMA = 2

#: record versions the loader accepts; files outside this set are
#: treated as cache misses, never errors.
COMPATIBLE_SCHEMAS = (1, 2)

#: version prefix of the *config hash* — deliberately decoupled from
#: ``CACHE_SCHEMA`` (bumping the record layout must not re-key every
#: cached run; bump this only when run *semantics* change).
HASH_SCHEMA = 1

#: RunResult diagnostics persisted alongside the summary
#: (kept as a module name for backwards compatibility; the DES backend
#: owns the authoritative list)
_DIAGNOSTIC_FIELDS = DesBackend.DIAGNOSTIC_FIELDS


# ----------------------------------------------------------------------
# Config identity
# ----------------------------------------------------------------------
#: fields added to ScenarioConfig *after* caches existed in the wild,
#: mapped to the behavior-neutral default they were introduced with.  At
#: that default the field is dropped from the hash payload (and patched
#: into stored records on load), so every pre-existing cache entry — and
#: every campaign hash — stays valid; only non-default values fork new
#: cache cells.
_HASH_NEUTRAL_DEFAULTS: Dict[str, object] = {
    "daemon": "distributed",
    "backend": "des",
    # scenario-model axes (PR 5): the paper's scenario is the default on
    # every axis, so default configs keep their pre-model-API hashes
    "placement": "uniform",
    "mobility": "waypoint",
    "membership": "static-random",
    "traffic": "cbr",
    "model_params": (),
    "daemon_k": 4,
    "density_ref_n": 0,
    # rounds-engine implementation (PR 6): bit-identical trajectories by
    # contract, so the axis never changes results — only "array" forks a
    # cell (useful to benchmark cache-cold, not to distinguish outputs)
    "engine": "object",
}


def _hash_payload(config: ScenarioConfig) -> Dict[str, object]:
    payload = dataclasses.asdict(config)
    for name, default in _HASH_NEUTRAL_DEFAULTS.items():
        if payload.get(name) == default:
            del payload[name]
    # External scenario inputs (the trace file) join the identity by
    # *content*: editing the file must fork the cache key, not serve
    # stale results computed from the old trajectories.
    from repro.experiments.scenario_models import scenario_content_fingerprint

    fingerprint = scenario_content_fingerprint(config)
    if fingerprint is not None:
        payload["scenario_content"] = fingerprint
    return payload


def config_key(config: ScenarioConfig) -> str:
    """Stable content hash of a scenario config.

    Canonical JSON (sorted keys, exact float repr) of every dataclass
    field, prefixed with the cache schema version.  Two configs collide
    iff they are field-for-field identical, so the hash is a safe cache
    key across processes and sessions.  Later-added fields are dropped at
    their defaults (see ``_HASH_NEUTRAL_DEFAULTS``) so old caches keep
    hitting.
    """
    payload = json.dumps(
        _hash_payload(config), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(
        f"v{HASH_SCHEMA}:{payload}".encode("utf-8")
    ).hexdigest()
    return digest[:24]


def shard_of(config: ScenarioConfig, n_shards: int) -> int:
    """Deterministic shard assignment by config hash.

    Stable across machines and campaign compositions (it depends on the
    run's identity alone), so K workers pointing ``--shard i/K`` at one
    shared cache dir partition any campaign without coordination.
    """
    return int(config_key(config), 16) % n_shards


# ----------------------------------------------------------------------
# Persistent per-run records
# ----------------------------------------------------------------------
def record_from_result(result, elapsed_s: float = 0.0) -> dict:
    """JSON-safe record of one finished run (any backend)."""
    backend = backend_by_name(getattr(result.config, "backend", "des"))
    return backend.record_from(result, elapsed_s=elapsed_s)


def result_from_record(record: dict):
    """Rebuild the result a record was made from (any backend, any era).

    Dispatches on the record's ``backend`` key (absent in v1 records,
    meaning DES) and tolerates records that lack later-added summary or
    diagnostic fields — a v1 cache written before those fields existed
    keeps loading unchanged.
    """
    return backend_by_name(record.get("backend", "des")).result_from_record(
        record
    )


class ResultCache:
    """Directory of ``<config_key>.json`` run records."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, config: ScenarioConfig) -> str:
        return os.path.join(self.root, f"{config_key(config)}.json")

    def load(self, config: ScenarioConfig) -> Optional[dict]:
        """The cached record for ``config``, or None.

        Unreadable/stale files are misses: the run is simply redone (and
        the file rewritten), so a corrupt cache can never fail a campaign.
        """
        try:
            with open(self.path(config), "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if record.get("schema") not in COMPATIBLE_SCHEMAS:
            return None
        if record.get("backend", "des") != config.backend:
            return None  # a foreign backend's record cannot impersonate
        stored = record.get("config")
        if not isinstance(stored, dict):
            return None
        known = {f.name for f in dataclasses.fields(ScenarioConfig)}
        if not set(stored) <= known:
            return None  # a future era's record cannot impersonate
        # Records written before a hash-neutral field existed lack it;
        # they describe the default behavior by construction.  Rebuilding
        # the config normalizes JSON artifacts (model_params round-trips
        # as lists of lists) before the identity comparison.
        stored = {**_HASH_NEUTRAL_DEFAULTS, **stored}
        try:
            rebuilt = ScenarioConfig(**stored)
        except (TypeError, ValueError):
            return None  # unconstructible record (hand-edited file)
        if rebuilt != config:
            return None  # hash collision or hand-edited file
        record["config"] = dataclasses.asdict(rebuilt)
        return record

    def store(self, config: ScenarioConfig, record: dict) -> str:
        """Atomically persist a record (resumable after interruption)."""
        path = self.path(config)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Campaign spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative protocol/parameter grid with seed replications.

    ``grid`` is an ordered tuple of ``(field_name, values)`` pairs; the
    campaign runs the cartesian product of all grid axes × protocols ×
    seeds on top of ``base``.
    """

    name: str
    base: ScenarioConfig
    protocols: Tuple[str, ...]
    seeds: Tuple[int, ...]
    grid: Tuple[Tuple[str, Tuple], ...] = ()

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("a campaign needs at least one protocol")
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        for name, values in self.grid:
            if name not in ScenarioConfig.__dataclass_fields__:
                raise ValueError(f"unknown ScenarioConfig field {name!r}")
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")

    @classmethod
    def from_mapping(
        cls,
        name: str,
        base: ScenarioConfig,
        protocols: Sequence[str],
        seeds: Sequence[int],
        grid: Optional[Dict[str, Sequence]] = None,
    ) -> "CampaignSpec":
        return cls(
            name=name,
            base=base,
            protocols=tuple(protocols),
            seeds=tuple(int(s) for s in seeds),
            grid=tuple((k, tuple(v)) for k, v in (grid or {}).items()),
        )

    # ------------------------------------------------------------------
    def points(self) -> List[Dict[str, object]]:
        """The grid points (field -> value dicts), in declaration order."""
        if not self.grid:
            return [{}]
        axes = [[(name, v) for v in values] for name, values in self.grid]
        return [dict(combo) for combo in itertools.product(*axes)]

    def cells(self) -> List[Tuple[str, Dict[str, object]]]:
        """(protocol, grid point) pairs — one aggregation cell each."""
        return [(p, pt) for pt in self.points() for p in self.protocols]

    def configs(self) -> List[ScenarioConfig]:
        """Every run of the campaign: cells × seeds."""
        out = []
        for proto, point in self.cells():
            for seed in self.seeds:
                out.append(
                    self.base.replace(protocol=proto, seed=seed, **point)
                )
        return out

    def size(self) -> int:
        return len(self.protocols) * len(self.seeds) * len(self.points())

    def backends(self) -> Tuple[str, ...]:
        """The experiment backends this campaign spans.

        The base config's backend, unless ``backend`` is a grid axis —
        then every cell's backend comes from the axis values.
        """
        for name, values in self.grid:
            if name == "backend":
                return tuple(dict.fromkeys(values))
        return (self.base.backend,)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(config: ScenarioConfig) -> dict:
    """Worker-side: run one config on its backend, return its record."""
    backend = backend_by_name(config.backend)
    t0 = time.perf_counter()
    result = backend.run(config)
    return backend.record_from(result, elapsed_s=time.perf_counter() - t0)


def _execute_indexed(payload: Tuple[int, ScenarioConfig]) -> Tuple[int, dict]:
    """Worker-side wrapper carrying the run's position in the campaign,
    so out-of-order pool completions (and duplicate configs, e.g.
    repeated seeds) map back to the right result slot."""
    i, config = payload
    return i, _execute(config)


@dataclass
class CampaignResult:
    """All runs of a campaign plus cache accounting.

    ``results`` is aligned with ``spec.configs()``; entries are ``None``
    for runs outside this invocation's shard that no cache could supply
    (``skipped`` counts them).  Aggregation works over whatever is
    present, so a shard can still print its partial table.
    """

    spec: CampaignSpec
    results: List[Optional[RunResult]]  # aligned with spec.configs()
    executed: int = 0
    cache_hits: int = 0  # disk-cache hits
    memo_hits: int = 0  # in-memory memo hits
    skipped: int = 0  # out-of-shard runs left to other machines
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------
    def by_cell(self) -> Dict[Tuple[str, Tuple], List[RunResult]]:
        """Available seed replications grouped per (protocol, grid point)
        cell.

        The point is keyed by its ``(field, value)`` tuple so cells stay
        hashable; iteration order follows the spec.  Skipped
        (out-of-shard, uncached) runs are absent from the lists.
        """
        out: Dict[Tuple[str, Tuple], List[RunResult]] = {}
        i = 0
        for proto, point in self.spec.cells():
            key = (proto, tuple(point.items()))
            chunk = self.results[i : i + len(self.spec.seeds)]
            out[key] = [r for r in chunk if r is not None]
            i += len(self.spec.seeds)
        return out

    def aggregate(
        self, extract: Callable[[RunResult], float], confidence: float = 0.95
    ):
        """Per-cell mean ± CI of an extracted quantity.

        Returns ``{(protocol, point_items): CiSummary}`` — the campaign
        counterpart of :func:`repro.analysis.stats.sweep_cis`.  Cells with
        no available runs (a foreign shard's share) are omitted.
        """
        # Imported lazily: analysis.stats imports sweeps for typing, and
        # sweeps runs through this module.
        from repro.analysis.stats import mean_ci

        return {
            key: mean_ci([extract(r) for r in runs], confidence)
            for key, runs in self.by_cell().items()
            if runs
        }

    def extractor(self, metric: str) -> Callable:
        """The backend-dispatching extractor for a metric name.

        Resolved against every backend the campaign spans (see
        :func:`repro.experiments.backends.metric_extractor`), so the same
        name works over DES runs, rounds runs, or a mix.
        """
        return metric_extractor(metric, self.spec.backends())

    def format_table(self, metrics: Sequence[str] = ("pdr",)) -> str:
        """Aggregate table: one row per cell, mean ± CI per metric."""
        rows = []
        counts = {key: len(runs) for key, runs in self.by_cell().items()}
        labels = {key: cell_label(key[1]) for key in counts}
        width = max([24] + [len(v) for v in labels.values()])
        header = f"{'protocol':>12s} {'grid point':>{width}s} {'n':>3s}"
        for m in metrics:
            header += f" {m:>24s}"
        rows.append(header)
        aggs = [self.aggregate(self.extractor(m)) for m in metrics]
        for key in aggs[0] if aggs else []:
            proto, point = key
            row = f"{proto:>12s} {labels[key]:>{width}s} {counts[key]:>3d}"
            for agg in aggs:
                ci = agg[key]
                hw = f"±{ci.half_width:.4f}" if ci.half_width == ci.half_width else "±nan"
                row += f" {ci.mean:>12.4f} {hw:>11s}"
            rows.append(row)
        return "\n".join(rows)


def cell_label(point_items: Iterable[Tuple[str, object]]) -> str:
    """Human-readable grid-point label (``k=v,...`` or ``-``), shared by
    the aggregate table and the JSON campaign record."""
    return ",".join(f"{k}={v}" for k, v in point_items) or "-"


def _summary_extractor(name: str) -> Callable[[RunResult], float]:
    """Deprecated: DES-only ``RunSummary`` attribute pull.

    Superseded by the typed :class:`~repro.experiments.backends.MetricSpec`
    registry — use ``metric_extractor(name, spec.backends())`` or
    ``CampaignResult.extractor(name)``, which dispatch per backend (see
    the README migration note).  Kept with its historical signature and
    error message for existing callers.
    """
    from repro.metrics.hub import RunSummary

    if name not in {f.name for f in dataclasses.fields(RunSummary)}:
        raise ValueError(
            f"unknown summary metric {name!r}; choose from "
            f"{sorted(f.name for f in dataclasses.fields(RunSummary))}"
        )
    return lambda r: float(getattr(r.summary, name))


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    memo: Optional[Dict[ScenarioConfig, RunResult]] = None,
    progress: Optional[Callable[[str], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> CampaignResult:
    """Execute a campaign, reusing every result that is already known.

    Lookup order per run: ``memo`` (an in-memory dict shared across
    campaigns in one process — the sweep/figure cache) → ``cache_dir``
    (the persistent JSON store) → execute.  Pending runs go to a
    ``multiprocessing`` pool when ``workers > 1``; each finished record is
    written to the cache as it arrives, so interrupting the campaign
    loses at most the in-flight runs.

    ``shard=(i, k)`` distributes one campaign over ``k`` machines sharing
    a cache dir: runs are partitioned deterministically by config hash
    (:func:`shard_of`) and only shard ``i``'s share is *executed* here —
    foreign-shard runs are still served from the caches when available
    (so overlapping or repeated shard invocations resume cleanly), and
    are otherwise reported as ``skipped``.  After every shard has run, a
    final un-sharded invocation against the shared cache assembles the
    full campaign without executing anything.
    """
    if shard is not None:
        index, count = shard
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(
                f"shard index {index} out of range for {count} shard"
                f"{'s' if count != 1 else ''} (need 0 <= i < k)"
            )
    t0 = time.perf_counter()
    configs = spec.configs()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: List[Optional[RunResult]] = [None] * len(configs)
    pending: List[Tuple[int, ScenarioConfig]] = []
    memo_hits = cache_hits = skipped = 0

    for i, cfg in enumerate(configs):
        if memo is not None and cfg in memo:
            results[i] = memo[cfg]
            memo_hits += 1
            continue
        record = cache.load(cfg) if cache is not None else None
        if record is not None:
            results[i] = result_from_record(record)
            cache_hits += 1
            if memo is not None:
                memo[cfg] = results[i]
            continue
        if shard is not None and shard_of(cfg, shard[1]) != shard[0]:
            skipped += 1
            continue
        pending.append((i, cfg))

    def _finish(i: int, cfg: ScenarioConfig, record: dict) -> None:
        results[i] = result_from_record(record)
        if cache is not None:
            cache.store(cfg, record)
        if memo is not None:
            memo[cfg] = results[i]
        if progress:
            progress(
                f"[{spec.name}] {cfg.protocol} seed={cfg.seed} "
                f"({record['elapsed_s']:.2f}s)"
            )

    configs_by_index = dict(pending)
    n_workers = min(workers, len(pending))
    if n_workers > 1:
        with multiprocessing.Pool(n_workers) as pool:
            for i, record in pool.imap_unordered(_execute_indexed, pending):
                _finish(i, configs_by_index[i], record)
    else:
        for i, cfg in pending:
            _finish(i, cfg, _execute(cfg))

    return CampaignResult(
        spec=spec,
        results=list(results),
        executed=len(pending),
        cache_hits=cache_hits,
        memo_hits=memo_hits,
        skipped=skipped,
        elapsed_s=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _field_types() -> Dict[str, type]:
    hints = typing.get_type_hints(ScenarioConfig)
    return {f.name: hints[f.name] for f in dataclasses.fields(ScenarioConfig)}


def _coerce(field_name: str, raw: str):
    """Parse a CLI string into the ScenarioConfig field's type."""
    types = _field_types()
    if field_name not in types:
        raise SystemExit(
            f"unknown ScenarioConfig field {field_name!r}; choose from "
            f"{sorted(types)}"
        )
    if field_name == "model_params":
        raise SystemExit(
            "model_params is not settable as a flat field; use "
            "--model-param KEY=VALUE (repeatable)"
        )
    typ = types[field_name]
    if typ is int:
        return int(raw)
    if typ is float:
        return float(raw)
    return raw


def _coerce_param_value(raw: str):
    """Model-param values: int if it parses, else float, else string."""
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def _parse_model_params(items: List[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(
                f"--model-param expects key=value (got {item!r})"
            )
        key, _, value = item.partition("=")
        params[key] = _coerce_param_value(value)
    return params


def _parse_grid(specs: List[str]) -> Dict[str, Tuple]:
    grid: Dict[str, Tuple] = {}
    for item in specs:
        if "=" not in item:
            raise SystemExit(f"--grid expects field=v1,v2,... (got {item!r})")
        name, _, values = item.partition("=")
        grid[name] = tuple(_coerce(name, v) for v in values.split(",") if v)
    return grid


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description="Run a protocol/parameter/seed campaign in parallel "
        "with persistent per-run caching.",
    )
    what = parser.add_argument_group("what to run")
    what.add_argument(
        "--figure",
        help="run a figure's grid (fig07..fig16, or the figd01/figd02/"
        "figm01 extensions) instead of --grid",
    )
    what.add_argument(
        "--backend",
        default=None,
        help="experiment backend for the base config: 'des' (packet-level "
        "simulator, the default) or 'rounds' (round-model stabilization "
        "engine; accepts every daemon and is orders of magnitude faster "
        "per run).  Sweepable as a grid axis too: --grid backend=des,rounds",
    )
    what.add_argument(
        "--engine",
        default=None,
        help="round-engine implementation for the base config (rounds "
        "backend only): 'object' (scalar reference, the default) or "
        "'array' (vectorized columnar evaluation — bit-identical "
        "trajectories, built for 10^4-10^5 nodes).  Sweepable as a grid "
        "axis too: --grid engine=object,array",
    )
    what.add_argument(
        "--protocols",
        default="ss-spst,ss-spst-e",
        help="comma-separated protocol list (ignored with --figure)",
    )
    what.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="grid axis over a ScenarioConfig field; repeatable",
    )
    what.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        dest="overrides",
        help="override a base-config field; repeatable",
    )
    what.add_argument(
        "--model-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="model_params",
        help="scenario-model sub-parameter merged into the base config's "
        "model_params (e.g. gm_alpha=0.7, rotation_period=30, "
        "trace_file=scen.json); repeatable.  Keys must be accepted by a "
        "resolved placement/mobility/membership/traffic model",
    )
    what.add_argument("--seeds", default="1,2,3", help="comma-separated seeds")
    what.add_argument(
        "--paper",
        action="store_true",
        help="paper-scale base config (default: quick scale)",
    )
    how = parser.add_argument_group("how to run")
    how.add_argument("--workers", type=int, default=1, help="pool size")
    how.add_argument(
        "--cache-dir", default=None, help="persistent JSON result cache"
    )
    how.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help="execute only shard I of K (deterministic config-hash "
        "partition); K machines pointing different shards at one shared "
        "--cache-dir split the campaign, and a final un-sharded run "
        "assembles it from cache",
    )
    how.add_argument(
        "--metrics",
        default=None,
        help="metric names for the aggregate table (default: per-backend "
        "choice, e.g. pdr,energy_per_packet_mj on des and "
        "rounds,evaluations,moves on rounds)",
    )
    how.add_argument(
        "--name", default="cli", help="campaign name (progress labels)"
    )
    how.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan — backend, per-run identities, grid size, "
        "shard assignment and warm-cache hit count — without executing",
    )
    how.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write a machine-readable campaign record (aggregates + "
        "cache accounting) to PATH after the run",
    )
    how.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--list-figures", action="store_true", help="list figure ids and exit"
    )
    return parser


def _parse_shard(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    if raw is None:
        return None
    try:
        index_s, _, count_s = raw.partition("/")
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise SystemExit(
            f"--shard expects I/K with integer I and K (got {raw!r})"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise SystemExit(
            f"--shard {raw}: need K >= 1 and 0 <= I < K "
            f"(shard indices are zero-based)"
        )
    return index, count


def _parse_overrides(items: List[str]) -> Dict[str, object]:
    overrides = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--set expects field=value (got {item!r})")
        name, _, value = item.partition("=")
        overrides[name] = _coerce(name, value)
    return overrides


def _reject_grid_collisions(
    overrides: Dict[str, object], axes: Iterable[str], context: str
) -> None:
    """``--set`` values on a grid axis would be silently clobbered by the
    grid's values (every cell re-assigns the axis field on top of the
    base config) — that is never what the caller meant, so fail loudly."""
    clash = sorted(set(overrides) & set(axes))
    if clash:
        fields = ", ".join(clash)
        raise SystemExit(
            f"--set {fields}: field{'s' if len(clash) > 1 else ''} "
            f"{fields} {'are' if len(clash) > 1 else 'is'} a grid axis of "
            f"{context}; the grid values would overwrite the override. "
            f"Drop the --set, or use --grid {clash[0]}=... to pin the axis."
        )


def _merge_field_flag(
    overrides: Dict[str, object],
    field: str,
    value: Optional[str],
    axes: Iterable[str],
) -> None:
    """Fold a dedicated field flag (``--backend``, ``--engine``) into the
    override set, rejecting contradictions.

    Each flag is sugar for ``--set <field>=...`` but gets its own error
    messages: silently letting a ``--set`` or a grid axis win over an
    explicit flag would run a different executor than the one the caller
    named."""
    if not value:
        return
    if field in set(axes):
        raise SystemExit(
            f"--{field} {value}: {field!r} is already a grid axis; the "
            f"axis values would overwrite the flag.  Drop --{field} and "
            f"let --grid {field}=... drive the sweep."
        )
    if overrides.get(field, value) != value:
        raise SystemExit(
            f"--{field} {value} contradicts --set "
            f"{field}={overrides[field]}; drop one of them."
        )
    overrides[field] = value


def _apply_model_params(
    base: ScenarioConfig, params: Dict[str, object]
) -> ScenarioConfig:
    """Merge ``--model-param`` pairs over the base's ``model_params``."""
    if not params:
        return base
    merged = dict(base.model_params)
    merged.update(params)
    return base.replace(model_params=merged)


def spec_from_args(args) -> CampaignSpec:
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    # All overrides are applied in one replace(): interdependent fields
    # (n_nodes + group_size) would otherwise fail validation midway.
    overrides = _parse_overrides(args.overrides)
    model_params = _parse_model_params(getattr(args, "model_params", []))
    backend_flag = getattr(args, "backend", None)
    engine_flag = getattr(args, "engine", None)
    if args.figure:
        from repro.experiments.figures import FIGURES

        if args.figure not in FIGURES:
            raise SystemExit(
                f"unknown figure {args.figure!r}; try --list-figures"
            )
        spec = FIGURES[args.figure].campaign_spec(
            quick=not args.paper, seeds=seeds
        )
        axis_names = tuple(name for name, _ in spec.grid)
        _merge_field_flag(overrides, "backend", backend_flag, axis_names)
        _merge_field_flag(overrides, "engine", engine_flag, axis_names)
        if overrides:
            _reject_grid_collisions(
                overrides,
                (name for name, _ in spec.grid),
                f"figure {args.figure}",
            )
        base = spec.base.replace(**overrides) if overrides else spec.base
        base = _apply_model_params(base, model_params)
        if base is not spec.base:
            spec = dataclasses.replace(spec, base=base)
        return spec
    grid = _parse_grid(args.grid)
    _merge_field_flag(overrides, "backend", backend_flag, grid)
    _merge_field_flag(overrides, "engine", engine_flag, grid)
    _reject_grid_collisions(overrides, grid, "this campaign (--grid)")
    base = ScenarioConfig.paper_scale() if args.paper else ScenarioConfig.quick()
    if overrides:
        base = base.replace(**overrides)
    base = _apply_model_params(base, model_params)
    return CampaignSpec.from_mapping(
        name=args.name,
        base=base,
        protocols=tuple(p for p in args.protocols.split(",") if p),
        seeds=seeds,
        grid=grid,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_figures:
        from repro.experiments.figures import FIGURES

        for fid, fig in sorted(FIGURES.items()):
            print(f"{fid}: {fig.title}")
        return 0

    try:
        spec = spec_from_args(args)
        configs = spec.configs()  # constructs (and so validates) every run
    except ValueError as exc:  # spec/config validation -> clean CLI error
        raise SystemExit(str(exc)) from None
    shard = _parse_shard(args.shard)
    if args.dry_run:
        # The full plan without executing anything: per-run identity and
        # shard/cache status, then the campaign shape.  The cache is only
        # probed when its directory already exists (ResultCache would
        # create it), so a dry run is always side-effect free.
        cache = (
            ResultCache(args.cache_dir)
            if args.cache_dir and os.path.isdir(args.cache_dir)
            else None
        )
        from repro.experiments.scenario_models import (
            non_default_axes,
            plan_lines,
        )

        warm = mine_count = 0
        for cfg in configs:
            marker = ""
            if shard is not None:
                mine = shard_of(cfg, shard[1]) == shard[0]
                mine_count += mine
                marker = "  [mine]" if mine else "  [other shard]"
            if cache is not None and cache.load(cfg) is not None:
                warm += 1
                marker += "  [cached]"
            # Non-default scenario models ride on the run line so sharded
            # operators can audit exactly what a grid cell will build.
            models = "".join(
                f" {axis}={value}"
                for axis, value in non_default_axes(cfg).items()
            )
            print(
                f"{config_key(cfg)} {cfg.backend:>6s} {cfg.protocol} "
                f"daemon={cfg.daemon} seed={cfg.seed}{models}{marker}"
            )
        print(
            f"# {spec.size()} runs = {len(spec.cells())} cells "
            f"x {len(spec.seeds)} seeds"
        )
        print(f"# backend(s): {','.join(spec.backends())}")
        for line in plan_lines(configs):
            print(line)
        if shard is not None:
            print(
                f"# shard {shard[0]}/{shard[1]}: mine={mine_count} "
                f"other={spec.size() - mine_count}"
            )
        if cache is not None:
            print(f"# warm cache hits: {warm}/{spec.size()}")
        elif args.cache_dir:
            print(f"# warm cache hits: 0/{spec.size()} (cache dir absent)")
        return 0

    progress = None if args.quiet else lambda msg: print(msg, flush=True)
    campaign = run_campaign(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=progress,
        shard=shard,
    )
    if args.metrics:
        metrics = [m for m in args.metrics.split(",") if m]
    else:
        metrics = list(default_metrics(spec.backends()))
    print()
    shard_note = (
        f" shard={shard[0]}/{shard[1]} skipped={campaign.skipped}"
        if shard is not None
        else ""
    )
    print(
        f"# campaign {spec.name}: {spec.size()} runs "
        f"(executed={campaign.executed} cached={campaign.cache_hits} "
        f"memo={campaign.memo_hits}{shard_note}) in {campaign.elapsed_s:.1f}s"
    )
    print(campaign.format_table(metrics))
    if args.json_out:
        _write_json_record(args.json_out, campaign, metrics)
        print(f"# wrote {args.json_out}")
    return 0


def _finite_or_none(value: float):
    """Non-finite floats become null: strict RFC 8259 consumers (jq,
    JSON.parse, ...) reject the bare NaN/Infinity tokens json.dump would
    otherwise emit for single-replication CIs or non-converged cells."""
    return value if value == value and abs(value) != float("inf") else None


def _write_json_record(
    path: str, campaign: CampaignResult, metrics: Sequence[str]
) -> None:
    """Machine-readable campaign record (the CI bench artifact)."""
    cells = {}
    counts = {key: len(runs) for key, runs in campaign.by_cell().items()}
    for metric in metrics:
        agg = campaign.aggregate(campaign.extractor(metric))
        for (proto, point), ci in agg.items():
            cell = cells.setdefault(
                f"{proto} {cell_label(point)}", {"n": counts[(proto, point)]}
            )
            cell[metric] = {
                "mean": _finite_or_none(ci.mean),
                "half_width": _finite_or_none(ci.half_width),
            }
    record = {
        "schema": CACHE_SCHEMA,
        "campaign": campaign.spec.name,
        "backends": list(campaign.spec.backends()),
        "size": campaign.spec.size(),
        "executed": campaign.executed,
        "cache_hits": campaign.cache_hits,
        "skipped": campaign.skipped,
        "elapsed_s": campaign.elapsed_s,
        "metrics": list(metrics),
        "cells": cells,
    }
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)


if __name__ == "__main__":
    sys.exit(main())
