"""Radio energy model and per-node energy accounting.

Section 3 of the paper assumes: power-controlled transmitters (energy to
reach a neighbor depends on distance), constant reception energy, and a
*discard* energy — the reception energy wasted by in-range nodes that are
not intended receivers ("overhearing").  :class:`FirstOrderRadioModel`
implements the standard first-order radio model that satisfies those
assumptions; :class:`EnergyLedger` tracks per-node joules split by
direction (tx / rx / discard) and traffic class (data / control), which is
exactly the breakdown the evaluation metrics need.
"""

from repro.energy.radio import FirstOrderRadioModel, RadioModel
from repro.energy.ledger import EnergyLedger, EnergyBreakdown
from repro.energy.battery import Battery

__all__ = [
    "RadioModel",
    "FirstOrderRadioModel",
    "EnergyLedger",
    "EnergyBreakdown",
    "Battery",
]
