"""Finite battery model (extension).

The paper motivates self-stabilization partly by "depletion of battery
power" as a topology-change source but simulates unlimited energy.  The
:class:`Battery` extension lets scenarios deplete and kill nodes, injecting
exactly that fault class; used by the failure-injection tests and the
lifetime extension experiment.
"""

from __future__ import annotations

from typing import Callable, Optional


class Battery:
    """A finite energy reserve with a death callback.

    Parameters
    ----------
    capacity_j:
        Initial charge in joules; ``float('inf')`` (default) disables
        depletion, matching the paper's setup.
    on_depleted:
        Called exactly once when the charge reaches zero.
    """

    __slots__ = ("capacity_j", "remaining_j", "_on_depleted", "_dead")

    def __init__(
        self,
        capacity_j: float = float("inf"),
        on_depleted: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity_j <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity_j = capacity_j
        self.remaining_j = capacity_j
        self._on_depleted = on_depleted
        self._dead = False

    @property
    def depleted(self) -> bool:
        """Whether the battery has run out."""
        return self._dead

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity (1.0 if infinite)."""
        if self.capacity_j == float("inf"):
            return 1.0
        return max(self.remaining_j, 0.0) / self.capacity_j

    def draw(self, joules: float) -> bool:
        """Consume ``joules``; returns False (and fires the callback once)
        if the battery is — or just became — depleted."""
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        if self._dead:
            return False
        self.remaining_j -= joules
        if self.remaining_j <= 0.0:
            self.remaining_j = 0.0
            self._dead = True
            if self._on_depleted is not None:
                self._on_depleted()
            return False
        return True
