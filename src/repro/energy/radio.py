"""First-order radio energy model with power control.

Transmitting ``b`` bits to range ``d`` costs::

    E_tx(b, d) = (e_elec + eps_amp * max(d, d_floor) ** alpha) * b      [J]

and receiving ``b`` bits costs::

    E_rx(b) = e_rx * b                                                  [J]

matching the paper's assumptions: transmission energy grows super-linearly
with distance (so multi-hop relaying can beat one long hop — the effect
SS-SPST-E exploits), and reception energy is constant per bit regardless of
the transmitter's power ("We also assume that the reception energy is
constant for all the nodes", section 3).

Default constants are the widely used first-order values (Heinzelman et
al.): ``e_elec = e_rx = 50 nJ/bit``, ``eps_amp = 100 pJ/bit/m^2``,
``alpha = 2``.  The paper does not publish its ns-2 constants; only
*relative* energies matter for its conclusions (see DESIGN.md section 4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class RadioModel(abc.ABC):
    """Interface for radio energy/range computations."""

    max_range: float

    @abc.abstractmethod
    def tx_energy(self, bits: float, distance: float) -> float:
        """Energy (J) to transmit ``bits`` with power reaching ``distance``."""

    @abc.abstractmethod
    def rx_energy(self, bits: float) -> float:
        """Energy (J) to receive ``bits``."""

    @abc.abstractmethod
    def tx_cost_per_bit(self, distance: float) -> float:
        """Per-bit transmit energy (J/bit) at range ``distance``."""

    def in_range(self, distance: float) -> bool:
        """Whether a receiver at ``distance`` is reachable at maximum power."""
        return 0.0 < distance <= self.max_range


@dataclass(frozen=True)
class FirstOrderRadioModel(RadioModel):
    """The first-order (Heinzelman) radio model with hard maximum range.

    Parameters
    ----------
    e_elec:
        Electronics energy per bit for the transmit chain, J/bit.
    e_rx:
        Reception energy per bit, J/bit (constant, per the paper).
    eps_amp:
        Amplifier energy per bit per m^alpha, J/bit/m^alpha.
    alpha:
        Path-loss exponent (2 free space, 4 two-ray ground).
    max_range:
        Maximum transmission range at full power, metres.  The paper's
        750 m arena with 50 nodes is connected w.h.p. at the ns-2 default
        250 m, which we adopt.
    d_floor:
        Minimum effective distance for power control (transmitters cannot
        reduce power indefinitely).
    """

    e_elec: float = 50e-9
    e_rx: float = 50e-9
    eps_amp: float = 100e-12
    alpha: float = 2.0
    max_range: float = 250.0
    d_floor: float = 10.0

    def __post_init__(self) -> None:
        if min(self.e_elec, self.e_rx, self.eps_amp) < 0:
            raise ValueError("energy constants must be non-negative")
        if self.alpha < 1.0:
            raise ValueError("path-loss exponent must be >= 1")
        if self.max_range <= 0 or self.d_floor < 0:
            raise ValueError("ranges must be positive")
        if self.d_floor > self.max_range:
            raise ValueError("d_floor cannot exceed max_range")

    # ------------------------------------------------------------------
    def tx_cost_per_bit(self, distance: float) -> float:
        if distance < 0:
            raise ValueError("distance must be non-negative")
        d = max(distance, self.d_floor)
        return self.e_elec + self.eps_amp * d**self.alpha

    def tx_energy(self, bits: float, distance: float) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.tx_cost_per_bit(distance) * bits

    def rx_energy(self, bits: float) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.e_rx * bits

    # ------------------------------------------------------------------
    def relay_beats_direct(self, d_direct: float, d_hop1: float, d_hop2: float) -> bool:
        """True when relaying over two hops is cheaper than one direct hop.

        Per-bit comparison ignoring the relay's reception cost; used by
        documentation examples and tests of the super-linearity property.
        """
        return self.tx_cost_per_bit(d_hop1) + self.tx_cost_per_bit(
            d_hop2
        ) < self.tx_cost_per_bit(d_direct)
