"""Per-node energy accounting.

Every joule spent in the simulation flows through an :class:`EnergyLedger`:

* ``tx``       — energy spent transmitting,
* ``rx``       — energy spent receiving packets the node actually used,
* ``discard``  — energy spent receiving packets the node threw away
  (the paper's *discard energy*, section 3),

each split into ``data`` and ``control`` traffic classes.  The evaluation's
"energy consumed per packet delivered" metric is total network energy (all
six buckets) divided by delivered data packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

_DIRECTIONS = ("tx", "rx", "discard")
_CLASSES = ("data", "control")


@dataclass
class EnergyBreakdown:
    """Immutable snapshot of one node's energy usage in joules."""

    tx_data: float = 0.0
    tx_control: float = 0.0
    rx_data: float = 0.0
    rx_control: float = 0.0
    discard_data: float = 0.0
    discard_control: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.tx_data
            + self.tx_control
            + self.rx_data
            + self.rx_control
            + self.discard_data
            + self.discard_control
        )

    @property
    def total_discard(self) -> float:
        return self.discard_data + self.discard_control

    @property
    def total_control(self) -> float:
        return self.tx_control + self.rx_control + self.discard_control


class EnergyLedger:
    """Mutable accumulator of energy usage for one node."""

    __slots__ = ("_j",)

    def __init__(self) -> None:
        self._j: Dict[str, float] = {
            f"{d}_{c}": 0.0 for d in _DIRECTIONS for c in _CLASSES
        }

    def charge(self, direction: str, traffic_class: str, joules: float) -> None:
        """Record ``joules`` of usage.

        ``direction`` is one of ``tx|rx|discard``; ``traffic_class`` is
        ``data|control``.
        """
        if joules < 0:
            raise ValueError("cannot charge negative energy")
        key = f"{direction}_{traffic_class}"
        if key not in self._j:
            raise ValueError(f"unknown energy bucket {key!r}")
        self._j[key] += joules

    def reclassify_rx_as_discard(self, traffic_class: str, joules: float) -> None:
        """Move energy from the rx bucket to the discard bucket.

        The medium charges reception optimistically; when the protocol agent
        decides the packet is useless (overheard / duplicate), the charge is
        re-filed as discard energy.
        """
        key_rx = f"rx_{traffic_class}"
        key_dis = f"discard_{traffic_class}"
        if joules < 0 or self._j[key_rx] - joules < -1e-12:
            raise ValueError("reclassify amount exceeds rx balance")
        self._j[key_rx] -= joules
        self._j[key_dis] += joules

    def snapshot(self) -> EnergyBreakdown:
        """Return an immutable copy of the current balances."""
        return EnergyBreakdown(**self._j)

    @property
    def total(self) -> float:
        """Total joules across all buckets."""
        return sum(self._j.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EnergyLedger(total={self.total:.6e} J)"
