"""Discrete-event simulation kernel.

This subpackage replaces the ns-2 core the paper ran on: a deterministic
event heap (:mod:`repro.sim.events`), a simulation environment with
scheduling and run control (:mod:`repro.sim.kernel`), a lightweight
generator-based process layer (:mod:`repro.sim.process`) and
self-rescheduling timers (:mod:`repro.sim.timers`).

The kernel is intentionally minimal and allocation-light: events are
``__slots__`` objects, ties are broken FIFO by a sequence counter, and
cancellation is O(1) lazy (cancelled events are skipped when popped).
"""

from repro.sim.events import Event
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.process import Process, Signal, start_process
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Process",
    "Signal",
    "start_process",
    "PeriodicTimer",
]
