"""Self-rescheduling timers.

:class:`PeriodicTimer` drives periodic protocol actions (beaconing,
JOIN-QUERY floods, mobility ticks).  Optional uniform jitter desynchronizes
nodes — without it, all 50 beacons of a scenario would collide at exactly
the same instants every interval, which no real radio would do.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator


class PeriodicTimer:
    """Calls ``callback()`` every ``interval`` seconds until stopped.

    Parameters
    ----------
    sim:
        The simulation environment.
    interval:
        Nominal period in seconds (> 0).
    callback:
        Zero-argument callable invoked on each tick.
    jitter:
        Each tick is displaced by ``U(-jitter/2, +jitter/2)`` seconds,
        clamped so time never goes backwards.  Requires ``rng``.
    rng:
        NumPy generator used for jitter draws.
    start_offset:
        Delay before the first tick (default: one jittered interval).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        start_offset: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.jitter = float(jitter)
        self.rng = rng
        self.ticks = 0
        self._event = None
        self._stopped = False
        first = self._jittered(self.interval) if start_offset is None else start_offset
        self._event = sim.schedule(max(0.0, first), self._fire)

    def _jittered(self, base: float) -> float:
        if self.jitter == 0.0:
            return base
        assert self.rng is not None
        return max(0.0, base + float(self.rng.uniform(-0.5, 0.5)) * self.jitter)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self.callback()
        if not self._stopped:
            self._event = self.sim.schedule(self._jittered(self.interval), self._fire)

    def stop(self) -> None:
        """Cancel all future ticks."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reschedule(self, interval: Optional[float] = None) -> None:
        """Change the period (takes effect from the next tick)."""
        if interval is not None:
            if interval <= 0:
                raise ValueError("interval must be positive")
            self.interval = float(interval)
