"""Generator-based processes on top of the event kernel (simpy-style).

A process is a Python generator that yields either

* a non-negative number — sleep for that many seconds, or
* a :class:`Signal` — suspend until someone calls :meth:`Signal.fire`;
  the fired value is sent back into the generator.

Example::

    def source(sim, medium):
        while True:
            medium.broadcast(...)
            yield 0.25          # inter-packet gap

    start_process(sim, source(sim, medium))

Processes are sugar over callbacks; protocol agents that need fine control
use the kernel directly.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.sim.kernel import Simulator, SimulationError

Yieldable = Union[float, int, "Signal"]


class Signal:
    """A one-shot or reusable wake-up condition for processes.

    Multiple processes may wait on the same signal; ``fire`` wakes all
    current waiters (FIFO) and resets the signal for reuse.
    """

    __slots__ = ("_sim", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Wake every waiting process, delivering ``value``."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            # Resume at the current instant but after the in-flight event.
            self._sim.schedule(0.0, proc._resume, value)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    @property
    def waiting(self) -> int:
        """Number of processes currently parked on the signal."""
        return len(self._waiters)


class Process:
    """Driver wrapping a generator; interacts with the kernel via events."""

    __slots__ = ("sim", "_gen", "alive", "_pending_event")

    def __init__(self, sim: Simulator, gen: Generator[Yieldable, Any, None]) -> None:
        self.sim = sim
        self._gen = gen
        self.alive = True
        self._pending_event = None

    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first step of the process."""
        self._pending_event = self.sim.schedule(delay, self._resume, None)
        return self

    def stop(self) -> None:
        """Kill the process: close the generator, cancel pending wake-ups."""
        if not self.alive:
            return
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._gen.close()

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        try:
            yielded = self._gen.send(value)
        except StopIteration:
            self.alive = False
            return
        self._park(yielded)

    def _park(self, yielded: Yieldable) -> None:
        if isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self.alive = False
                raise SimulationError("process yielded a negative delay")
            self._pending_event = self.sim.schedule(float(yielded), self._resume, None)
        else:
            self.alive = False
            raise SimulationError(f"process yielded unsupported value {yielded!r}")


def start_process(
    sim: Simulator,
    gen: Generator[Yieldable, Any, None],
    delay: float = 0.0,
) -> Process:
    """Create and start a :class:`Process` for ``gen``."""
    return Process(sim, gen).start(delay)
