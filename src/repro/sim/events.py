"""Event objects for the simulation kernel.

An :class:`Event` is a scheduled callback.  Ordering is by ``(time,
priority, seq)`` where ``seq`` is a global insertion counter, so events at
the same timestamp with the same priority fire in FIFO order — this makes
simulations bit-for-bit deterministic for a given seed.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback; compare by ``(time, priority, seq)``.

    Do not construct directly — use :meth:`repro.sim.kernel.Simulator.schedule`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event cancelled; the kernel will skip it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, prio={self.priority}, {name}, {state})"
