"""The simulation environment: clock, event heap, run control.

Usage::

    sim = Simulator()
    sim.schedule(1.0, lambda: print("hello at t=1"))
    sim.run(until=10.0)

The kernel guarantees:

* time never goes backwards (scheduling in the past raises),
* events at equal time fire in (priority, insertion) order,
* ``run(until=T)`` executes every event with ``time <= T`` and leaves
  ``now == T``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """Discrete-event simulation environment."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        ev = Event(float(time), priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        self.events_executed += 1
        ev.callback(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run,
        and the clock is advanced to ``until`` on return.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                self._drop_cancelled()
                if not self._heap:
                    break
                nxt = self._heap[0].time
                if until is not None and nxt > until:
                    break
                ev = heapq.heappop(self._heap)
                self._now = ev.time
                self.events_executed += 1
                executed += 1
                ev.callback(*ev.args)
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop the current ``run`` after the in-flight event finishes."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Simulator(now={self._now:.6f}, pending={self.pending})"
