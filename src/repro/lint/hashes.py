"""Hash-participation rules (H2xx): every config field must be accounted for.

The campaign cache addresses runs by a content hash of
:class:`~repro.experiments.config.ScenarioConfig`
(``experiments/store.py``).  A field that joins the dataclass without
joining the hash contract corrupts the cache in one of two silent ways:

* if it lands in the hash payload unintentionally, **every** existing
  cache entry re-keys (a cold cache nobody asked for);
* if it is meant to be hash-neutral but the neutral table's declared
  default drifts from the dataclass default, the "neutral" value forks
  cells anyway — the exact failure mode PRs 5-8 each had to dodge by
  hand.

These rules cross-check the dataclass against the two machine-readable
contract tables in ``experiments/store.py``:

``CORE_HASH_FIELDS``
    the always-hashed fields (the paper's original scenario surface);
``_HASH_NEUTRAL_DEFAULTS``
    later-added fields that drop out of the payload at their
    introduction default.

Rules:

* ``H201`` — a ``ScenarioConfig`` field is neither in
  ``CORE_HASH_FIELDS`` nor registered hash-neutral;
* ``H202`` — a neutral field's declared default differs from the
  dataclass default;
* ``H203`` — a contract entry names a field that no longer exists
  (stale contract);
* ``H204`` — an ``SSSPSTConfig`` protocol knob is missing from (or
  stale in) its ``CAMPAIGN_BINDINGS`` contract, or binds to a
  nonexistent ``ScenarioConfig`` field.  Every protocol knob must be
  either driven by a hashed config field (``config:<field>``), derived
  from one (``derived:<field>``), or declared ``fixed`` — otherwise a
  behavior change can hide outside the cache key.

The checker is AST-only (literal tables, ``ast.literal_eval``); it
engages whenever the linted tree contains ``experiments/config.py`` and
``experiments/store.py``, so the fixture corpora exercise it exactly
like the live tree.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.lint.base import Finding, Project

__all__ = ["check_hash_participation"]

_BINDING_RE = re.compile(r"^(config:[A-Za-z_][A-Za-z0-9_]*|derived:[A-Za-z_][A-Za-z0-9_]*|fixed)$")


def _class_fields(
    tree: ast.AST, class_name: str
) -> Optional[Dict[str, Tuple[int, Optional[object], bool]]]:
    """``field -> (line, literal default or None, has_literal)`` of the
    annotated dataclass fields of ``class_name`` (UPPERCASE class-level
    constants are skipped: they are class vars, not fields)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: Dict[str, Tuple[int, Optional[object], bool]] = {}
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                name = stmt.target.id
                if name.isupper():
                    continue
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                default: Optional[object] = None
                has_literal = False
                if stmt.value is not None:
                    try:
                        default = ast.literal_eval(stmt.value)
                        has_literal = True
                    except (ValueError, TypeError, SyntaxError):
                        pass
                fields[name] = (stmt.lineno, default, has_literal)
            return fields
    return None


def _module_literal(
    tree: ast.AST, symbol: str
) -> Tuple[Optional[object], int]:
    """The literal value of a module-level assignment, plus its line."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if isinstance(target, ast.Name) and target.id == symbol:
            try:
                return ast.literal_eval(value), node.lineno
            except (ValueError, TypeError, SyntaxError):
                return None, node.lineno
    return None, 0


def check_hash_participation(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    config_src = project.source("experiments/config.py")
    store_src = project.source("experiments/store.py")
    if config_src is None or store_src is None:
        return findings
    if config_src.parse_error or store_src.parse_error:
        return findings  # E901 is emitted by the determinism pass

    assert config_src.tree is not None and store_src.tree is not None
    fields = _class_fields(config_src.tree, "ScenarioConfig")
    if fields is None:
        findings.append(
            Finding(
                "H203",
                config_src.rel,
                1,
                "ScenarioConfig dataclass not found",
            )
        )
        return findings

    core, core_line = _module_literal(store_src.tree, "CORE_HASH_FIELDS")
    neutral, neutral_line = _module_literal(
        store_src.tree, "_HASH_NEUTRAL_DEFAULTS"
    )
    if not isinstance(core, (tuple, list)):
        findings.append(
            Finding(
                "H203",
                store_src.rel,
                core_line or 1,
                "CORE_HASH_FIELDS literal tuple not found in store.py "
                "(the hash contract the linter and --dry-run consume)",
            )
        )
        core = ()
    if not isinstance(neutral, dict):
        findings.append(
            Finding(
                "H203",
                store_src.rel,
                neutral_line or 1,
                "_HASH_NEUTRAL_DEFAULTS literal dict not found in store.py",
            )
        )
        neutral = {}

    core_set = {str(name) for name in core}
    # H201: every field is either always-hashed or registered neutral
    for name, (line, _default, _has) in fields.items():
        if name not in core_set and name not in neutral:
            findings.append(
                Finding(
                    "H201",
                    config_src.rel,
                    line,
                    f"ScenarioConfig.{name} is neither in CORE_HASH_FIELDS "
                    "nor registered in _HASH_NEUTRAL_DEFAULTS: adding it "
                    "silently re-keys every cached run",
                )
            )
    # H202: declared neutral default must equal the dataclass default
    for name, declared in neutral.items():
        if name not in fields:
            continue  # H203 below
        line, default, has_literal = fields[name]
        if has_literal and _canon(default) != _canon(declared):
            findings.append(
                Finding(
                    "H202",
                    store_src.rel,
                    neutral_line,
                    f"hash-neutral default for {name!r} is {declared!r} but "
                    f"the dataclass default is {default!r}: the default "
                    "config would fork its own cache cell",
                )
            )
    # H203: stale contract entries
    for name in sorted(core_set | set(neutral)):
        if name not in fields:
            where = store_src.rel
            line = core_line if name in core_set else neutral_line
            findings.append(
                Finding(
                    "H203",
                    where,
                    line,
                    f"hash contract names {name!r} which is not a "
                    "ScenarioConfig field (stale contract entry)",
                )
            )
    # overlap is a contract bug too: a field cannot be both
    for name in sorted(core_set & set(neutral)):
        findings.append(
            Finding(
                "H203",
                store_src.rel,
                core_line,
                f"{name!r} appears in both CORE_HASH_FIELDS and "
                "_HASH_NEUTRAL_DEFAULTS",
            )
        )

    findings.extend(_check_protocol_bindings(project, set(fields)))
    return findings


def _canon(value: object) -> object:
    """Tuple/list insensitivity (literal tables round-trip as either)."""
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    return value


def _check_protocol_bindings(
    project: Project, config_fields: set
) -> List[Finding]:
    findings: List[Finding] = []
    ss_src = project.source("protocols/ss_spst.py")
    if ss_src is None or ss_src.parse_error:
        return findings
    assert ss_src.tree is not None
    fields = _class_fields(ss_src.tree, "SSSPSTConfig")
    if fields is None:
        return findings
    bindings, bind_line = _module_literal(ss_src.tree, "CAMPAIGN_BINDINGS")
    if not isinstance(bindings, dict):
        findings.append(
            Finding(
                "H204",
                ss_src.rel,
                bind_line or 1,
                "CAMPAIGN_BINDINGS literal dict not found: every "
                "SSSPSTConfig knob must declare how campaigns reach it",
            )
        )
        return findings
    for name, (line, _default, _has) in fields.items():
        if name not in bindings:
            findings.append(
                Finding(
                    "H204",
                    ss_src.rel,
                    line,
                    f"SSSPSTConfig.{name} has no CAMPAIGN_BINDINGS entry: "
                    "a knob outside the contract can change behavior "
                    "without forking the cache key",
                )
            )
    for name, binding in bindings.items():
        if name not in fields:
            findings.append(
                Finding(
                    "H204",
                    ss_src.rel,
                    bind_line,
                    f"CAMPAIGN_BINDINGS names {name!r} which is not an "
                    "SSSPSTConfig field (stale binding)",
                )
            )
            continue
        if not isinstance(binding, str) or not _BINDING_RE.match(binding):
            findings.append(
                Finding(
                    "H204",
                    ss_src.rel,
                    bind_line,
                    f"binding for {name!r} must be 'config:<field>', "
                    f"'derived:<field>' or 'fixed' (got {binding!r})",
                )
            )
            continue
        if binding.startswith(("config:", "derived:")):
            target = binding.split(":", 1)[1]
            if config_fields and target not in config_fields:
                findings.append(
                    Finding(
                        "H204",
                        ss_src.rel,
                        bind_line,
                        f"binding for {name!r} targets "
                        f"ScenarioConfig.{target} which does not exist",
                    )
                )
    return findings
