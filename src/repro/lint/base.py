"""Shared infrastructure of the contract-aware linter.

The linter is **purely static**: it parses the tree it is pointed at
with :mod:`ast` and never imports the code under analysis, so it runs
identically on the live ``src/repro`` package, on the fixture corpora
under ``tests/fixtures/lint``, and in CI before any dependency beyond
the standard library is installed.

Three objects make up the plumbing:

* :class:`Finding` — one diagnostic, addressed by ``(rule, path, line)``
  with a human message.  Findings are stable under unrelated edits to
  the same file (the baseline matches on rule + path + message, not the
  line number).
* :class:`Project` — the tree under analysis: the *package root* (the
  directory passed on the command line, e.g. ``src/repro``) plus the
  *repo root* it lives in (found by walking up to the first directory
  holding ``README.md`` or ``tests/``), which is where the registry
  checkers look for docs and tests.
* :class:`Baseline` — the committed suppression file
  (``lint-baseline.json``): findings recorded there are reported as
  baselined and do not fail the run, so a rule can be introduced before
  the last legacy violation is burned down.

Inline suppressions use ``# lint: ignore[RULE]`` (comma-separated rule
ids, each optionally a prefix such as ``D1``) on the flagged line; a
justification after the bracket is encouraged and kept in the source.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Source",
    "Project",
    "Baseline",
    "rule_enabled",
]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule id, a repo-relative path, a line, a message."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages rarely do."""
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9,\s]+)\]")


class Source:
    """One parsed python file plus its inline-suppression table."""

    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8")
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc
        #: physical line -> rule-id prefixes suppressed on that line
        self.suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                self.suppressions[lineno] = rules

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return any(rule.startswith(prefix) for prefix in rules)


def _walk_python(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


class Project:
    """The tree under analysis and the repo context around it."""

    def __init__(
        self, package_root: Path, repo_root: Optional[Path] = None
    ) -> None:
        self.package_root = package_root.resolve()
        if not self.package_root.is_dir():
            raise NotADirectoryError(str(package_root))
        self.repo_root = (
            repo_root.resolve() if repo_root else self._find_repo_root()
        )
        self._sources: Optional[List[Source]] = None

    def _find_repo_root(self) -> Path:
        probe = self.package_root
        for candidate in (probe, *probe.parents):
            if (candidate / "README.md").exists() or (
                candidate / "tests"
            ).is_dir():
                return candidate
        return self.package_root

    # -- package sources ----------------------------------------------
    def rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def sources(self) -> List[Source]:
        if self._sources is None:
            self._sources = [
                Source(path, self.rel(path))
                for path in _walk_python(self.package_root)
            ]
        return self._sources

    def source(self, rel_to_package: str) -> Optional[Source]:
        """The parsed source at ``<package_root>/<rel_to_package>``."""
        target = (self.package_root / rel_to_package).resolve()
        for src in self.sources():
            if src.path == target:
                return src
        return None

    # -- repo-level corpora (docs, tests) ------------------------------
    def doc_text(self) -> str:
        """README + every markdown file under docs/, lower-cased."""
        chunks: List[str] = []
        readme = self.repo_root / "README.md"
        if readme.exists():
            chunks.append(readme.read_text(encoding="utf-8"))
        docs = self.repo_root / "docs"
        if docs.is_dir():
            for path in sorted(docs.rglob("*.md")):
                chunks.append(path.read_text(encoding="utf-8"))
        return "\n".join(chunks).lower()

    def test_text(self) -> str:
        """Concatenated source of every test file under repo tests/.

        ``tests/fixtures/`` is excluded: fixture corpora (including the
        linter's own good/bad trees) are *data*, and a quoted name
        inside one must not count as a test reference for the live
        package.
        """
        tests = self.repo_root / "tests"
        if not tests.is_dir():
            return ""
        chunks: List[str] = []
        for path in _walk_python(tests):
            resolved = path.resolve()
            if self.package_root in resolved.parents:
                continue
            if resolved.relative_to(tests.resolve()).parts[0] == "fixtures":
                continue
            chunks.append(path.read_text(encoding="utf-8"))
        return "\n".join(chunks)


class Baseline:
    """The committed suppression file: known findings that do not fail."""

    def __init__(self, entries: Sequence[Finding] = ()) -> None:
        self._index: Set[Tuple[str, str, str]] = {
            f.fingerprint() for f in entries
        }
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        text = path.read_text(encoding="utf-8").strip()
        if not text:
            return cls()
        raw = json.loads(text)
        entries = [
            Finding(
                rule=e["rule"],
                path=e["path"],
                line=int(e.get("line", 0)),
                message=e["message"],
            )
            for e in raw.get("findings", [])
        ]
        return cls(entries)

    @staticmethod
    def dump(path: Path, findings: Sequence[Finding]) -> None:
        payload = {
            "comment": (
                "repro.lint baseline: known findings that are suppressed, "
                "with their justification reviewed at commit time.  Keep "
                "this empty unless a finding is genuinely unfixable."
            ),
            "findings": [f.to_json() for f in findings],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._index


def rule_enabled(
    rule: str,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> bool:
    """Prefix-based rule filtering (``--select D,H2`` / ``--ignore D104``)."""
    if select and not any(rule.startswith(p) for p in select):
        return False
    if ignore and any(rule.startswith(p) for p in ignore):
        return False
    return True
