"""Determinism rules (D1xx): the deterministic core must stay replayable.

Every guarantee in this reproduction — bit-identical trajectories across
engines, resume-safe config-hash caching — rests on the *deterministic
core* (``repro.core``, ``repro.graph``, ``repro.protocols``,
``repro.sim``, ``repro.energy``, ``repro.net``) deriving every value
from the scenario seed and nothing else.  These rules forbid the ways
ambient state leaks in:

``D101`` wall-clock reads
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``utcnow()`` / ``today()``.  The profiling clocks
    (``time.perf_counter`` / ``time.monotonic``) stay legal: they may
    time work but their values must never flow into simulation state —
    that contract is enforced by the bit-identity test matrix, not here.

``D102`` unseeded randomness
    Module-level ``random.*`` calls (global hidden state), the legacy
    ``numpy.random.*`` module API, and ``numpy.random.default_rng()``
    with no seed argument.  Only :mod:`repro.util.rng` streams (or an
    explicitly seeded generator) are allowed in the core.

``D103`` environment reads
    ``os.environ`` / ``os.getenv`` outside the sanctioned shims
    (``core/kernels.py`` — the kernel selector; the experiments layer is
    outside the core scope altogether).  An env-dependent branch in the
    core silently forks trajectories between machines.

``D104`` order-sensitive iteration over sets
    Materializing a set into a sequence (``list(s)`` / ``tuple(s)``, a
    list comprehension over a set, a ``for`` over a set whose body
    appends/yields) puts hash-iteration order — which varies with
    ``PYTHONHASHSEED`` for str-keyed sets and with insertion history
    everywhere — into state.  Folding a set into another set, counting,
    or membership tests are order-insensitive and stay legal, as does
    ``sorted(s)``.  (Python dicts iterate in insertion order and are
    not flagged.)

``D105`` ad-hoc stream labels
    ``streams.get(f"mac.{i}")``-style composed labels and arithmetic on
    seeds.  Use :meth:`repro.util.rng.RngStreams.derive`, which owns the
    label composition in one audited place.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.base import Finding, Project, Source

__all__ = ["check_determinism", "CORE_PACKAGES", "ENV_SHIM_FILES"]

#: package-root-relative directories making up the deterministic core
CORE_PACKAGES = ("core", "graph", "protocols", "sim", "energy", "net")

#: package-root-relative files allowed to read the environment (the
#: kernel selector shim; everything under experiments/ is out of scope)
ENV_SHIM_FILES = ("core/kernels.py",)

#: normalized dotted callables that read the wall clock
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random attributes that are legal in the core (generator types
#: and explicitly seeded construction)
_NP_RANDOM_OK = {
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.default_rng",  # flagged separately when called seedless
}


class _ImportMap(ast.NodeVisitor):
    """Alias -> dotted module/attribute map for one module."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _normalize(dotted: str, aliases: Dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    if head == "np":
        head = "numpy"
    return f"{head}.{rest}" if rest else head


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` statically denotes a set value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set expression anywhere in ``scope`` (one level
    of inference: enough to catch ``s = set(...) ... list(s)``)."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.FunctionDef) and node is not scope:
            continue  # nested scopes run their own pass
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value, names) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def _body_materializes_order(body: List[ast.stmt]) -> bool:
    """Whether a loop body leaks iteration order into a sequence."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("append", "extend", "insert"):
                    return True
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, src: Source, env_shim: bool) -> None:
        self.src = src
        self.env_shim = env_shim
        self.findings: List[Finding] = []
        self.aliases: Dict[str, str] = {}
        self._set_names: Set[str] = set()

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not self.src.suppressed(rule, line):
            self.findings.append(Finding(rule, self.src.rel, line, message))

    # -- scope handling ------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        imports = _ImportMap()
        imports.visit(node)
        self.aliases = imports.aliases
        self._set_names = _local_set_names(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        outer = self._set_names
        self._set_names = outer | _local_set_names(node)
        self.generic_visit(node)
        self._set_names = outer

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- D101 / D102 / D103 / D105: calls ------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        name = _normalize(dotted, self.aliases) if dotted else None
        if name:
            self._check_call(node, name)
        # D104: list()/tuple() over a set expression
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0], self._set_names)
        ):
            self.emit(
                "D104",
                node,
                f"{node.func.id}() over a set materializes hash order; "
                "wrap in sorted()",
            )
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name in _WALL_CLOCK:
            self.emit(
                "D101",
                node,
                f"wall-clock read {name}() in the deterministic core",
            )
            return
        if name.startswith("random.") and name.count(".") == 1:
            attr = name.split(".")[1]
            if attr not in ("Random",):  # seeded instances are fine
                self.emit(
                    "D102",
                    node,
                    f"global-state randomness {name}(); draw from a "
                    "repro.util.rng stream instead",
                )
            return
        if name == "numpy.random.default_rng" and not (
            node.args or node.keywords
        ):
            self.emit(
                "D102",
                node,
                "numpy.random.default_rng() without a seed is "
                "entropy-seeded; pass a derived seed",
            )
            return
        if (
            name.startswith("numpy.random.")
            and name.count(".") == 2
            and name not in _NP_RANDOM_OK
        ):
            self.emit(
                "D102",
                node,
                f"legacy module-level {name}() uses hidden global state; "
                "draw from a repro.util.rng stream instead",
            )
            return
        if name == "os.getenv" and not self.env_shim:
            self.emit(
                "D103",
                node,
                "os.getenv() outside the sanctioned env shims",
            )
            return
        # D105: composed stream labels / seed arithmetic
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
        ):
            receiver = _dotted(node.func.value)
            if receiver and receiver.split(".")[-1] == "streams":
                arg = node.args[0]
                if isinstance(arg, (ast.JoinedStr, ast.BinOp)):
                    self.emit(
                        "D105",
                        node,
                        "composed stream label; use streams.derive(label, "
                        "*parts) so label composition stays audited",
                    )
        if name == "repro.util.rng.derive_seed" or name.endswith(
            ".derive_seed"
        ) or name == "derive_seed":
            for arg in node.args:
                if isinstance(arg, ast.BinOp) and not isinstance(
                    arg.op, (ast.Mod,)
                ):
                    self.emit(
                        "D105",
                        node,
                        "seed arithmetic fed to derive_seed(); compose a "
                        "label with RngStreams.derive instead",
                    )

    # -- D103: attribute reads -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.env_shim:
            dotted = _dotted(node)
            if dotted and _normalize(dotted, self.aliases) in (
                "os.environ",
                "os.environb",
            ):
                self.emit(
                    "D103",
                    node,
                    "os.environ read outside the sanctioned env shims",
                )
        self.generic_visit(node)

    # -- D104: loops and comprehensions --------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self._set_names):
            if _body_materializes_order(node.body):
                self.emit(
                    "D104",
                    node,
                    "for over a set feeds hash order into a sequence; "
                    "iterate sorted(...) instead",
                )
        self.generic_visit(node)

    def _comp(self, node: ast.AST, kind: str) -> None:
        for gen in getattr(node, "generators", []):
            if _is_set_expr(gen.iter, self._set_names):
                self.emit(
                    "D104",
                    node,
                    f"{kind} over a set materializes hash order; "
                    "iterate sorted(...) instead",
                )
                break

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._comp(node, "list comprehension")
        self.generic_visit(node)



def check_determinism(
    project: Project,
) -> List[Finding]:
    findings: List[Finding] = []
    roots = tuple(
        (project.package_root / pkg).resolve() for pkg in CORE_PACKAGES
    )
    shims = tuple(
        (project.package_root / shim).resolve() for shim in ENV_SHIM_FILES
    )
    for src in project.sources():
        if src.parse_error is not None:
            findings.append(
                Finding(
                    "E901",
                    src.rel,
                    src.parse_error.lineno or 0,
                    f"syntax error: {src.parse_error.msg}",
                )
            )
            continue
        if not any(root in src.path.parents for root in roots):
            continue
        visitor = _DeterminismVisitor(src, env_shim=src.path in shims)
        assert src.tree is not None
        visitor.visit(src.tree)
        findings.extend(visitor.findings)
    return findings
