"""Registry-consistency rules (R3xx): no orphaned registry names.

The experiment stack is organized around registries — activation
daemons, cost metrics, the four scenario-model axes, executor backends
and round engines.  A name that is registered but unreachable from the
CLI, undocumented, or untested is a trap: it can silently rot (nothing
exercises it) while still being selectable in a campaign grid.

The contract the checker consumes is the literal ``REGISTRY_AXES``
table in ``<package>/contracts.py`` (see :mod:`repro.contracts`), which
declares for every axis the defining module, the canonical names
symbol, the lookup entry point, and the registered names themselves.
``repro.contracts.verify_registry_contract()`` keeps the literal table
honest against the live registries at test time; these rules keep the
*ecosystem* honest against the table:

* ``R301`` — the declared registry module or names symbol does not
  exist (stale contract);
* ``R302`` — a registered name is never mentioned in the README or any
  file under ``docs/`` (case-insensitive): users cannot discover it;
* ``R303`` — a registered name never appears as a quoted literal in any
  test: nothing pins its behavior;
* ``R304`` — neither the axis's lookup entry point nor its names symbol
  is referenced by the experiments/CLI layer: the axis is not reachable
  from campaign validation at all.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.lint.base import Finding, Project

__all__ = ["check_registries"]

_REQUIRED_KEYS = ("module", "symbol", "lookup", "names")


def _symbol_defined(tree: ast.AST, symbol: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == symbol:
                    return True
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == symbol
            ):
                return True
    return False


def check_registries(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    contracts = project.source("contracts.py")
    if contracts is None or contracts.parse_error:
        return findings
    assert contracts.tree is not None

    axes = None
    line = 1
    for node in ast.walk(contracts.tree):
        if isinstance(node, ast.Assign):
            hit = any(
                isinstance(t, ast.Name) and t.id == "REGISTRY_AXES"
                for t in node.targets
            )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            hit = (
                isinstance(node.target, ast.Name)
                and node.target.id == "REGISTRY_AXES"
            )
        else:
            continue
        if hit:
            line = node.lineno
            try:
                axes = ast.literal_eval(node.value)
            except (ValueError, TypeError, SyntaxError):
                axes = None
            break
    if not isinstance(axes, dict):
        findings.append(
            Finding(
                "R301",
                contracts.rel,
                line,
                "REGISTRY_AXES literal dict not found in contracts.py",
            )
        )
        return findings

    docs = project.doc_text()
    tests = project.test_text()
    experiments_text = _experiments_text(project)

    for axis, decl in sorted(axes.items()):
        if not isinstance(decl, dict) or any(
            key not in decl for key in _REQUIRED_KEYS
        ):
            findings.append(
                Finding(
                    "R301",
                    contracts.rel,
                    line,
                    f"axis {axis!r} must declare "
                    f"{', '.join(_REQUIRED_KEYS)}",
                )
            )
            continue
        module_rel = str(decl["module"])
        symbol = str(decl["symbol"])
        lookup = str(decl["lookup"])
        names = decl["names"]
        module_src = project.source(module_rel)
        if module_src is None:
            findings.append(
                Finding(
                    "R301",
                    contracts.rel,
                    line,
                    f"axis {axis!r} declares module {module_rel!r} which "
                    "does not exist in the linted package",
                )
            )
        elif module_src.tree is not None and not _symbol_defined(
            module_src.tree, symbol
        ):
            findings.append(
                Finding(
                    "R301",
                    contracts.rel,
                    line,
                    f"axis {axis!r}: symbol {symbol!r} is not assigned in "
                    f"{module_rel}",
                )
            )
        for name in names if isinstance(names, (tuple, list)) else ():
            name = str(name)
            if name.lower() not in docs:
                findings.append(
                    Finding(
                        "R302",
                        contracts.rel,
                        line,
                        f"registered {axis} name {name!r} is not mentioned "
                        "in README.md or docs/ — users cannot discover it",
                    )
                )
            if f'"{name}"' not in tests and f"'{name}'" not in tests:
                findings.append(
                    Finding(
                        "R303",
                        contracts.rel,
                        line,
                        f"registered {axis} name {name!r} is not referenced "
                        "by any test — nothing pins its behavior",
                    )
                )
        # An axis is wired into campaign validation through either its
        # lookup entry point or its canonical names symbol (the daemon
        # axis validates against DAEMON_NAMES and defers construction
        # to the engine layer, for example).
        if lookup not in experiments_text and symbol not in experiments_text:
            findings.append(
                Finding(
                    "R304",
                    contracts.rel,
                    line,
                    f"axis {axis!r}: neither lookup {lookup!r} nor symbol "
                    f"{symbol!r} is referenced by the experiments/CLI layer "
                    "— the axis is not reachable from campaign validation",
                )
            )
    return findings


def _experiments_text(project: Project) -> str:
    """Concatenated source of the experiments/CLI layer of the package."""
    chunks: List[str] = []
    for src in project.sources():
        rel_pkg = src.path.relative_to(project.package_root).as_posix()
        if rel_pkg.startswith("experiments/"):
            chunks.append(src.text)
    return "\n".join(chunks)
