"""Contract-aware static analysis for the reproduction (``repro.lint``).

Four repo-specific rule families keep the guarantees of PRs 4-8 from
regressing as the codebase grows (see ``docs/static_analysis.md`` for
the full catalogue and suppression syntax):

* **determinism** (``D1xx``, :mod:`repro.lint.determinism`) — no
  wall-clock, unseeded randomness, env reads or hash-order leaks inside
  the deterministic core;
* **hash-participation** (``H2xx``, :mod:`repro.lint.hashes`) — every
  ``ScenarioConfig``/``SSSPSTConfig`` field accounted for in the cache
  hash contract;
* **registry consistency** (``R3xx``, :mod:`repro.lint.registries`) —
  every registered daemon/metric/model/backend/engine name documented,
  tested and CLI-reachable;
* **kernel parity** (``K4xx``, :mod:`repro.lint.kernel_parity`) — every
  ``@njit`` kernel mirrored by a same-signature numpy twin with a
  parity test.

Run it with ``python -m repro.lint src/repro`` (see
:mod:`repro.lint.cli`).  The linter is pure stdlib and never imports
the code it analyzes, so it works on fixture corpora and on trees whose
dependencies are not installed.
"""

from repro.lint.base import Baseline, Finding, Project
from repro.lint.cli import main, run_lint

__all__ = ["Baseline", "Finding", "Project", "main", "run_lint"]
