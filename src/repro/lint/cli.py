"""``python -m repro.lint`` — run the contract checkers over a tree.

Usage::

    python -m repro.lint src/repro                  # text report, exit 1 on findings
    python -m repro.lint src/repro --json           # JSON report on stdout
    python -m repro.lint src/repro --json-out lint-report.json
    python -m repro.lint src/repro --select D,H     # only those families
    python -m repro.lint src/repro --ignore D104    # drop one rule
    python -m repro.lint src/repro --write-baseline # snapshot current findings

The baseline file (``lint-baseline.json`` next to the repo's README by
default) suppresses known findings without hiding them: they are still
listed, marked ``[baselined]``, and do not affect the exit code.  CI
runs with the committed baseline, so only *new* findings fail the
build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.base import Baseline, Finding, Project, rule_enabled
from repro.lint.determinism import check_determinism
from repro.lint.hashes import check_hash_participation
from repro.lint.kernel_parity import check_kernel_parity
from repro.lint.registries import check_registries

__all__ = ["run_lint", "main"]

#: rule family -> checker, in report order
CHECKERS = (
    ("determinism", check_determinism),
    ("hash-participation", check_hash_participation),
    ("registry", check_registries),
    ("kernel-parity", check_kernel_parity),
)


def run_lint(
    package_root: str,
    repo_root: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """All findings for one tree, rule-filtered, sorted by location."""
    project = Project(
        Path(package_root),
        Path(repo_root) if repo_root else None,
    )
    findings: List[Finding] = []
    for _family, checker in CHECKERS:
        findings.extend(checker(project))
    findings = [
        f for f in findings if rule_enabled(f.rule, select, ignore)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def _split(spec: Optional[str]) -> Optional[List[str]]:
    if not spec:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def _report_json(
    new: Sequence[Finding], baselined: Sequence[Finding]
) -> Dict[str, object]:
    counts: Dict[str, int] = {}
    for finding in new:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "findings": [f.to_json() for f in new],
        "baselined": [f.to_json() for f in baselined],
        "counts": counts,
        "ok": not new,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Contract-aware static analysis: determinism, "
            "hash-participation, registry and kernel-parity checkers."
        ),
    )
    parser.add_argument(
        "package_root",
        help="package directory to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--repo-root",
        default=None,
        help="repo root holding README.md/docs/tests "
        "(default: walk up from the package root)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <repo-root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule prefixes to enable (e.g. D,H2)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule prefixes to disable (e.g. D104)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report on stdout instead of text",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the OK summary line"
    )
    args = parser.parse_args(argv)

    try:
        project = Project(
            Path(args.package_root),
            Path(args.repo_root) if args.repo_root else None,
        )
    except NotADirectoryError as exc:
        parser.error(f"not a directory: {exc}")

    findings = run_lint(
        args.package_root,
        repo_root=args.repo_root,
        select=_split(args.select),
        ignore=_split(args.ignore),
    )

    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else project.repo_root / "lint-baseline.json"
    )
    if args.write_baseline:
        Baseline.dump(baseline_path, findings)
        print(f"# wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined = _partition(findings, baseline)

    report = _report_json(new, baselined)
    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for finding in baselined:
            print(f"{finding.render()}  [baselined]")
        for finding in new:
            print(finding.render())
        if new:
            print(
                f"# {len(new)} finding(s) "
                f"({len(baselined)} baselined) — see docs/static_analysis.md"
            )
        elif not args.quiet:
            print(
                f"# OK: 0 findings ({len(baselined)} baselined) over "
                f"{len(project.sources())} files"
            )
    return 1 if new else 0


def _partition(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding]]:
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if baseline.covers(finding) else new).append(finding)
    return new, old


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
