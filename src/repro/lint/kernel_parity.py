"""Kernel-parity rules (K4xx): every JIT kernel needs a numpy twin.

The columnar engine's hot loops ship in two implementations
(``core/kernels.py``): optional ``@njit``-compiled scalar loops and the
pure-numpy reference the rest of the engine runs without numba.  The
whole point of the layer is the **bit-identity contract** between the
two — a kernel that exists only in its JIT form cannot be checked
against anything, and a kernel without a parity test is a contract
nobody enforces.

* ``K401`` — an ``@njit`` kernel registered in ``_compiled[...]`` has
  no same-signature numpy twin: a module-level ``numpy_<name>`` whose
  parameter list matches the JIT kernel's exactly, registered in the
  literal-keyed ``NUMPY_TWINS`` table (the table :func:`get` falls back
  to when numba is absent).
* ``K402`` — a kernel name never appears as a quoted literal in any
  test: no parity test pins the twins to each other.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.base import Finding, Project

__all__ = ["check_kernel_parity"]


def _function_args(node: ast.FunctionDef) -> List[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _collect(tree: ast.AST) -> Dict[str, Optional[ast.FunctionDef]]:
    """``kernel name -> its (possibly nested) def`` from ``_compiled[...] =``
    assignments anywhere in the module."""
    kernels: Dict[str, Optional[ast.FunctionDef]] = {}
    defs: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            defs.setdefault(node.name, node)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "_compiled"
            ):
                try:
                    key = ast.literal_eval(target.slice)
                except (ValueError, TypeError, SyntaxError):
                    continue
                if isinstance(key, str):
                    kernels[key] = None
    for name in kernels:
        kernels[name] = defs.get(name)
    return kernels


def _twin_table(tree: ast.AST) -> Optional[Dict[str, str]]:
    """``NUMPY_TWINS`` as ``kernel name -> twin function name`` (values
    are Name references, so this is not a plain literal)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            hit = any(
                isinstance(t, ast.Name) and t.id == "NUMPY_TWINS"
                for t in node.targets
            )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            hit = (
                isinstance(node.target, ast.Name)
                and node.target.id == "NUMPY_TWINS"
            )
        else:
            continue
        if hit:
            if not isinstance(node.value, ast.Dict):
                return None
            table: Dict[str, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Name)
                ):
                    table[key.value] = value.id
            return table
    return None


def check_kernel_parity(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    src = project.source("core/kernels.py")
    if src is None or src.parse_error:
        return findings
    assert src.tree is not None

    kernels = _collect(src.tree)
    if not kernels:
        return findings
    twins = _twin_table(src.tree) or {}
    module_defs = {
        node.name: node
        for node in src.tree.body  # type: ignore[attr-defined]
        if isinstance(node, ast.FunctionDef)
    }
    tests = project.test_text()

    for name, jit_def in sorted(kernels.items()):
        twin_name = twins.get(name)
        twin_def = module_defs.get(twin_name) if twin_name else None
        expected = f"numpy_{name}"
        if twin_name is None:
            findings.append(
                Finding(
                    "K401",
                    src.rel,
                    jit_def.lineno if jit_def else 1,
                    f"@njit kernel {name!r} has no NUMPY_TWINS entry: the "
                    f"bit-identity contract needs a module-level "
                    f"{expected}() twin",
                )
            )
        elif twin_def is None:
            findings.append(
                Finding(
                    "K401",
                    src.rel,
                    jit_def.lineno if jit_def else 1,
                    f"NUMPY_TWINS[{name!r}] = {twin_name} but no such "
                    "module-level function exists",
                )
            )
        elif jit_def is not None:
            jit_args = _function_args(jit_def)
            twin_args = _function_args(twin_def)
            if jit_args != twin_args:
                findings.append(
                    Finding(
                        "K401",
                        src.rel,
                        twin_def.lineno,
                        f"numpy twin {twin_def.name}({', '.join(twin_args)}) "
                        f"does not match the @njit signature "
                        f"{name}({', '.join(jit_args)})",
                    )
                )
        if f'"{name}"' not in tests and f"'{name}'" not in tests:
            findings.append(
                Finding(
                    "K402",
                    src.rel,
                    jit_def.lineno if jit_def else 1,
                    f"kernel {name!r} is not referenced by any test: no "
                    "parity test pins the numpy/numba twins to each other",
                )
            )
    return findings
