"""Evaluation metrics (paper section 6).

:class:`MetricsHub` is the single sink for simulation observations; at the
end of a run :meth:`MetricsHub.summary` produces the quantities every
figure of the paper reports:

* **Packet delivery ratio** — delivered data packets over packets that
  *should* have been received (originated x receivers);
* **Energy consumed per packet delivered** — total network joules (all
  nodes, all buckets) over delivered data packets, in millijoules;
* **Average delay** — mean end-to-end delivery latency, in milliseconds;
* **Control byte overhead** — control bytes transmitted per data byte
  delivered;
* **Unavailability ratio** — fraction of sampled service probes in which a
  receiver had no live multicast service (no delivery within a recency
  window), averaged over receivers.
"""

from repro.metrics.hub import MetricsHub, RunSummary

__all__ = ["MetricsHub", "RunSummary"]
