"""Central metrics collection for DES runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.groups.metrics import jain_index
from repro.net.packet import Packet, PacketKind
from repro.util.ids import NodeId
from repro.util.units import joules_to_mj


@dataclass
class RunSummary:
    """Final quantities of one simulation run (paper's reporting units)."""

    pdr: float
    energy_per_packet_mj: float
    avg_delay_ms: float
    control_overhead: float  # control bytes tx / data bytes delivered
    unavailability: float
    data_originated: int
    data_delivered: int
    total_energy_j: float
    control_bytes_tx: int
    data_bytes_tx: int
    duplicates_suppressed: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class MetricsHub:
    """Accumulates events during a run; computes a :class:`RunSummary`.

    Wire-up: the experiment runner installs the hub on the network
    (``network.hub``); the medium reports every frame put on the air, and
    protocol agents report originations and deliveries.
    """

    def __init__(self, n_receivers: int, availability_window: float = 2.0) -> None:
        if n_receivers < 0:
            raise ValueError("n_receivers must be non-negative")
        self.n_receivers = n_receivers
        self.availability_window = availability_window
        self.data_originated = 0
        self.control_bytes_tx = 0
        self.data_bytes_tx = 0
        self.duplicates_suppressed = 0
        # Delivery identity and recency are group-scoped: the same node
        # receiving the same (origin, seq) through two sessions is two
        # distinct deliveries.  Single-group runs only ever use group 0,
        # so every aggregate below reduces to the historical quantity.
        self._deliveries: Dict[Tuple[int, NodeId, int, int], float] = {}
        self._delays: list = []
        self._last_delivery_at: Dict[Tuple[int, NodeId], float] = {}
        self._probes = 0
        self._probe_misses = 0
        self._group_receiver_counts: Dict[int, int] = {0: n_receivers}
        self._originated_by_group: Dict[int, int] = {}
        self._delivered_by_group: Dict[int, int] = {}

    def set_group_receiver_counts(self, counts: Dict[int, int]) -> None:
        """Declare per-group receiver counts (multi-group runs).

        Drives per-group expected-delivery denominators; group 0 defaults
        to the constructor's ``n_receivers``.
        """
        self._group_receiver_counts = dict(counts)

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------
    def on_frame_sent(self, packet: Packet) -> None:
        """Called by the medium for every transmitted frame."""
        if packet.kind is PacketKind.DATA:
            self.data_bytes_tx += packet.size_bytes
        else:
            self.control_bytes_tx += packet.size_bytes

    def on_data_originated(self, packet: Packet) -> None:
        """Called by the source agent when a new data packet enters."""
        self.data_originated += 1
        g = packet.group
        self._originated_by_group[g] = self._originated_by_group.get(g, 0) + 1

    def on_data_delivered(self, receiver: NodeId, packet: Packet, now: float) -> bool:
        """Called by a member agent on accepting a data packet.

        Returns True for a first delivery, False for a duplicate (which is
        counted but not re-credited).
        """
        key = (packet.group, receiver, packet.origin, packet.seq)
        if key in self._deliveries:
            self.duplicates_suppressed += 1
            return False
        self._deliveries[key] = now
        self._delays.append(now - packet.created_at)
        self._last_delivery_at[(packet.group, receiver)] = now
        g = packet.group
        self._delivered_by_group[g] = self._delivered_by_group.get(g, 0) + 1
        return True

    def probe_availability(self, receivers, now: float, group: int = 0) -> None:
        """Periodic service probe: a receiver is 'covered' if it saw a
        delivery for ``group`` within the availability window."""
        for r in receivers:
            self._probes += 1
            last = self._last_delivery_at.get((group, r))
            if last is None or now - last > self.availability_window:
                self._probe_misses += 1

    # ------------------------------------------------------------------
    @property
    def data_delivered(self) -> int:
        return len(self._deliveries)

    def _expected_deliveries(self) -> int:
        """Sum over groups of originations times that group's audience."""
        if not self._originated_by_group:
            return self.data_originated * self.n_receivers
        return sum(
            count * self._group_receiver_counts.get(g, self.n_receivers)
            for g, count in self._originated_by_group.items()
        )

    def group_pdrs(self) -> Dict[int, float]:
        """Per-group packet delivery ratio (0.0 when nothing was sent)."""
        out: Dict[int, float] = {}
        for g in sorted(self._group_receiver_counts):
            expected = self._originated_by_group.get(g, 0) * (
                self._group_receiver_counts.get(g, self.n_receivers)
            )
            delivered = self._delivered_by_group.get(g, 0)
            out[g] = delivered / expected if expected else 0.0
        return out

    def fairness_jain(self) -> float:
        """Jain index over per-group PDRs (1.0 for a single group)."""
        return jain_index(self.group_pdrs().values())

    def group_pdr_min(self) -> float:
        """The worst-served group's PDR."""
        pdrs = self.group_pdrs()
        return min(pdrs.values()) if pdrs else 0.0

    def summary(self, total_energy_j: float) -> RunSummary:
        """Finalize, given the network-wide energy total."""
        expected = self._expected_deliveries()
        delivered = self.data_delivered
        pdr = delivered / expected if expected else 0.0
        epp = joules_to_mj(total_energy_j) / delivered if delivered else float("inf")
        delay_ms = (sum(self._delays) / len(self._delays)) * 1e3 if self._delays else float("inf")
        data_bytes_delivered = sum(1 for _ in self._deliveries)  # count only
        # Control overhead normalizes by delivered data bytes; use the
        # delivered count times the nominal packet size embedded in delays'
        # companion structure is unavailable here, so track via tx sizes:
        overhead = (
            self.control_bytes_tx / self._delivered_bytes()
            if self._delivered_bytes()
            else float("inf")
        )
        unavailability = self._probe_misses / self._probes if self._probes else 0.0
        return RunSummary(
            pdr=pdr,
            energy_per_packet_mj=epp,
            avg_delay_ms=delay_ms,
            control_overhead=overhead,
            unavailability=unavailability,
            data_originated=self.data_originated,
            data_delivered=delivered,
            total_energy_j=total_energy_j,
            control_bytes_tx=self.control_bytes_tx,
            data_bytes_tx=self.data_bytes_tx,
            duplicates_suppressed=self.duplicates_suppressed,
        )

    def _delivered_bytes(self) -> float:
        # Deliveries share the CBR packet size; recover it from origination
        # accounting (bytes per data frame are uniform in our scenarios).
        if not self._deliveries:
            return 0.0
        return float(len(self._deliveries)) * self._packet_size_hint

    _packet_size_hint: int = 512

    def set_packet_size_hint(self, size_bytes: int) -> None:
        """Nominal data packet size used to convert delivered packets to
        bytes for the control-overhead ratio (Figure 13)."""
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        self._packet_size_hint = size_bytes
