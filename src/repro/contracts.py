"""Machine-readable registry contract (consumed by :mod:`repro.lint`).

``REGISTRY_AXES`` declares, as one **pure literal**, every registry
axis the experiment layer exposes: where the registry lives, the
canonical names symbol, the lookup entry point the CLI/validation layer
goes through, and the registered names themselves.  The linter's R3xx
rules read the literal statically (so they run on fixture trees and on
machines without the runtime dependencies installed) and check that
every name is documented, tested, and CLI-reachable.

The literal is kept honest against the live registries by
:func:`verify_registry_contract`, which ``tests/test_lint.py`` runs on
every CI leg: registering a new daemon/model/backend without updating
this table (or vice versa) fails the build with a field-level diff.

To add a registry name: register it in its module, add it to the tuple
here, document it in the README taxonomy (or ``docs/``), and reference
it from at least one test — the linter walks you through whichever of
those you forget (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: axis -> {module (package-relative path), symbol (canonical names
#: tuple), lookup (CLI/validation entry point), names (registered)}
REGISTRY_AXES: Dict[str, Dict[str, object]] = {
    "daemon": {
        "module": "core/daemons.py",
        "symbol": "DAEMON_NAMES",
        "lookup": "daemon_by_name",
        "names": (
            "synchronous",
            "central",
            "randomized",
            "distributed",
            "adversarial-max-cost",
            "weakly-fair",
        ),
    },
    "metric": {
        "module": "core/metrics.py",
        "symbol": "METRIC_NAMES",
        "lookup": "metric_by_name",
        "names": ("hop", "tx", "farthest", "energy"),
    },
    "placement": {
        "module": "experiments/scenario_models.py",
        "symbol": "MODEL_NAMES",
        "lookup": "model_by_name",
        "names": ("uniform", "grid", "gaussian-clusters", "edge-weighted"),
    },
    "mobility": {
        "module": "experiments/scenario_models.py",
        "symbol": "MODEL_NAMES",
        "lookup": "model_by_name",
        "names": (
            "waypoint",
            "gauss-markov",
            "random-walk",
            "static",
            "platoon",
            "trace",
        ),
    },
    "membership": {
        "module": "experiments/scenario_models.py",
        "symbol": "MODEL_NAMES",
        "lookup": "model_by_name",
        "names": ("static-random", "geographic-cluster", "rotating"),
    },
    "traffic": {
        "module": "experiments/scenario_models.py",
        "symbol": "MODEL_NAMES",
        "lookup": "model_by_name",
        "names": ("cbr", "on-off", "multi-source"),
    },
    "backend": {
        "module": "experiments/backends.py",
        "symbol": "BACKEND_NAMES",
        "lookup": "backend_by_name",
        "names": ("des", "rounds"),
    },
    "group-size": {
        "module": "groups/models.py",
        "symbol": "GROUP_MODEL_NAMES",
        "lookup": "group_model_by_name",
        "names": ("fixed", "linear-ramp"),
    },
    "group-overlap": {
        "module": "groups/models.py",
        "symbol": "GROUP_MODEL_NAMES",
        "lookup": "group_model_by_name",
        "names": ("independent", "disjoint", "shared-core"),
    },
    "engine": {
        "module": "core/convergence.py",
        "symbol": "ENGINE_NAMES",
        "lookup": "engine_for",
        "names": ("object", "array"),
    },
}


def registered_names(axis: str) -> Tuple[str, ...]:
    """The contract's registered names for one axis."""
    try:
        decl = REGISTRY_AXES[axis]
    except KeyError:
        raise ValueError(
            f"unknown registry axis {axis!r}; choose from "
            f"{sorted(REGISTRY_AXES)}"
        ) from None
    return tuple(decl["names"])  # type: ignore[arg-type]


def _live_names() -> Dict[str, Tuple[str, ...]]:
    """The live registries' name tuples, axis by axis (imports lazily:
    the contract literal itself must stay importable anywhere)."""
    from repro.core.convergence import ENGINE_NAMES
    from repro.core.daemons import DAEMON_NAMES
    from repro.core.metrics import METRIC_NAMES
    from repro.experiments.backends import BACKEND_NAMES
    from repro.experiments.scenario_models import MODEL_NAMES
    from repro.groups.models import GROUP_MODEL_NAMES

    live: Dict[str, Tuple[str, ...]] = {
        "daemon": tuple(DAEMON_NAMES),
        "metric": tuple(METRIC_NAMES),
        "backend": tuple(BACKEND_NAMES),
        "engine": tuple(ENGINE_NAMES),
    }
    for axis, names in MODEL_NAMES.items():
        live[axis] = tuple(names)
    for axis, names in GROUP_MODEL_NAMES.items():
        live[axis] = tuple(names)
    return live


def verify_registry_contract() -> None:
    """Raise ``ValueError`` when the literal contract drifts from the
    live registries (either direction), with a field-level diff."""
    live = _live_names()
    problems = []
    for axis in sorted(set(REGISTRY_AXES) | set(live)):
        declared = set(registered_names(axis)) if axis in REGISTRY_AXES else set()
        actual = set(live.get(axis, ()))
        if not declared and actual:
            problems.append(f"axis {axis!r} is live but not in REGISTRY_AXES")
            continue
        if declared and axis not in live:
            problems.append(f"axis {axis!r} is declared but has no live registry")
            continue
        missing = sorted(actual - declared)
        stale = sorted(declared - actual)
        if missing:
            problems.append(f"{axis}: registered but undeclared: {missing}")
        if stale:
            problems.append(f"{axis}: declared but unregistered: {stale}")
    if problems:
        raise ValueError(
            "registry contract drift (update repro/contracts.py):\n  "
            + "\n  ".join(problems)
        )
