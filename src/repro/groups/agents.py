"""Per-node dispatch across k concurrent SS-SPST instances.

The DES realization of multi-group multicast: every node runs one
:class:`~repro.protocols.ss_spst.SSSPSTAgent` *per group*, all sharing
the node's single MAC and the one :class:`~repro.net.medium.WirelessMedium`
— beacons and data frames from different groups genuinely contend and
collide.  The :class:`GroupDispatchAgent` is thin glue: it owns the k
sub-agents and routes each received frame to the instance whose
``group_id`` matches the frame's tag (other groups' frames are overheard
garbage to that instance, exactly like a foreign protocol's frames are
to a single agent).

Group 0's sub-agent is constructed and started first and draws from the
historical ``"beacon.<id>"`` substream, so a one-group dispatch is
draw-for-draw identical to a bare agent (the runner still skips the
dispatcher entirely at ``group_count == 1``; this invariant is belt and
braces for tests that compare the two paths).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.daemons import require_des_daemon
from repro.core.metrics import metric_by_name
from repro.net.node import Node, ProtocolAgent
from repro.net.packet import Packet
from repro.protocols.registry import _SS_FAMILY
from repro.protocols.ss_spst import SSSPSTAgent, SSSPSTConfig


class GroupDispatchAgent(ProtocolAgent):
    """One node's k per-group SS-SPST instances behind one agent slot."""

    def __init__(self, node: Node, subagents: Dict[int, SSSPSTAgent]) -> None:
        super().__init__(node)
        if sorted(subagents) != list(range(len(subagents))):
            raise ValueError("subagents must cover group ids 0..k-1")
        self.subagents = {gid: subagents[gid] for gid in sorted(subagents)}

    def agent_for(self, gid: int) -> SSSPSTAgent:
        """The sub-agent serving group ``gid``."""
        return self.subagents[gid]

    @property
    def parent_changes(self) -> int:
        """Route-stability accounting summed across all groups."""
        return sum(a.parent_changes for a in self.subagents.values())

    # ------------------------------------------------------------------
    def start(self) -> None:
        for gid in sorted(self.subagents):  # group 0 first: stream order
            self.subagents[gid].start()

    def stop(self) -> None:
        for agent in self.subagents.values():
            agent.stop()

    def on_node_death(self) -> None:
        for agent in self.subagents.values():
            agent.on_node_death()

    def on_membership_change(self) -> None:
        for agent in self.subagents.values():
            agent.on_membership_change()

    def handle_packet(self, packet: Packet) -> bool:
        agent = self.subagents.get(packet.group)
        if agent is None:
            return False  # unknown session: overheard garbage
        return agent.handle_packet(packet)

    def originate_data(self, size_bytes: Optional[int] = None, group: int = 0):
        """Inject one data packet into group ``group`` (its source only)."""
        return self.subagents[group].originate_data(size_bytes)


def make_group_dispatch_factory(
    protocol: str,
    group_ids: List[int],
    *,
    beacon_interval: float = 2.0,
    daemon: str = "distributed",
    ss_config: Optional[SSSPSTConfig] = None,
) -> Callable[[Node], GroupDispatchAgent]:
    """A ``factory(node)`` building the per-group agent bundle.

    Mirrors :func:`repro.protocols.registry.make_agent_factory`'s SS-SPST
    branch knob-for-knob (undamped SS-SPST-F, activation = daemon) so a
    multi-group run differs from k single-group runs only by contention.
    """
    protocol = protocol.lower()
    require_des_daemon(daemon)
    metric_name = _SS_FAMILY.get(protocol)
    if metric_name is None:
        raise ValueError(
            f"protocol {protocol!r} has no multi-group realization; "
            f"choose from {tuple(_SS_FAMILY)}"
        )
    if ss_config is not None:
        config = ss_config
    else:
        undamped = metric_name == "farthest"
        config = SSSPSTConfig(
            beacon_interval=beacon_interval,
            switch_threshold=0.0 if undamped else 0.10,
            hold_down_intervals=0.0 if undamped else 3.0,
            activation=daemon,
        )

    def factory(node: Node) -> GroupDispatchAgent:
        subagents = {}
        for gid in group_ids:
            metric = metric_by_name(metric_name, node.network.radio)
            subagents[gid] = SSSPSTAgent(node, metric, config, group_id=gid)
        return GroupDispatchAgent(node, subagents)

    return factory
