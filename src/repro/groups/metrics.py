"""Cross-group metrics: fairness, link stress and tree overlap.

These are the quantities the multi-group workload family is about —
how k concurrent trees share one network:

* **Jain fairness** over per-group goodput, ``(sum x)^2 / (k sum x^2)``
  in [1/k, 1], 1 when every group is served equally.  The DES computes
  it over per-group PDR (goodput normalized by offered load, so a small
  group and a large group at equal service fairness score equally); the
  rounds backend over per-group tree cost (resource-footprint fairness).
* **Link stress**: per-edge usage counts accumulated across the k group
  trees — the mean counts shared infrastructure, the max finds the
  hottest link.
* **Tree overlap**: ``1 - |union of edges| / (sum of per-tree edges)``,
  0 when the trees are edge-disjoint, approaching ``1 - 1/k`` when all
  k trees coincide.

Both backends feed :func:`multicast_tree_edges` with parent maps (from
settled round-model states or the final DES agent states) and the
group's receivers; the edge walk itself is backend-agnostic.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

Edge = Tuple[int, int]


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index over per-group allocations.

    ``(sum x)^2 / (k * sum x^2)``; 1.0 for an empty or all-zero
    allocation (nobody is favored), nan if any value is nan.
    """
    xs = [float(v) for v in values]
    if any(x != x for x in xs):
        return float("nan")
    if not xs:
        return 1.0
    sq = sum(x * x for x in xs)
    if sq <= 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * sq)


def multicast_tree_edges(
    parents: Mapping[int, Optional[int]],
    source: int,
    members: Iterable[int],
) -> FrozenSet[Edge]:
    """Edges of the member-covering multicast subtree.

    The union of each member's parent chain toward the source — exactly
    the links data traverses under per-group power-controlled
    forwarding.  Disconnected members contribute whatever chain prefix
    exists (a partial tree under partition); a cycle in the parent map
    (a transient, non-stabilized state) is cut by the step guard rather
    than looping forever.
    """
    edges = set()
    guard = len(parents) + 1
    for m in members:
        v = int(m)
        for _ in range(guard):
            if v == source:
                break
            p = parents.get(v)
            if p is None:
                break
            edge = (v, int(p))
            if edge in edges:
                break  # chain already walked (or a cycle revisit)
            edges.add(edge)
            v = int(p)
    return frozenset(edges)


def link_stress_stats(
    edge_sets: Sequence[FrozenSet[Edge]],
) -> Tuple[float, float, float]:
    """``(mean stress, max stress, overlap ratio)`` across group trees.

    Stress of an edge is how many group trees use it; the mean is over
    the *union* of used edges.  Overlap is ``1 - union / total`` (0 for
    a single tree or edge-disjoint trees).  All-empty trees — e.g. a
    fully partitioned snapshot — yield nan stress and 0 overlap.
    """
    counts: Counter = Counter()
    for edges in edge_sets:
        counts.update(edges)
    total = sum(counts.values())
    if not counts:
        return float("nan"), float("nan"), 0.0
    mean = total / len(counts)
    peak = float(max(counts.values()))
    overlap = 1.0 - len(counts) / total
    return mean, peak, overlap


def group_tree_stats(
    parent_maps: Mapping[int, Mapping[int, Optional[int]]],
    sources: Mapping[int, int],
    receivers: Mapping[int, Iterable[int]],
) -> Dict[str, float]:
    """Link-stress/overlap summary over per-group parent maps.

    ``parent_maps[gid]`` is node -> parent for group ``gid``'s tree;
    returns the three diagnostics both backends persist.
    """
    edge_sets = [
        multicast_tree_edges(parent_maps[gid], sources[gid], receivers[gid])
        for gid in sorted(parent_maps)
    ]
    mean, peak, overlap = link_stress_stats(edge_sets)
    return {
        "link_stress_mean": mean,
        "link_stress_max": peak,
        "tree_overlap_ratio": overlap,
    }
