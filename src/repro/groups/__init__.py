"""Multi-group multicast: k concurrent SS-SPST trees on one network.

The paper evaluates exactly one multicast group at a time; this package
makes the group a first-class *plural*.  A :class:`~repro.groups.models.GroupSet`
realizes ``group_count`` groups over one scenario (registry-backed size
and overlap generators, hash-neutral at the paper's single group), both
backends stabilize one tree per group over the same topology, and
:mod:`repro.groups.metrics` defines the cross-group quantities —
per-group PDR, Jain fairness, link stress and tree overlap — campaigns
sweep through the ``group_count`` axis.  See ``docs/groups.md``.
"""

from repro.groups.models import (
    DEFAULT_GROUP_MODELS,
    GROUP_MODEL_NAMES,
    GroupSet,
    GroupSpec,
    build_groups,
    group_model_by_name,
    validate_group_models,
)
from repro.groups.metrics import (
    jain_index,
    link_stress_stats,
    multicast_tree_edges,
)

__all__ = [
    "DEFAULT_GROUP_MODELS",
    "GROUP_MODEL_NAMES",
    "GroupSet",
    "GroupSpec",
    "build_groups",
    "group_model_by_name",
    "jain_index",
    "link_stress_stats",
    "multicast_tree_edges",
    "validate_group_models",
]
