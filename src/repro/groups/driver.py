"""Multi-group round-engine driver: k trees over one t = 0 topology.

The rounds backend's counterpart of the DES dispatch agents: one
:func:`~repro.core.convergence.engine_for` engine per group, every group
rooted at its own source over the *same* node placement (one
``build_scenario_space`` call — the snapshot both backends share), each
engine drawing its daemon schedule from its own substream (group 0 keeps
the historical ``"daemon"`` stream; group g > 0 derives ``"daemon.g"``),
so per-group trajectories are bit-deterministic per seed and independent
of k for group 0.

Aggregation: ``rounds`` is the max over groups (stabilization ends when
the slowest tree settles — groups run independently in the round model,
which has no medium to contend for), the work counters are sums,
``converged``/``connected`` are ANDs.  The cross-group diagnostics are
the same quantities the DES computes — Jain fairness (over per-group
tree cost: the rounds backend has no goodput) and link-stress/overlap of
the settled trees.  Single-fault recovery is a per-tree notion and stays
``nan`` for k > 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.groups.metrics import group_tree_stats, jain_index


def run_multigroup_rounds(config):
    """Stabilize one tree per group; return a ``RoundRunResult``."""
    from repro.core.convergence import engine_for
    from repro.core.metrics import metric_by_name
    from repro.core.rounds import fresh_states, total_cost
    from repro.energy.radio import FirstOrderRadioModel
    from repro.experiments.backends import (
        SS_PROTOCOL_METRICS,
        RoundRunResult,
        RoundSummary,
    )
    from repro.experiments.scenario_models import build_scenario_space
    from repro.graph.sparse import SparseTopology
    from repro.graph.topology import Topology
    from repro.util.rng import RngStreams

    space = build_scenario_space(config)
    positions = space.mobility.positions(0.0).copy()
    radio = FirstOrderRadioModel(
        e_elec=config.e_elec,
        e_rx=config.e_rx,
        eps_amp=config.eps_amp,
        alpha=config.alpha,
        max_range=config.max_range,
        d_floor=10.0,  # runner parity
    )
    metric_name = SS_PROTOCOL_METRICS[config.protocol]
    topo_cls = SparseTopology if config.topology == "sparse" else Topology
    streams = RngStreams(config.seed)
    daemon_kwargs = (
        {"k": config.daemon_k} if config.daemon == "distributed" else {}
    )

    rounds = 0
    evaluations = moves = chain_steps = 0
    converged = True
    connected = True
    costs: List[float] = []
    parent_maps: Dict[int, Dict[int, Optional[int]]] = {}
    sources: Dict[int, int] = {}
    receivers: Dict[int, tuple] = {}
    for group in space.groups:
        topo = topo_cls.from_positions(
            positions,
            config.max_range,
            source=group.source,
            members=group.receivers,
        )
        metric = metric_by_name(metric_name, radio)
        rng = (
            streams.get("daemon")
            if group.gid == 0
            else streams.derive("daemon", group.gid)
        )
        engine = engine_for(
            topo, metric, config.daemon, engine=config.engine,
            rng=rng, **daemon_kwargs,
        )
        settled = engine.run(fresh_states(topo, metric))
        rounds = max(rounds, settled.rounds)
        evaluations += settled.evaluations
        moves += settled.moves
        chain_steps += settled.chain_steps
        converged = converged and settled.converged
        connected = connected and topo.is_connected()
        costs.append(total_cost(settled.states, metric.infinity(topo)))
        parent_maps[group.gid] = {
            i: st.parent for i, st in enumerate(settled.states)
        }
        sources[group.gid] = group.source
        receivers[group.gid] = group.receivers

    nan = float("nan")
    stats = group_tree_stats(parent_maps, sources, receivers)
    summary = RoundSummary(
        rounds=rounds,
        evaluations=evaluations,
        moves=moves,
        chain_steps=chain_steps,
        converged=int(converged),
        connected=int(connected),
        total_cost=sum(costs),
        recovery_rounds=nan,
        recovery_evaluations=nan,
        recovery_moves=nan,
        recovery_chain_steps=nan,
        fairness_jain=jain_index(costs),
        link_stress_mean=stats["link_stress_mean"],
        link_stress_max=stats["link_stress_max"],
        tree_overlap_ratio=stats["tree_overlap_ratio"],
    )
    return RoundRunResult(summary=summary, config=config)
