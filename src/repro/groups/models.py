"""Group-set models: how k concurrent multicast groups are generated.

Two registry-backed axes extend the PR-5 scenario-model family onto the
group dimension of :class:`~repro.experiments.config.ScenarioConfig`:

``group-size`` (config field ``group_size_model``)
    How the sizes of groups 1..k-1 derive from the configured
    ``group_size`` — ``"fixed"`` (default: every group has the same
    size) or ``"linear-ramp"`` (sizes shrink linearly down to
    ``ramp_min_frac * group_size``).

``group-overlap`` (config field ``overlap_model``)
    How groups 1..k-1 pick their members — ``"independent"`` (default:
    each group samples uniformly, overlap happens naturally),
    ``"disjoint"`` (no node serves two groups) or ``"shared-core"``
    (a ``core_frac`` fraction of every extra group is drawn from group
    0's receivers, modelling a popular common audience).

Determinism and the single-group bit-identity contract
------------------------------------------------------

Group 0 is **always** the historical group: source plus receivers from
the config's membership model, drawn from the historical ``"group"``
substream by :func:`~repro.experiments.scenario_models.build_scenario_space`
before this module is consulted.  Extra groups draw exclusively from the
per-group ``derive("groups", gid)`` substreams, so a ``group_count=1``
config makes *zero* additional RNG draws — its trajectories, summaries
and cache hashes are bit-identical to the code before groups existed
(the golden fixture in ``tests/test_groups.py`` pins this).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # experiments imports this module; keep it leaf-light
    from repro.experiments.config import ScenarioConfig
    from repro.util.rng import RngStreams

#: protocols with a per-group DES realization (the SS-SPST family runs
#: one agent per group per node; the on-demand baselines do not).  A
#: literal rather than an import: backends -> scenario_models -> here.
_MULTIGROUP_PROTOCOLS = ("ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e")


@dataclass(frozen=True)
class GroupSpec:
    """One multicast group: its id, source and receiver set."""

    gid: int
    source: int
    receivers: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "receivers", tuple(int(r) for r in self.receivers))
        if self.source in self.receivers:
            raise ValueError("receivers must exclude the source")

    @property
    def members(self) -> Tuple[int, ...]:
        """Source plus receivers."""
        return (self.source, *self.receivers)

    @property
    def size(self) -> int:
        return 1 + len(self.receivers)


@dataclass(frozen=True)
class GroupSet:
    """The realized group structure of one scenario (k >= 1 groups)."""

    groups: Tuple[GroupSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ValueError("a GroupSet needs at least one group")
        if [g.gid for g in self.groups] != list(range(len(self.groups))):
            raise ValueError("group ids must be 0..k-1 in order")

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    def __getitem__(self, gid: int) -> GroupSpec:
        return self.groups[gid]


# ----------------------------------------------------------------------
# Model base
# ----------------------------------------------------------------------
class GroupModel(abc.ABC):
    """One choice on one group axis (mirrors ``ScenarioModel``)."""

    #: which axis this model belongs to ("group-size" / "group-overlap")
    axis: str = "?"
    #: registry/config name
    name: str = "?"
    #: accepted ``model_params`` keys -> default values
    params: Dict[str, object] = {}

    def validate(self, config: "ScenarioConfig", backend: str) -> None:
        """Raise ``ValueError`` when ``config`` cannot realize this model."""

    def param(self, config: "ScenarioConfig", key: str):
        """A model parameter from the config, or this model's default."""
        return dict(config.model_params).get(key, self.params[key])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.axis} model {self.name!r}>"


# ----------------------------------------------------------------------
# group-size axis: sizes of groups 1..k-1
# ----------------------------------------------------------------------
class GroupSizeModel(GroupModel):
    axis = "group-size"

    @abc.abstractmethod
    def sizes(self, config: "ScenarioConfig") -> List[int]:
        """Member count (source included) of each group, length
        ``group_count``; index 0 is always the historical
        ``config.group_size``."""


class FixedGroupSize(GroupSizeModel):
    """Every group has the configured ``group_size``."""

    name = "fixed"

    def sizes(self, config):
        return [config.group_size] * config.group_count


class LinearRampGroupSize(GroupSizeModel):
    """Sizes shrink linearly from ``group_size`` (group 0) down to
    ``ramp_min_frac * group_size`` (the last group), floor 2."""

    name = "linear-ramp"
    params = {"ramp_min_frac": 0.5}

    def validate(self, config, backend):
        frac = float(self.param(config, "ramp_min_frac"))
        if not (0.0 < frac <= 1.0):
            raise ValueError("linear-ramp needs 0 < ramp_min_frac <= 1")

    def sizes(self, config):
        k = config.group_count
        top = config.group_size
        bottom = max(2, int(round(float(self.param(config, "ramp_min_frac")) * top)))
        if k == 1:
            return [top]
        return [
            max(2, int(round(top + (bottom - top) * g / (k - 1))))
            for g in range(k)
        ]


# ----------------------------------------------------------------------
# group-overlap axis: membership of groups 1..k-1
# ----------------------------------------------------------------------
class GroupOverlapModel(GroupModel):
    axis = "group-overlap"

    @abc.abstractmethod
    def extra_groups(
        self,
        config: "ScenarioConfig",
        sizes: List[int],
        group0: GroupSpec,
        streams: "RngStreams",
    ) -> List[GroupSpec]:
        """Build groups 1..k-1.  Draws only from the per-group
        ``derive("groups", gid)`` substreams (the bit-identity contract:
        ``group_count=1`` never reaches this method)."""


def _draw_group(gid: int, pool: List[int], size: int, rng) -> GroupSpec:
    """Sample one group (source = first draw) from a candidate pool."""
    if size > len(pool):
        raise ValueError(
            f"group {gid} needs {size} members but only {len(pool)} "
            f"candidate nodes remain"
        )
    picks = rng.choice(len(pool), size=size, replace=False)
    members = [int(pool[i]) for i in picks]
    return GroupSpec(gid=gid, source=members[0], receivers=tuple(members[1:]))


class IndependentOverlap(GroupOverlapModel):
    """Each extra group samples its members uniformly over all nodes;
    cross-group overlap happens at the natural hypergeometric rate."""

    name = "independent"

    def extra_groups(self, config, sizes, group0, streams):
        pool = list(range(config.n_nodes))
        return [
            _draw_group(g, pool, sizes[g], streams.derive("groups", g))
            for g in range(1, config.group_count)
        ]


class DisjointOverlap(GroupOverlapModel):
    """No node serves two groups: each extra group samples from the
    nodes no earlier group (including group 0) claimed."""

    name = "disjoint"

    def validate(self, config, backend):
        # Worst case every group keeps the configured size; the exact
        # per-size check happens at build time (sizes may ramp down).
        if config.group_count * 2 > config.n_nodes:
            raise ValueError(
                f"disjoint overlap cannot fit {config.group_count} groups "
                f"of >= 2 nodes into n_nodes={config.n_nodes}"
            )

    def extra_groups(self, config, sizes, group0, streams):
        used = set(group0.members)
        out = []
        for g in range(1, config.group_count):
            pool = sorted(set(range(config.n_nodes)) - used)
            spec = _draw_group(g, pool, sizes[g], streams.derive("groups", g))
            used.update(spec.members)
            out.append(spec)
        return out


class SharedCoreOverlap(GroupOverlapModel):
    """Every extra group draws ``core_frac`` of its receivers from group
    0's receivers (a shared popular audience) and the rest — source
    included — from the remaining nodes."""

    name = "shared-core"
    params = {"core_frac": 0.5}

    def validate(self, config, backend):
        frac = float(self.param(config, "core_frac"))
        if not (0.0 <= frac <= 1.0):
            raise ValueError("shared-core needs 0 <= core_frac <= 1")

    def extra_groups(self, config, sizes, group0, streams):
        frac = float(self.param(config, "core_frac"))
        base_core = sorted(group0.receivers)
        out = []
        for g in range(1, config.group_count):
            rng = streams.derive("groups", g)
            want_core = int(round(frac * (sizes[g] - 1)))
            n_core = min(want_core, len(base_core), sizes[g] - 1)
            core_picks = rng.choice(len(base_core), size=n_core, replace=False)
            core = [base_core[i] for i in core_picks]
            pool = sorted(set(range(config.n_nodes)) - set(core))
            rest = _draw_group(g, pool, sizes[g] - n_core, rng)
            out.append(
                GroupSpec(
                    gid=g,
                    source=rest.source,
                    receivers=tuple(list(rest.receivers) + core),
                )
            )
        return out


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
def _registry(*models: GroupModel) -> Dict[str, GroupModel]:
    return {m.name: m for m in models}


GROUP_REGISTRIES: Dict[str, Dict[str, GroupModel]] = {
    "group-size": _registry(FixedGroupSize(), LinearRampGroupSize()),
    "group-overlap": _registry(
        IndependentOverlap(), DisjointOverlap(), SharedCoreOverlap()
    ),
}

#: the hash-neutral default model of each axis (the paper: one group)
DEFAULT_GROUP_MODELS: Dict[str, str] = {
    "group-size": "fixed",
    "group-overlap": "independent",
}

#: canonical model-name order per axis (contract table, CLI help, docs)
GROUP_MODEL_NAMES: Dict[str, Tuple[str, ...]] = {
    axis: tuple(registry) for axis, registry in GROUP_REGISTRIES.items()
}

#: group axis -> the ScenarioConfig field holding the model name
GROUP_AXIS_FIELDS: Dict[str, str] = {
    "group-size": "group_size_model",
    "group-overlap": "overlap_model",
}


def group_model_by_name(axis: str, name: str) -> GroupModel:
    """Look up one group-axis model by registry name."""
    try:
        registry = GROUP_REGISTRIES[axis]
    except KeyError:
        raise ValueError(
            f"unknown group axis {axis!r}; choose from "
            f"{sorted(GROUP_REGISTRIES)}"
        ) from None
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown {axis} model {name!r}; choose from {sorted(registry)}"
        ) from None


def group_param_keys() -> set:
    """Every ``model_params`` key some registered group model accepts."""
    return {
        key
        for registry in GROUP_REGISTRIES.values()
        for model in registry.values()
        for key in model.params
    }


def resolved_group_models(config: "ScenarioConfig") -> Dict[str, GroupModel]:
    """The two group models a config resolves to, keyed by axis."""
    return {
        axis: group_model_by_name(axis, getattr(config, field_name))
        for axis, field_name in GROUP_AXIS_FIELDS.items()
    }


def validate_group_models(config: "ScenarioConfig", backend: str) -> None:
    """Group-axis resolution + realizability (called from
    :func:`~repro.experiments.scenario_models.validate_models`, and so
    from every backend's ``validate``)."""
    models = resolved_group_models(config)  # raises on unknown names
    for model in models.values():
        model.validate(config, backend)
    if config.group_count <= 1:
        return
    if config.protocol not in _MULTIGROUP_PROTOCOLS:
        raise ValueError(
            f"protocol {config.protocol!r} has no multi-group realization; "
            f"group_count > 1 runs one SS-SPST-family instance per group "
            f"({', '.join(_MULTIGROUP_PROTOCOLS)})"
        )
    if backend == "des" and config.traffic != "cbr":
        raise ValueError(
            f"traffic model {config.traffic!r} has no per-group DES "
            f"realization; group_count > 1 drives one CBR source per group"
        )
    sizes = models["group-size"].sizes(config)
    if any(s < 2 or s > config.n_nodes for s in sizes):
        raise ValueError(
            f"group sizes {sizes} must lie in [2, n_nodes={config.n_nodes}]"
        )


def build_groups(
    config: "ScenarioConfig",
    source: int,
    receivers: List[int],
    streams: "RngStreams",
) -> GroupSet:
    """Realize the config's group structure.

    ``source``/``receivers`` are the membership model's historical group
    (drawn before this call from the ``"group"`` substream) and become
    group 0 verbatim.  With ``group_count == 1`` this function draws
    nothing — the single-group bit-identity contract.
    """
    group0 = GroupSpec(gid=0, source=int(source), receivers=tuple(receivers))
    if config.group_count == 1:
        return GroupSet(groups=(group0,))
    models = resolved_group_models(config)
    sizes = models["group-size"].sizes(config)
    extra = models["group-overlap"].extra_groups(config, sizes, group0, streams)
    return GroupSet(groups=(group0, *extra))
