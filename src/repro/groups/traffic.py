"""Per-group CBR workload for multi-group runs.

One CBR clock per group, all at the configured rate, each driving its
own group's source node through the per-node
:class:`~repro.groups.agents.GroupDispatchAgent`.  Group starts are
staggered deterministically across one packet interval
(``traffic_start + gid * interval / k``) so k sessions do not slam the
medium in phase at t = traffic_start — the offered load is identical,
only the phases differ, and no RNG is consumed (determinism without a
new substream).
"""

from __future__ import annotations

from typing import List

from repro.net.node import Network
from repro.sim.timers import PeriodicTimer
from repro.util.units import bytes_to_bits, kbps_to_bps


class MultiGroupCbr:
    """Drives one CBR flow per multicast group."""

    def __init__(
        self,
        network: Network,
        rate_kbps: float = 64.0,
        packet_bytes: int = 512,
        start_time: float = 0.0,
    ) -> None:
        if rate_kbps <= 0 or packet_bytes <= 0:
            raise ValueError("rate and packet size must be positive")
        if not network.groups:
            raise ValueError("MultiGroupCbr needs network.set_groups first")
        self.network = network
        self.packet_bytes = int(packet_bytes)
        self.interval = bytes_to_bits(packet_bytes) / kbps_to_bps(rate_kbps)
        self.start_time = float(start_time)
        self.packets_sent = 0
        self._timers: List[PeriodicTimer] = []

    def start(self) -> None:
        """Begin all per-group flows (phase-staggered, no RNG)."""
        k = len(self.network.groups)
        for group in self.network.groups:
            offset = self.start_time + group.gid * self.interval / k
            self._timers.append(
                PeriodicTimer(
                    self.network.sim,
                    self.interval,
                    lambda gid=group.gid: self._emit(gid),
                    start_offset=offset,
                )
            )

    def stop(self) -> None:
        for timer in self._timers:
            timer.stop()

    def _emit(self, gid: int) -> None:
        source = self.network.nodes[self.network.group_source_of(gid)]
        if not source.alive or source.agent is None:
            return
        source.agent.originate_data(self.packet_bytes, group=gid)
        self.packets_sent += 1
