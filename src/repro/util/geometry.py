"""Planar geometry helpers for the simulation arena.

Positions are ``(n, 2)`` float64 NumPy arrays throughout the codebase; the
hot paths (pairwise distances, range queries) are fully vectorized as the
scientific-Python guides recommend — no Python-level loops over node pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Arena:
    """Rectangular simulation area ``[0, width] x [0, height]`` in metres.

    The paper's evaluation uses a 750 m x 750 m arena (section 6).
    """

    width: float = 750.0
    height: float = 750.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("arena dimensions must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorized containment test for an ``(n, 2)`` array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        return (
            (pts[:, 0] >= 0.0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0.0)
            & (pts[:, 1] <= self.height)
        )

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` uniform points inside the arena."""
        pts = rng.random((n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    @property
    def diagonal(self) -> float:
        """Length of the arena diagonal (an upper bound on any distance)."""
        return float(np.hypot(self.width, self.height))


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 2-D points."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix, vectorized.

    Uses the broadcasting identity ``|x - y|^2 = |x|^2 + |y|^2 - 2 x.y`` with
    a clip to guard against tiny negative values from floating-point
    cancellation.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("expected an (n, 2) array of points")
    sq = np.einsum("ij,ij->i", pts, pts)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (pts @ pts.T)
    np.clip(d2, 0.0, None, out=d2)
    d = np.sqrt(d2)
    np.fill_diagonal(d, 0.0)
    return d


def neighbors_within(points: np.ndarray, radius: float) -> np.ndarray:
    """Boolean ``(n, n)`` adjacency: True where ``0 < dist <= radius``."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    d = pairwise_distances(points)
    adj = d <= radius
    np.fill_diagonal(adj, False)
    return adj


def clamp_point(point: np.ndarray, arena: Arena) -> np.ndarray:
    """Clamp a point into the arena (used defensively by mobility models)."""
    p = np.asarray(point, dtype=float).copy()
    p[0] = min(max(p[0], 0.0), arena.width)
    p[1] = min(max(p[1], 0.0), arena.height)
    return p


def unit_vector(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, float]:
    """Return ``(direction, length)`` from ``src`` toward ``dst``.

    A zero-length segment yields a zero direction vector.
    """
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    delta = dst - src
    length = float(np.hypot(delta[0], delta[1]))
    if length == 0.0:
        return np.zeros(2), 0.0
    return delta / length, length
