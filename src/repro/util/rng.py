"""Deterministic random-number stream management.

Every stochastic component (mobility, MAC jitter, traffic, placement, loss)
draws from its **own** named substream derived from a single scenario seed.
That keeps experiments reproducible and — crucially for the paper's
methodology — lets us reuse *identical* mobility scenarios across all
protocols ("We used the same scenarios to evaluate all the protocols",
section 6).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a label.

    Uses SHA-256 so unrelated labels give statistically independent seeds and
    the mapping is stable across Python processes (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of named, independently seeded :class:`numpy.random.Generator`.

    >>> streams = RngStreams(42)
    >>> a = streams.get("mobility")
    >>> b = streams.get("traffic")
    >>> a is streams.get("mobility")
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def derive(self, label: str, *parts: object) -> np.random.Generator:
        """The generator for a **composed** stream label.

        ``derive("mac", node_id)`` is the sanctioned spelling of what
        used to be written ad hoc as ``get(f"mac.{node_id}")``: the
        label and its qualifying parts are joined with ``"."`` into one
        canonical name, so the composition rule lives here rather than
        in f-strings scattered across call sites (lint rule D105 flags
        the latter).  Parts are stringified with ``str`` — ints, node
        ids and short strings all compose stably.
        """
        if parts:
            name = ".".join((label, *(str(p) for p in parts)))
        else:
            name = label
        return self.get(name)

    def spawn(self, name: str) -> "RngStreams":
        """Create a child stream family (e.g. one per node)."""
        return RngStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
