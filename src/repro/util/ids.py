"""Node identifiers.

The paper assumes "each node in the MANET is identified by a unique
identifier" (section 3).  We model identifiers as plain integers so they can
index NumPy arrays directly; :class:`IdAllocator` hands them out densely.
"""

from __future__ import annotations

NodeId = int
"""Type alias for node identifiers (dense non-negative integers)."""


class IdAllocator:
    """Dense, monotonically increasing identifier allocator.

    Identifiers start at 0 so they can double as indices into position /
    energy arrays.

    >>> alloc = IdAllocator()
    >>> alloc.next(), alloc.next(), alloc.count
    (0, 1, 2)
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("identifier start must be non-negative")
        self._next = start
        self._start = start

    def next(self) -> NodeId:
        """Return a fresh identifier."""
        nid = self._next
        self._next += 1
        return nid

    @property
    def count(self) -> int:
        """Number of identifiers handed out so far."""
        return self._next - self._start

    def reset(self) -> None:
        """Forget all allocations (used between independent scenarios)."""
        self._next = self._start
