"""Shared low-level utilities: identifiers, geometry, RNG streams, units.

These helpers are dependency-free (NumPy only) and used by every other
subpackage.  Nothing in here knows about simulation, protocols or energy.
"""

from repro.util.ids import NodeId, IdAllocator
from repro.util.geometry import (
    Arena,
    distance,
    pairwise_distances,
    neighbors_within,
    clamp_point,
)
from repro.util.rng import RngStreams, derive_seed
from repro.util.units import (
    BITS_PER_BYTE,
    KBPS,
    MS,
    US,
    joules_to_mj,
    mj_to_joules,
    bytes_to_bits,
    bits_to_bytes,
)

__all__ = [
    "NodeId",
    "IdAllocator",
    "Arena",
    "distance",
    "pairwise_distances",
    "neighbors_within",
    "clamp_point",
    "RngStreams",
    "derive_seed",
    "BITS_PER_BYTE",
    "KBPS",
    "MS",
    "US",
    "joules_to_mj",
    "mj_to_joules",
    "bytes_to_bits",
    "bits_to_bytes",
]
