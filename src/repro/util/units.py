"""Unit constants and conversions.

Internally the simulator works in SI units: seconds, metres, joules, bits.
The paper reports energies in millijoules and delays in milliseconds; the
conversion helpers keep those boundaries explicit.
"""

from __future__ import annotations

BITS_PER_BYTE = 8
KBPS = 1_000.0  # bits per second in one kilobit/s
MS = 1e-3  # seconds in one millisecond
US = 1e-6  # seconds in one microsecond


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return n_bits / BITS_PER_BYTE


def joules_to_mj(j: float) -> float:
    """Joules -> millijoules (the paper's reporting unit)."""
    return j * 1e3


def mj_to_joules(mj: float) -> float:
    """Millijoules -> joules."""
    return mj * 1e-3


def kbps_to_bps(kbps: float) -> float:
    """Kilobits/s -> bits/s."""
    return kbps * KBPS
