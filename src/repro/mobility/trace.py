"""Trace-driven mobility: explicit per-node piecewise-linear waypoints.

Used by tests to create exactly-timed topology changes (e.g. "node 3 walks
out of range at t=30 s"), and to replay externally generated scenario files
the way the paper replayed ns-2 ``setdest`` scenarios.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import List, Sequence, Tuple

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import Arena

Waypoint = Tuple[float, float, float]  # (time, x, y)


def load_trace_file(path: str) -> List[List[Waypoint]]:
    """Read per-node waypoint lists from a JSON scenario file.

    The format is the JSON image of the :class:`TraceMobility`
    constructor argument — a list (one entry per node) of ``[t, x, y]``
    waypoint lists::

        [[[0, 10, 10], [30, 200, 10]],     # node 0
         [[0, 50, 50]]]                    # node 1 (parked)

    This is the interchange format for replaying externally generated
    scenarios (the role ns-2 ``setdest`` files played for the paper);
    the ``trace`` mobility model of the scenario API loads it via the
    ``trace_file`` model parameter.
    """
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"trace file {path!r} must hold a non-empty list of traces")
    traces: List[List[Waypoint]] = []
    for i, tr in enumerate(raw):
        try:
            traces.append([(float(t), float(x), float(y)) for t, x, y in tr])
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"trace file {path!r}, node {i}: waypoints must be [t, x, y] triples"
            ) from exc
    return traces


class TraceMobility(MobilityModel):
    """Piecewise-linear interpolation through per-node waypoint lists.

    ``traces[i]`` is a list of ``(t, x, y)`` tuples sorted by ``t``; before
    the first waypoint the node sits at it, after the last it stays there.
    """

    def __init__(
        self,
        arena: Arena,
        traces: Sequence[Sequence[Waypoint]],
    ) -> None:
        super().__init__(len(traces), arena)
        self._times: List[np.ndarray] = []
        self._points: List[np.ndarray] = []
        for i, tr in enumerate(traces):
            if not tr:
                raise ValueError(f"trace {i} is empty")
            ts = np.array([w[0] for w in tr], dtype=float)
            if np.any(np.diff(ts) < 0):
                raise ValueError(f"trace {i} times are not sorted")
            pts = np.array([[w[1], w[2]] for w in tr], dtype=float)
            if not arena.contains(pts).all():
                raise ValueError(f"trace {i} leaves the arena")
            self._times.append(ts)
            self._points.append(pts)

    def _positions_at(self, t: float) -> np.ndarray:
        out = np.empty((self.n, 2))
        for i in range(self.n):
            ts, pts = self._times[i], self._points[i]
            k = bisect_right(ts, t)
            if k == 0:
                out[i] = pts[0]
            elif k >= len(ts):
                out[i] = pts[-1]
            else:
                t0, t1 = ts[k - 1], ts[k]
                frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
                out[i] = pts[k - 1] + frac * (pts[k] - pts[k - 1])
        return out
