"""Random-walk (random-direction) mobility with boundary reflection.

Each node moves for an exponentially distributed epoch in a uniformly random
direction at a uniformly random speed, reflecting off arena walls.  Used as
an alternative fault-injection pattern in extension experiments; not part of
the paper's headline evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import Arena


class RandomWalk(MobilityModel):
    """Reflecting random walk.

    Parameters
    ----------
    v_min, v_max:
        Speed bounds in m/s (v_min may be 0 here; decay is not an issue for
        random walk because epochs are time- rather than distance-bounded).
    mean_epoch:
        Mean duration of a direction epoch, seconds.
    """

    def __init__(
        self,
        n_nodes: int,
        arena: Arena,
        v_min: float,
        v_max: float,
        mean_epoch: float = 10.0,
        rng: np.random.Generator = None,
        initial_positions: np.ndarray = None,
    ) -> None:
        super().__init__(n_nodes, arena)
        if rng is None:
            raise ValueError("RandomWalk requires an rng")
        if v_min < 0 or v_max < v_min:
            raise ValueError("need 0 <= v_min <= v_max")
        if mean_epoch <= 0:
            raise ValueError("mean_epoch must be positive")
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self.mean_epoch = float(mean_epoch)
        self.rng = rng
        self._pos = (
            arena.sample_points(n_nodes, rng)
            if initial_positions is None
            else np.array(initial_positions, dtype=float)
        )
        if self._pos.shape != (n_nodes, 2):
            raise ValueError(f"initial_positions must be ({n_nodes}, 2)")
        self._t = 0.0
        self._vel = np.zeros((n_nodes, 2))
        self._epoch_end = np.zeros(n_nodes)

    def _refresh_epochs(self, t: float) -> None:
        need = self._epoch_end <= t
        k = int(need.sum())
        if k == 0:
            return
        angles = self.rng.uniform(0.0, 2.0 * np.pi, size=k)
        speeds = self.rng.uniform(self.v_min, self.v_max, size=k)
        self._vel[need, 0] = np.cos(angles) * speeds
        self._vel[need, 1] = np.sin(angles) * speeds
        self._epoch_end[need] = t + self.rng.exponential(self.mean_epoch, size=k)

    def _positions_at(self, t: float) -> np.ndarray:
        # Integrate in steps bounded by the earliest epoch boundary.
        while self._t < t:
            self._refresh_epochs(self._t)
            step_end = min(t, float(self._epoch_end.min()))
            dt = step_end - self._t
            if dt > 0:
                self._pos += self._vel * dt
                self._reflect()
            self._t = step_end
            if step_end == t:
                break
        self._refresh_epochs(self._t)
        return self._pos

    def _reflect(self) -> None:
        w, h = self.arena.width, self.arena.height
        for dim, bound in ((0, w), (1, h)):
            low = self._pos[:, dim] < 0.0
            self._pos[low, dim] *= -1.0
            self._vel[low, dim] *= -1.0
            high = self._pos[:, dim] > bound
            self._pos[high, dim] = 2.0 * bound - self._pos[high, dim]
            self._vel[high, dim] *= -1.0
            # Pathological velocities could still land outside after one
            # reflection; clamp as a final guard.
            np.clip(self._pos[:, dim], 0.0, bound, out=self._pos[:, dim])
