"""Node mobility models.

The paper's evaluation (section 6) uses the random way-point model *with the
Yoon–Liu–Noble fix*: node speeds are drawn from ``[v_min, v_max]`` with
``v_min > 0`` so the average speed does not decay over time ("Random
Waypoint Considered Harmful", INFOCOM'03).  :class:`RandomWaypoint`
implements exactly that.  Additional models (random walk, Gauss–Markov,
static placement, explicit traces) support the test-suite and extension
experiments.

All models share the :class:`MobilityModel` interface: ``positions(t)``
returns the ``(n, 2)`` position array at simulation time ``t`` where ``t``
must be non-decreasing across calls (models advance lazily).
"""

from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticPlacement
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.random_walk import RandomWalk
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.trace import TraceMobility, load_trace_file
from repro.mobility.analysis import (
    LinkChurnStats,
    MobilityProfile,
    link_churn,
    mobility_profile,
    partition_fraction,
)

__all__ = [
    "MobilityModel",
    "StaticPlacement",
    "RandomWaypoint",
    "RandomWalk",
    "GaussMarkov",
    "TraceMobility",
    "load_trace_file",
    "LinkChurnStats",
    "MobilityProfile",
    "link_churn",
    "mobility_profile",
    "partition_fraction",
]
