"""Mobility analysis: the fault process behind the protocol dynamics.

The paper's explanations lean on a causal chain — *speed -> topology-change
(fault) rate -> stabilization lag -> PDR/energy* — without measuring the
middle link.  These helpers quantify it: given any mobility model, they
sample the unit-disk neighbor graph over time and count link births/deaths
(the "faults" self-stabilization must absorb).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import pairwise_distances


@dataclass(frozen=True)
class LinkChurnStats:
    """Link-event statistics over an observation window."""

    duration: float
    link_breaks: int
    link_births: int
    mean_degree: float
    samples: int

    @property
    def break_rate(self) -> float:
        """Link breaks per second — the paper's 'fault rate'."""
        return self.link_breaks / self.duration if self.duration > 0 else 0.0

    @property
    def event_rate(self) -> float:
        """All link events per second."""
        return (self.link_breaks + self.link_births) / self.duration if self.duration else 0.0


def link_churn(
    mobility: MobilityModel,
    max_range: float,
    duration: float,
    dt: float = 1.0,
    t0: float = 0.0,
) -> LinkChurnStats:
    """Sample the adjacency every ``dt`` and count link transitions."""
    return mobility_profile(mobility, max_range, duration, dt=dt, t0=t0).churn


@dataclass(frozen=True)
class MobilityProfile:
    """One-pass combination of :func:`link_churn` and
    :func:`partition_fraction` over the same sample grid (the per-run
    fault-process diagnostics the DES backend reports)."""

    churn: LinkChurnStats
    partition_fraction: float


def mobility_profile(
    mobility: MobilityModel,
    max_range: float,
    duration: float,
    dt: float = 1.0,
    t0: float = 0.0,
) -> MobilityProfile:
    """Sample adjacency once and derive churn *and* partition statistics.

    Mobility models advance lazily and reject backwards queries, so
    computing churn and partitioning separately would need two model
    instances; this single pass is what the experiment runner uses to
    attach fault-process diagnostics to every DES run.
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    times = np.arange(t0, t0 + duration + 1e-9, dt)
    prev = None
    breaks = births = disconnected = 0
    degrees = []
    for t in times:
        pos = mobility.positions(float(t))
        d = pairwise_distances(pos)
        adj = (d <= max_range) & (d > 0.0)
        degrees.append(adj.sum(axis=1).mean())
        if prev is not None:
            upper = np.triu_indices(adj.shape[0], k=1)
            a, p = adj[upper], prev[upper]
            breaks += int(np.count_nonzero(p & ~a))
            births += int(np.count_nonzero(~p & a))
        prev = adj
        if not _connected(adj):
            disconnected += 1
    return MobilityProfile(
        churn=LinkChurnStats(
            duration=float(times[-1] - times[0]),
            link_breaks=breaks,
            link_births=births,
            mean_degree=float(np.mean(degrees)),
            samples=len(times),
        ),
        partition_fraction=disconnected / len(times),
    )


def _connected(adj: np.ndarray) -> bool:
    """Reachability of every node from node 0 in a boolean adjacency."""
    n = adj.shape[0]
    seen = np.zeros(n, dtype=bool)
    stack = [0]
    seen[0] = True
    while stack:
        v = stack.pop()
        for u in np.nonzero(adj[v])[0]:
            if not seen[u]:
                seen[u] = True
                stack.append(int(u))
    return bool(seen.all())


def partition_fraction(
    mobility: MobilityModel,
    max_range: float,
    duration: float,
    dt: float = 1.0,
    t0: float = 0.0,
) -> float:
    """Fraction of samples where the unit-disk graph is disconnected.

    A structural ceiling on any protocol's PDR: packets cannot cross a
    partition regardless of routing.
    """
    return mobility_profile(
        mobility, max_range, duration, dt=dt, t0=t0
    ).partition_fraction
