"""Mobility analysis: the fault process behind the protocol dynamics.

The paper's explanations lean on a causal chain — *speed -> topology-change
(fault) rate -> stabilization lag -> PDR/energy* — without measuring the
middle link.  These helpers quantify it: given any mobility model, they
sample the unit-disk neighbor graph over time and count link births/deaths
(the "faults" self-stabilization must absorb).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import pairwise_distances


@dataclass(frozen=True)
class LinkChurnStats:
    """Link-event statistics over an observation window."""

    duration: float
    link_breaks: int
    link_births: int
    mean_degree: float
    samples: int

    @property
    def break_rate(self) -> float:
        """Link breaks per second — the paper's 'fault rate'."""
        return self.link_breaks / self.duration if self.duration > 0 else 0.0

    @property
    def event_rate(self) -> float:
        """All link events per second."""
        return (self.link_breaks + self.link_births) / self.duration if self.duration else 0.0


def link_churn(
    mobility: MobilityModel,
    max_range: float,
    duration: float,
    dt: float = 1.0,
    t0: float = 0.0,
) -> LinkChurnStats:
    """Sample the adjacency every ``dt`` and count link transitions."""
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    times = np.arange(t0, t0 + duration + 1e-9, dt)
    prev = None
    breaks = births = 0
    degrees = []
    for t in times:
        pos = mobility.positions(float(t))
        d = pairwise_distances(pos)
        adj = (d <= max_range) & (d > 0.0)
        degrees.append(adj.sum(axis=1).mean())
        if prev is not None:
            upper = np.triu_indices(adj.shape[0], k=1)
            a, p = adj[upper], prev[upper]
            breaks += int(np.count_nonzero(p & ~a))
            births += int(np.count_nonzero(~p & a))
        prev = adj
    return LinkChurnStats(
        duration=float(times[-1] - times[0]),
        link_breaks=breaks,
        link_births=births,
        mean_degree=float(np.mean(degrees)),
        samples=len(times),
    )


def partition_fraction(
    mobility: MobilityModel,
    max_range: float,
    duration: float,
    dt: float = 1.0,
    t0: float = 0.0,
) -> float:
    """Fraction of samples where the unit-disk graph is disconnected.

    A structural ceiling on any protocol's PDR: packets cannot cross a
    partition regardless of routing.
    """
    times = np.arange(t0, t0 + duration + 1e-9, dt)
    disconnected = 0
    for t in times:
        pos = mobility.positions(float(t))
        d = pairwise_distances(pos)
        adj = (d <= max_range) & (d > 0.0)
        n = adj.shape[0]
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            v = stack.pop()
            for u in np.nonzero(adj[v])[0]:
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
        if not seen.all():
            disconnected += 1
    return disconnected / len(times)
