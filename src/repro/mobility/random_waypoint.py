"""Random way-point mobility with the Yoon–Liu–Noble minimum-speed fix.

Each node repeats: pick a uniform destination in the arena, travel to it in
a straight line at a speed drawn uniformly from ``[v_min, v_max]``, pause
for ``pause_time`` seconds, repeat.  The paper (section 6) explicitly
conforms to the fix from "Random Waypoint Considered Harmful"
(Yoon, Liu, Noble — INFOCOM'03): ``v_min`` must be strictly positive, which
prevents the long-run average speed from decaying toward zero.

The implementation is leg-based and vectorized: per node we store the
current leg ``(t0, t1, src, dst)``; legs are regenerated lazily for exactly
the nodes whose legs expired, and position interpolation across all nodes is
a single broadcasting expression.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import Arena

_MIN_LEG = 1e-9  # guard against zero-length travel legs


class RandomWaypoint(MobilityModel):
    """Random way-point process for ``n_nodes`` nodes.

    Parameters
    ----------
    v_min, v_max:
        Speed bounds in m/s.  ``v_min`` must be > 0 (Noble fix); the paper
        sweeps ``v_max`` from 1 to 20 m/s.
    pause_time:
        Pause duration at each way-point, seconds (0 disables pausing).
    rng:
        Generator for placement, way-points and speeds.
    """

    def __init__(
        self,
        n_nodes: int,
        arena: Arena,
        v_min: float,
        v_max: float,
        pause_time: float = 0.0,
        rng: np.random.Generator = None,
        initial_positions: np.ndarray = None,
    ) -> None:
        super().__init__(n_nodes, arena)
        if rng is None:
            raise ValueError("RandomWaypoint requires an rng")
        if v_min <= 0:
            raise ValueError(
                "v_min must be > 0 (Yoon-Liu-Noble fix; the paper requires "
                "non-zero minimum velocity)"
            )
        if v_max < v_min:
            raise ValueError("v_max must be >= v_min")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self.pause_time = float(pause_time)
        self.rng = rng

        if initial_positions is not None:
            pos = np.asarray(initial_positions, dtype=float)
            if pos.shape != (n_nodes, 2):
                raise ValueError(f"initial_positions must be ({n_nodes}, 2)")
            if not arena.contains(pos).all():
                raise ValueError("initial positions outside the arena")
        else:
            pos = arena.sample_points(n_nodes, rng)

        n = self.n
        self._t0 = np.zeros(n)
        self._t1 = np.zeros(n)  # forces leg generation at first query
        self._src = pos.copy()
        self._dst = pos.copy()
        self._paused = np.zeros(n, dtype=bool)
        self._pos_buf = pos.copy()

    # ------------------------------------------------------------------
    def _new_leg(self, i: int, t: float) -> None:
        """Start the next leg for node ``i`` at time ``t``."""
        here = self._dst[i]
        if not self._paused[i] and self.pause_time > 0.0:
            # Just arrived: pause in place.
            self._paused[i] = True
            self._t0[i] = t
            self._t1[i] = t + self.pause_time
            self._src[i] = here
            self._dst[i] = here
            return
        self._paused[i] = False
        target = self.arena.sample_points(1, self.rng)[0]
        speed = float(self.rng.uniform(self.v_min, self.v_max))
        dist = float(np.hypot(*(target - here)))
        duration = max(dist / speed, _MIN_LEG)
        self._t0[i] = t
        self._t1[i] = t + duration
        self._src[i] = here
        self._dst[i] = target

    def _positions_at(self, t: float) -> np.ndarray:
        expired = np.nonzero(self._t1 < t)[0]
        # A node may burn through several short legs before t; loop until
        # every node's current leg covers t.
        while expired.size:
            for i in expired:
                self._new_leg(int(i), float(self._t1[i]))
            expired = np.nonzero(self._t1 < t)[0]
        span = self._t1 - self._t0
        safe_span = np.where(span > 0.0, span, 1.0)  # zero-span legs have src == dst
        frac = np.clip((t - self._t0) / safe_span, 0.0, 1.0)
        np.multiply(self._dst - self._src, frac[:, None], out=self._pos_buf)
        self._pos_buf += self._src
        return self._pos_buf

    # ------------------------------------------------------------------
    def current_speeds(self, t: float) -> np.ndarray:
        """Instantaneous speeds at time ``t`` (0 while pausing)."""
        self.positions(t)
        span = self._t1 - self._t0
        dist = np.hypot(
            self._dst[:, 0] - self._src[:, 0], self._dst[:, 1] - self._src[:, 1]
        )
        speeds = np.zeros_like(dist)
        np.divide(dist, span, out=speeds, where=span > 0)
        speeds[self._paused] = 0.0
        return speeds
