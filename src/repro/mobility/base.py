"""Abstract mobility interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.util.geometry import Arena


class MobilityModel(abc.ABC):
    """Provides node positions as a function of simulation time.

    Implementations advance internal state lazily, so ``positions`` must be
    called with non-decreasing ``t`` (the simulator's clock is monotone, so
    this holds naturally).
    """

    def __init__(self, n_nodes: int, arena: Arena) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.n = int(n_nodes)
        self.arena = arena
        self._last_query_t = -np.inf

    @abc.abstractmethod
    def _positions_at(self, t: float) -> np.ndarray:
        """Return the (n, 2) position array at time t (t is validated)."""

    def positions(self, t: float) -> np.ndarray:
        """Positions at time ``t`` (seconds); ``t`` must be non-decreasing."""
        if t < self._last_query_t:
            raise ValueError(
                f"mobility queried backwards in time ({t} < {self._last_query_t})"
            )
        self._last_query_t = t
        pos = self._positions_at(float(t))
        return pos

    def position_of(self, node: int, t: float) -> np.ndarray:
        """Convenience: one node's position at ``t``."""
        return self.positions(t)[node]
