"""Static node placement (no movement)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import Arena


class StaticPlacement(MobilityModel):
    """Nodes stay at their initial positions forever.

    Either pass explicit ``positions`` or a ``rng`` for uniform placement.
    Used for WANET-style scenarios (the paper notes a WANET is a MANET
    without mobility) and for deterministic unit tests.
    """

    def __init__(
        self,
        n_nodes: int,
        arena: Arena,
        positions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(n_nodes, arena)
        if positions is not None:
            pos = np.asarray(positions, dtype=float)
            if pos.shape != (n_nodes, 2):
                raise ValueError(f"positions must be ({n_nodes}, 2)")
            if not arena.contains(pos).all():
                raise ValueError("initial positions outside the arena")
            self._pos = pos.copy()
        else:
            if rng is None:
                raise ValueError("need positions or rng")
            self._pos = arena.sample_points(n_nodes, rng)

    def _positions_at(self, t: float) -> np.ndarray:
        return self._pos
