"""Initial node placement samplers.

The paper's evaluation places nodes uniformly at random in the arena;
that remains the default.  The samplers here are the *placement* axis of
the scenario-model API (:mod:`repro.experiments.scenario_models`):
structured alternatives — lattices, Gaussian hot-spot clusters,
perimeter-heavy layouts — that stress tree construction in ways uniform
placement cannot (cf. cluster-driven WSN topologies, where placement
structure dominates protocol outcomes).

Each sampler is a pure function of ``(n, arena, rng)`` returning an
``(n, 2)`` position array inside the arena; determinism per rng seed is
what the scenario hypothesis tests pin down.  Samplers never share an
rng with mobility: every sampler here draws from the dedicated
``placement`` substream, while the uniform *default* has no sampler at
all — it hands the mobility model ``None`` so its historical
self-sampling path (``Arena.sample_points`` from the ``mobility``
substream) keeps default scenarios bit-identical to the pre-model-API
code.
"""

from __future__ import annotations

import numpy as np

from repro.util.geometry import Arena


def grid_positions(
    n: int,
    arena: Arena,
    rng: np.random.Generator,
    jitter_frac: float = 0.0,
) -> np.ndarray:
    """A near-square lattice covering the arena, row-major node order.

    ``jitter_frac`` perturbs each lattice point uniformly by that
    fraction of the cell pitch (0 keeps the lattice exact and draws
    nothing from ``rng``).
    """
    if not 0.0 <= jitter_frac <= 1.0:
        raise ValueError("grid jitter_frac must be in [0, 1]")
    cols = int(np.ceil(np.sqrt(n * arena.width / arena.height)))
    cols = max(cols, 1)
    rows = int(np.ceil(n / cols))
    dx, dy = arena.width / cols, arena.height / rows
    idx = np.arange(n)
    pos = np.column_stack(
        [(idx % cols + 0.5) * dx, (idx // cols + 0.5) * dy]
    ).astype(float)
    if jitter_frac > 0.0:
        pos += rng.uniform(-0.5, 0.5, size=(n, 2)) * np.array([dx, dy]) * jitter_frac
        pos[:, 0] = np.clip(pos[:, 0], 0.0, arena.width)
        pos[:, 1] = np.clip(pos[:, 1], 0.0, arena.height)
    return pos


def gaussian_cluster_positions(
    n: int,
    arena: Arena,
    rng: np.random.Generator,
    clusters: int = 4,
    cluster_sigma: float = 0.0,
) -> np.ndarray:
    """Gaussian hot-spots: uniform cluster centres, normal scatter around
    them, clipped to the arena.

    Nodes are assigned to clusters round-robin (cluster of node ``i`` is
    ``i % clusters``), so cluster membership is deterministic and the
    multicast source (node 0) always sits in cluster 0.  ``cluster_sigma``
    defaults to a tenth of the smaller arena dimension when 0.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    sigma = cluster_sigma if cluster_sigma > 0 else 0.1 * min(arena.width, arena.height)
    centres = arena.sample_points(clusters, rng)
    pos = centres[np.arange(n) % clusters] + sigma * rng.standard_normal((n, 2))
    pos[:, 0] = np.clip(pos[:, 0], 0.0, arena.width)
    pos[:, 1] = np.clip(pos[:, 1], 0.0, arena.height)
    return pos


def edge_weighted_positions(
    n: int,
    arena: Arena,
    rng: np.random.Generator,
    edge_bias: float = 0.7,
    edge_margin_frac: float = 0.15,
) -> np.ndarray:
    """Perimeter-heavy placement: long diameters, thin middles.

    Each node lands in a band of width ``edge_margin_frac * min(w, h)``
    along a uniformly chosen wall with probability ``edge_bias`` and
    uniformly in the arena otherwise.  The resulting topologies have the
    longest shortest paths of any sampler here — the stress case for
    hop-count ceilings and deep-chain pricing.
    """
    if not 0.0 <= edge_bias <= 1.0:
        raise ValueError("edge_bias must be in [0, 1]")
    if not 0.0 < edge_margin_frac <= 0.5:
        raise ValueError("edge_margin_frac must be in (0, 0.5]")
    margin = edge_margin_frac * min(arena.width, arena.height)
    pos = arena.sample_points(n, rng)
    on_edge = rng.random(n) < edge_bias
    walls = rng.integers(0, 4, size=n)  # 0=left 1=right 2=bottom 3=top
    depth = rng.uniform(0.0, margin, size=n)
    for i in np.nonzero(on_edge)[0]:
        if walls[i] == 0:
            pos[i, 0] = depth[i]
        elif walls[i] == 1:
            pos[i, 0] = arena.width - depth[i]
        elif walls[i] == 2:
            pos[i, 1] = depth[i]
        else:
            pos[i, 1] = arena.height - depth[i]
    return pos
