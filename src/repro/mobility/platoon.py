"""Platoon (convoy) mobility: correlated motion around group anchors.

A multi-group workload rarely has every node roaming independently —
vehicle convoys, squads and guided tours move as cohesive units.  The
platoon model realizes that correlation with one random-waypoint
**anchor** per platoon plus a fixed per-node offset: node ``i`` belongs
to platoon ``i mod platoon_count`` and sits at ``anchor + offset_i``
(clipped into the arena), so platoon members share a trajectory while
keeping a stable internal formation.

This is the classic Reference Point Group Mobility shape (column/convoy
special case) with a deterministic membership-to-platoon assignment so
the model stays valid for any ``n_nodes`` without extra configuration.
All randomness — anchor placement, anchor waypoints/speeds, formation
offsets — comes from the single ``rng`` handed in by the mobility axis
model (the shared ``"mobility"`` substream).
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypoint
from repro.util.geometry import Arena


class PlatoonMobility(MobilityModel):
    """Convoy motion: random-waypoint anchors plus fixed formation offsets.

    Parameters
    ----------
    platoon_count:
        How many convoys share the arena (each node joins platoon
        ``id mod platoon_count``).
    spread:
        Formation radius: per-node offsets are uniform in
        ``[-spread, spread]^2`` around the anchor, metres.
    v_min, v_max, pause_time:
        Anchor way-point kinematics (same semantics as
        :class:`~repro.mobility.random_waypoint.RandomWaypoint`).
    """

    def __init__(
        self,
        n_nodes: int,
        arena: Arena,
        platoon_count: int,
        spread: float,
        v_min: float,
        v_max: float,
        pause_time: float = 0.0,
        rng: np.random.Generator = None,
    ) -> None:
        super().__init__(n_nodes, arena)
        if rng is None:
            raise ValueError("PlatoonMobility requires an rng")
        if platoon_count < 1:
            raise ValueError("platoon_count must be >= 1")
        if spread < 0:
            raise ValueError("spread must be non-negative")
        self.platoon_count = int(min(platoon_count, n_nodes))
        self.spread = float(spread)
        #: node -> platoon assignment (deterministic round-robin)
        self.assignment = np.arange(n_nodes) % self.platoon_count
        self._anchors = RandomWaypoint(
            self.platoon_count,
            arena,
            v_min=v_min,
            v_max=v_max,
            pause_time=pause_time,
            rng=rng,
        )
        self._offsets = rng.uniform(-self.spread, self.spread, size=(n_nodes, 2))

    def _positions_at(self, t: float) -> np.ndarray:
        anchors = self._anchors.positions(t)
        pos = anchors[self.assignment] + self._offsets
        np.clip(pos[:, 0], 0.0, self.arena.width, out=pos[:, 0])
        np.clip(pos[:, 1], 0.0, self.arena.height, out=pos[:, 1])
        return pos
