"""Gauss–Markov mobility: temporally correlated velocity process.

Speed and direction evolve as AR(1) processes with memory parameter
``alpha`` (1 = straight-line ballistic, 0 = memoryless Brownian-like).
Provides smoother, more realistic trajectories than random waypoint; used in
extension experiments on fault-arrival burstiness.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import Arena


class GaussMarkov(MobilityModel):
    """Gauss–Markov mobility model.

    Parameters
    ----------
    mean_speed:
        Long-run mean speed, m/s.
    alpha:
        Memory parameter in [0, 1].
    sigma_speed, sigma_dir:
        Std-dev of the speed / direction innovations.
    tick:
        Internal update step, seconds.
    """

    def __init__(
        self,
        n_nodes: int,
        arena: Arena,
        mean_speed: float = 5.0,
        alpha: float = 0.85,
        sigma_speed: float = 1.0,
        sigma_dir: float = 0.35,
        tick: float = 1.0,
        rng: np.random.Generator = None,
        initial_positions: np.ndarray = None,
    ) -> None:
        super().__init__(n_nodes, arena)
        if rng is None:
            raise ValueError("GaussMarkov requires an rng")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if mean_speed <= 0 or tick <= 0:
            raise ValueError("mean_speed and tick must be positive")
        self.mean_speed = float(mean_speed)
        self.alpha = float(alpha)
        self.sigma_speed = float(sigma_speed)
        self.sigma_dir = float(sigma_dir)
        self.tick = float(tick)
        self.rng = rng
        self._pos = (
            arena.sample_points(n_nodes, rng)
            if initial_positions is None
            else np.array(initial_positions, dtype=float)
        )
        if self._pos.shape != (n_nodes, 2):
            raise ValueError(f"initial_positions must be ({n_nodes}, 2)")
        self._speed = np.full(n_nodes, mean_speed, dtype=float)
        self._dir = rng.uniform(0.0, 2.0 * np.pi, size=n_nodes)
        self._t = 0.0

    def _step(self, dt: float) -> None:
        n = self.n
        a = self.alpha
        root = np.sqrt(max(1.0 - a * a, 0.0))
        self._speed = (
            a * self._speed
            + (1.0 - a) * self.mean_speed
            + root * self.sigma_speed * self.rng.standard_normal(n)
        )
        np.clip(self._speed, 0.0, None, out=self._speed)
        # Mean direction drifts toward the arena centre near walls to avoid
        # boundary clustering (standard Gauss-Markov edge treatment).
        centre = np.array([self.arena.width / 2.0, self.arena.height / 2.0])
        to_centre = np.arctan2(
            centre[1] - self._pos[:, 1], centre[0] - self._pos[:, 0]
        )
        margin = 0.1 * min(self.arena.width, self.arena.height)
        near_wall = (
            (self._pos[:, 0] < margin)
            | (self._pos[:, 0] > self.arena.width - margin)
            | (self._pos[:, 1] < margin)
            | (self._pos[:, 1] > self.arena.height - margin)
        )
        mean_dir = np.where(near_wall, to_centre, self._dir)
        self._dir = (
            a * self._dir
            + (1.0 - a) * mean_dir
            + root * self.sigma_dir * self.rng.standard_normal(n)
        )
        self._pos[:, 0] += np.cos(self._dir) * self._speed * dt
        self._pos[:, 1] += np.sin(self._dir) * self._speed * dt
        np.clip(self._pos[:, 0], 0.0, self.arena.width, out=self._pos[:, 0])
        np.clip(self._pos[:, 1], 0.0, self.arena.height, out=self._pos[:, 1])

    def _positions_at(self, t: float) -> np.ndarray:
        while self._t + self.tick <= t:
            self._step(self.tick)
            self._t += self.tick
        return self._pos
