"""Constant-bit-rate multicast source.

The paper's workload: "one node [is] the source of the multicast session
sending CBR data packets at the rate of 64 Kbps" (section 6).  With the
default 512-byte payload that is 15.625 packets/s; both rate and size are
configurable so the benches can run scaled-down workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Network
from repro.sim.timers import PeriodicTimer
from repro.util.units import bytes_to_bits, kbps_to_bps


class CbrSource:
    """Drives the source node's agent with periodic data packets."""

    def __init__(
        self,
        network: Network,
        rate_kbps: float = 64.0,
        packet_bytes: int = 512,
        start_time: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        if rate_kbps <= 0 or packet_bytes <= 0:
            raise ValueError("rate and packet size must be positive")
        self.network = network
        self.packet_bytes = int(packet_bytes)
        self.interval = bytes_to_bits(packet_bytes) / kbps_to_bps(rate_kbps)
        self.start_time = float(start_time)
        self.jitter = float(jitter)
        self.packets_sent = 0
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        """Begin generating packets at ``start_time``."""
        rng = self.network.streams.get("cbr") if self.jitter > 0 else None
        self._timer = PeriodicTimer(
            self.network.sim,
            self.interval,
            self._emit,
            jitter=self.jitter,
            rng=rng,
            start_offset=self.start_time,
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _emit(self) -> None:
        source = self.network.nodes[self.network.source]
        if not source.alive or source.agent is None:
            return
        source.agent.originate_data(self.packet_bytes)
        self.packets_sent += 1
