"""On-off (bursty) multicast source.

The classic two-state traffic model: the source alternates between
exponentially distributed ON bursts, during which it emits CBR packets,
and exponentially distributed OFF silences.  The burst-time packet rate
is scaled up by ``(on + off) / on`` so the *long-run average* rate equals
the configured ``rate_kbps`` — an on-off scenario stresses queueing and
tree-repair timing, not total load, and stays comparable to the CBR
baseline packet-for-packet.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.node import Network
from repro.sim.timers import PeriodicTimer
from repro.util.units import bytes_to_bits, kbps_to_bps


class OnOffSource:
    """CBR bursts gated by an exponential ON/OFF renewal process."""

    def __init__(
        self,
        network: Network,
        rate_kbps: float = 64.0,
        packet_bytes: int = 512,
        start_time: float = 0.0,
        on_mean_s: float = 10.0,
        off_mean_s: float = 10.0,
    ) -> None:
        if rate_kbps <= 0 or packet_bytes <= 0:
            raise ValueError("rate and packet size must be positive")
        if on_mean_s <= 0 or off_mean_s < 0:
            raise ValueError("need on_mean_s > 0 and off_mean_s >= 0")
        self.network = network
        self.packet_bytes = int(packet_bytes)
        duty = on_mean_s / (on_mean_s + off_mean_s)
        # Burst-rate interval: average over ON+OFF equals the CBR interval.
        self.interval = duty * bytes_to_bits(packet_bytes) / kbps_to_bps(rate_kbps)
        self.start_time = float(start_time)
        self.on_mean_s = float(on_mean_s)
        self.off_mean_s = float(off_mean_s)
        self.packets_sent = 0
        self._rng: Optional[np.random.Generator] = None
        self._timer: Optional[PeriodicTimer] = None
        self._on_until = 0.0
        self._off_until = 0.0

    def start(self) -> None:
        """Begin the renewal process at ``start_time`` (in an ON burst)."""
        self._rng = self.network.streams.get("traffic.onoff")
        self._on_until = self.start_time + float(
            self._rng.exponential(self.on_mean_s)
        )
        self._off_until = self.start_time
        self._timer = PeriodicTimer(
            self.network.sim,
            self.interval,
            self._emit,
            start_offset=self.start_time,
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    def _advance_state(self, now: float) -> bool:
        """Advance the renewal process to ``now``; True while ON."""
        while True:
            if now < self._on_until:
                return True
            if self._off_until < self._on_until:  # schedule the silence
                self._off_until = self._on_until + float(
                    self._rng.exponential(self.off_mean_s)
                )
            if now < self._off_until:
                return False
            self._on_until = self._off_until + float(
                self._rng.exponential(self.on_mean_s)
            )

    def _emit(self) -> None:
        if not self._advance_state(self.network.sim.now):
            return
        source = self.network.nodes[self.network.source]
        if not source.alive or source.agent is None:
            return
        source.agent.originate_data(self.packet_bytes)
        self.packets_sent += 1
