"""Application traffic generators.

All sources share one duck-typed contract — ``start()`` / ``stop()`` /
``packets_sent`` — so the experiment runner can drive any of them; the
``traffic`` axis of the scenario-model API selects which
(:mod:`repro.experiments.scenario_models`).
"""

from repro.traffic.cbr import CbrSource
from repro.traffic.multiflow import MultiFlowSource
from repro.traffic.onoff import OnOffSource

__all__ = ["CbrSource", "MultiFlowSource", "OnOffSource"]
