"""Application traffic generators."""

from repro.traffic.cbr import CbrSource

__all__ = ["CbrSource"]
