"""Multi-flow multicast source: several interleaved CBR sub-flows.

Models a multicast session carrying multiple application flows (audio +
slides, sensor channels, ...): ``flows`` independent CBR streams at the
multicast source, each at ``rate_kbps / flows``, with independent random
phase offsets drawn from the ``traffic.multiflow`` substream.  The
aggregate rate equals the configured rate, but packet arrivals lose the
metronomic CBR spacing — beats and near-coincident packets exercise MAC
contention and duplicate suppression in ways a single CBR stream cannot.

True multi-*node* sources are out of scope here: the SS-SPST tree is
rooted at the multicast source, so data originating elsewhere has no
routing realization (``ProtocolAgent.originate_data`` enforces this).
"""

from __future__ import annotations

from typing import List

from repro.net.node import Network
from repro.sim.timers import PeriodicTimer
from repro.util.units import bytes_to_bits, kbps_to_bps


class MultiFlowSource:
    """``flows`` phase-shifted CBR sub-flows sharing one source node."""

    def __init__(
        self,
        network: Network,
        rate_kbps: float = 64.0,
        packet_bytes: int = 512,
        start_time: float = 0.0,
        flows: int = 2,
    ) -> None:
        if rate_kbps <= 0 or packet_bytes <= 0:
            raise ValueError("rate and packet size must be positive")
        if flows < 1:
            raise ValueError("need at least one flow")
        self.network = network
        self.packet_bytes = int(packet_bytes)
        self.flows = int(flows)
        self.interval = (
            bytes_to_bits(packet_bytes) / kbps_to_bps(rate_kbps) * self.flows
        )
        self.start_time = float(start_time)
        self.packets_sent = 0
        self._timers: List[PeriodicTimer] = []

    def start(self) -> None:
        rng = self.network.streams.get("traffic.multiflow")
        for _ in range(self.flows):
            offset = float(rng.uniform(0.0, self.interval))
            self._timers.append(
                PeriodicTimer(
                    self.network.sim,
                    self.interval,
                    self._emit,
                    start_offset=self.start_time + offset,
                )
            )

    def stop(self) -> None:
        for t in self._timers:
            t.stop()

    def _emit(self) -> None:
        source = self.network.nodes[self.network.source]
        if not source.alive or source.agent is None:
            return
        source.agent.originate_data(self.packet_bytes)
        self.packets_sent += 1
