"""Minimal ASCII line plots for sweep results."""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKERS = "ox+*#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more series as an ASCII chart.

    Each series gets a marker (legend printed below); y is auto-scaled
    over the finite values present.
    """
    finite: List[float] = [
        y for ys in series.values() for y in ys if y == y and abs(y) != float("inf")
    ]
    if not finite:
        return "(no finite data)"
    lo, hi = min(finite), max(finite)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for i, y in enumerate(ys):
            if y != y or abs(y) == float("inf"):
                continue
            col = int(round(i * (width - 1) / max(n - 1, 1)))
            row = int(round((hi - y) * (height - 1) / (hi - lo)))
            grid[row][col] = marker
    lines = []
    if y_label:
        lines.append(y_label)
    # Count-valued series (e.g. stabilization rounds) get integer ticks;
    # fractional ticks would suggest precision the data does not have.
    int_ticks = all(float(v).is_integer() for v in finite) and hi - lo >= (
        height - 1
    )
    for r, row in enumerate(grid):
        y_tick = hi - r * (hi - lo) / (height - 1)
        label = f"{y_tick:10.0f}" if int_ticks else f"{y_tick:10.3f}"
        lines.append(label + " |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    # categorical axes (e.g. the daemon discipline) label with the raw
    # string; numeric axes keep compact %g ticks
    first, last = (
        x if isinstance(x, str) else f"{x:g}" for x in (x_values[0], x_values[-1])
    )
    xt = " " * 12 + first + " " * max(1, width - len(first) - len(last)) + last
    lines.append(xt)
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
