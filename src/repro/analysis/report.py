"""Report helpers: series tables and shape-check summaries."""

from __future__ import annotations

from typing import Dict

from repro.experiments.sweeps import SweepResult


def series_table(result: SweepResult, title: str = "") -> str:
    """The gnuplot-style numeric rows the paper's figures plot."""
    return result.format_table(title)


def shape_report(checks: Dict[str, bool]) -> str:
    """Human-readable pass/fail list of a figure's shape checks."""
    lines = []
    for desc, ok in checks.items():
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {desc}")
    return "\n".join(lines)


def metric_spec_table(backend_name: str) -> str:
    """The typed metric registry of one experiment backend, as a table.

    One row per :class:`~repro.experiments.backends.MetricSpec` — the
    source of the README's per-backend metric tables.
    """
    from repro.experiments.backends import backend_by_name

    specs = backend_by_name(backend_name).metrics()
    name_w = max(len("metric"), max(len(n) for n in specs))
    unit_w = max(len("unit"), max(len(s.unit) for s in specs.values()))
    lines = [
        f"{'metric':<{name_w}}  {'unit':<{unit_w}}  description",
        f"{'-' * name_w}  {'-' * unit_w}  {'-' * 11}",
    ]
    for name, spec in specs.items():
        lines.append(
            f"{name:<{name_w}}  {spec.unit or '-':<{unit_w}}  {spec.description}"
        )
    return "\n".join(lines)
