"""Report helpers: series tables and shape-check summaries."""

from __future__ import annotations

from typing import Dict

from repro.experiments.sweeps import SweepResult


def series_table(result: SweepResult, title: str = "") -> str:
    """The gnuplot-style numeric rows the paper's figures plot."""
    return result.format_table(title)


def shape_report(checks: Dict[str, bool]) -> str:
    """Human-readable pass/fail list of a figure's shape checks."""
    lines = []
    for desc, ok in checks.items():
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {desc}")
    return "\n".join(lines)
