"""Statistical aggregation for sweep results.

The paper plots seed-averaged points without error bars; for a careful
reproduction we also expose confidence intervals (Student-t over seeds) so
shape claims can be checked against overlap rather than point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.sweeps import SweepResult


@dataclass(frozen=True)
class CiSummary:
    """Mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "CiSummary") -> bool:
        return self.low <= other.high and other.low <= self.high


def t_quantile(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value for a confidence level."""
    try:
        from scipy import stats as sstats

        return float(sstats.t.ppf(0.5 + confidence / 2.0, df=df))
    except ImportError:  # pragma: no cover - scipy is a hard dep, but be safe
        return 2.0


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> CiSummary:
    """Student-t confidence interval over a (small) sample.

    A fold through the single-pass accumulator
    :class:`repro.experiments.aggregation.Welford` — the same arithmetic
    the streaming campaign aggregation runs, so batch and streaming CIs
    agree bit-for-bit by construction.  Non-finite samples are filtered;
    an empty sample yields ``nan``, a singleton an infinite half-width.
    """
    from repro.experiments.aggregation import Welford

    return Welford().extend(values).ci(confidence)


def campaign_cis(
    campaign,
    metric: str,
    confidence: float = 0.95,
) -> Dict[Tuple[str, Tuple], CiSummary]:
    """Per-cell CIs for a campaign metric *name*, any backend.

    The campaign counterpart of :func:`sweep_cis` with the stringly
    attribute pull replaced by the backends' typed
    :class:`~repro.experiments.backends.MetricSpec` registry: ``metric``
    is resolved against every backend the campaign spans, and results
    from a backend that does not define it are filtered as ``nan``.
    """
    return campaign.aggregate(campaign.extractor(metric), confidence)


def sweep_cis(
    result: SweepResult,
    extract,
    confidence: float = 0.95,
) -> Dict[Tuple[str, float], CiSummary]:
    """Per-(protocol, x) confidence intervals from a sweep's raw runs."""
    out: Dict[Tuple[str, float], CiSummary] = {}
    for (proto, x), runs in result.raw.items():
        out[(proto, x)] = mean_ci([extract(r) for r in runs], confidence)
    return out


def dominates(
    result: SweepResult,
    extract,
    better: str,
    worse: str,
    direction: str = "lower",
    confidence: float = 0.90,
) -> List[bool]:
    """Per-x: does ``better`` beat ``worse`` with CI separation?

    ``direction='lower'`` means smaller values win (energy, delay).
    Entries are True where the winner's CI clears the loser's CI without
    overlap; used by the stricter variants of the shape checks.
    """
    cis = sweep_cis(result, extract, confidence)
    verdicts = []
    for x in result.x_values:
        b, w = cis[(better, x)], cis[(worse, x)]
        if direction == "lower":
            verdicts.append(b.high < w.low)
        else:
            verdicts.append(b.low > w.high)
    return verdicts
