"""Result presentation: ASCII plots and report tables.

Matplotlib-free by design (the execution environment is offline); the
benches print gnuplot-style numeric series — the same rows the paper's
figures plot — plus a quick ASCII rendering for eyeballing trends.
"""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.stats import CiSummary, campaign_cis, mean_ci, sweep_cis, dominates
from repro.analysis.report import metric_spec_table, shape_report, series_table

__all__ = [
    "ascii_plot",
    "shape_report",
    "metric_spec_table",
    "series_table",
    "CiSummary",
    "mean_ci",
    "sweep_cis",
    "campaign_cis",
    "dominates",
]
