"""Vectorized round engine: columnar state, batched rule evaluation.

:class:`ArrayRoundEngine` is a drop-in :class:`~repro.core.rounds.RoundEngine`
that rebuilds the round-model state as numpy columns — parent, cost, hop,
member flags and flagged-children counters — and evaluates each activation
step's whole dirty frontier as batched array operations instead of one
Python rule evaluation per node.  It exists for scale: the object engine
tops out around 10^3 nodes per study, the array engine takes the daemon
studies to 10^4–10^5 (see ``benchmarks/bench_deepscale.py``).

The contract is **bit-identical trajectories** with the object engine —
states, rounds, convergence verdict, cost history, move counts and
evaluation counts — under every daemon and both evaluation modes.  That
is only possible because the vectorization replicates the scalar
semantics operation for operation:

* the per-candidate costs are built from the *same* float64 values in the
  *same* order (per-edge transmit energies are precomputed once with the
  scalar radio model, then gathered — never recomputed with vector
  transcendentals, whose last-ulp behaviour may differ);
* the sequential incumbent/hop/id tie-break fold of ``rules._better`` is
  reproduced as masked passes over candidate *slots* in neighbor order,
  preserving the fold's non-commutative tolerant-comparison semantics;
* SS-SPST-E's chain pricing becomes a prefix scan over the parent forest:
  two per-node price columns (``Pd`` — carried flag dead, ``Pc`` —
  carried flag alive) are propagated root-to-leaf per snapshot, exactly
  mirroring the top-down accumulation of
  :meth:`~repro.core.views.GlobalView.path_price`.

Three layers keep the hot path free of per-move Python
(``docs/array_engine.md`` walks through each):

* **batched move commits** — for the locally-coupled metrics (hop, tx,
  farthest) a whole activation step's updates are compared, counted and
  scattered into the columns as array operations
  (:meth:`ColumnarView.commit_batch`); the object-world children lists,
  flag counters and cycle census become lazily-rematerialized debug
  views.  The chain-coupled SS-SPST-E metric keeps per-move applies (its
  dirty sets need the per-move flag-flip reports) — but those applies
  feed the next layer;
* **incremental snapshots** — per-step derived arrays (child top-2
  radii, link marginals, chain prices, Euler intervals) are no longer
  rebuilt from scratch: every apply reports which rows went stale and
  the next snapshot re-scans only the dirty subtrees;
* **kernels** — the remaining tight loops (in-range counting, the
  candidate fold, fused pair pricing, the forest scan) dispatch through
  :mod:`repro.core.kernels`: pure-numpy formulations by default, numba
  JIT versions under ``REPRO_KERNEL=numba``, bit-identical either way.

Where exact vectorization is not sound, the engine *narrows* instead of
approximating: evaluators whose detachment is visible to chain reads
(flagged, attached) re-price only the candidates inside their correction
zone — the subtree of the first ancestor that keeps its flag without them
— through the scalar path; snapshots with parent cycles (arbitrary
illegitimate states) or a parented source fall back to scalar evaluation
for the affected steps.  Adaptive daemons (adversarial) schedule against
live probes and always use the scalar path.

Select it through ``engine_for(..., engine="array")``, the campaign
``engine`` scenario knob, or ``--engine array`` on the CLI.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core import kernels
from repro.core.daemons import Daemon
from repro.core.metrics import (
    CostMetric,
    EnergyAwareMetric,
    FarthestChildMetric,
    HopMetric,
    TxEnergyMetric,
)
from repro.core.rounds import RoundEngine
from repro.core.rules import COST_TOL, H_MAX
from repro.core.state import NodeState, derive_children, derive_flags
from repro.core.views import GlobalView
from repro.graph.topology import Topology


def _excl_cumsum(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (the start offset of each group)."""
    out = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


class EdgeCsr:
    """Compressed adjacency with per-edge scalar-exact transmit energies.

    Row order matches ``topo.neighbors(v)`` exactly (the rule's candidate
    fold is order-sensitive), and rows are id-sorted, so membership
    lookups are binary searches.  ``sdist`` is the per-row distance-sorted
    copy backing the vectorized in-range counting (same values as
    :meth:`Topology.count_within` bisects over).
    """

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        self.n = topo.n
        provided = getattr(topo, "csr_arrays", None)
        if provided is not None:
            self.indptr, self.nbr, self.dist = provided()
        else:
            rows = [topo.neighbors(v) for v in range(topo.n)]
            counts = np.array([len(r) for r in rows], dtype=np.int64)
            self.indptr = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            self.nbr = np.array(
                [u for r in rows for u in r], dtype=np.int64
            )
            self.dist = np.array(
                [float(topo.dist[v, u]) for v, r in enumerate(rows) for u in r],
                dtype=np.float64,
            )
        self._rowid = np.repeat(
            np.arange(self.n, dtype=np.int64),
            np.diff(self.indptr),
        )
        order = np.lexsort((self.dist, self._rowid))
        self.sdist = self.dist[order]
        self._metric = metric
        self._etx: Optional[np.ndarray] = None
        # Lazy rank tables for the searchsorted-based count_within and the
        # batched edge_slots lookup (built on first use; hop runs that
        # never range-count never pay for them).
        self._uvals: Optional[np.ndarray] = None
        self._rank_K = 0
        self._rank_aug: Optional[np.ndarray] = None
        self._nbr_aug: Optional[np.ndarray] = None

    def etx(self) -> np.ndarray:
        """Per-edge per-bit transmit energy, computed with the *scalar*
        radio model once (vector pow may differ in the last ulp)."""
        if self._etx is None:
            m = self._metric
            self._etx = np.array(
                [m.etx(float(d)) for d in self.dist], dtype=np.float64
            )
        return self._etx

    def edge_slot(self, v: int, u: int) -> int:
        """CSR position of edge (v, u), or -1 when absent."""
        i0, i1 = int(self.indptr[v]), int(self.indptr[v + 1])
        i = i0 + int(np.searchsorted(self.nbr[i0:i1], u))
        if i < i1 and int(self.nbr[i]) == u:
            return i
        return -1

    def edge_slots(self, V: np.ndarray, P: np.ndarray) -> np.ndarray:
        """Batched :meth:`edge_slot`: CSR positions of edges ``(V, P)``,
        -1 where absent.  Rows are id-sorted, so ``rowid * n + nbr`` is a
        globally sorted key and every lookup is one searchsorted."""
        if self._nbr_aug is None:
            self._nbr_aug = self._rowid * np.int64(self.n) + self.nbr
        aug = self._nbr_aug
        if aug.size == 0:
            return np.full(len(V), -1, dtype=np.int64)
        q = V.astype(np.int64) * np.int64(self.n) + P
        i = np.searchsorted(aug, q)
        hit = (i < aug.size) & (aug[np.minimum(i, aug.size - 1)] == q)
        return np.where(hit, i, -1)

    def count_within(self, U: np.ndarray, radius: np.ndarray) -> np.ndarray:
        """Vectorized ``Topology.count_within``: per-row bisect_right with
        the same ``radius + 1e-12`` tolerance key.

        Exact rank trick: with ``uvals`` the sorted unique distances,
        ``rank(d) = searchsorted(uvals, d)`` and a row-offset augmented
        key ``row * K + rank`` (globally sorted because ``sdist`` is
        row-grouped and ascending within rows), the per-row bisect_right
        over distances becomes a single searchsorted over integer keys:
        entries of row ``u`` with ``d <= key`` are exactly those with
        ``rank < searchsorted(uvals, key, "right")``.
        """
        if kernels.use_numba():
            return kernels.get("count_within")(
                self.indptr,
                self.sdist,
                np.ascontiguousarray(U, dtype=np.int64),
                np.ascontiguousarray(radius, dtype=np.float64),
            )
        if self._rank_aug is None:
            self._uvals = np.unique(self.sdist)
            self._rank_K = np.int64(self._uvals.size + 1)
            self._rank_aug = (
                self._rowid * self._rank_K
                + np.searchsorted(self._uvals, self.sdist)
            )
        qr = np.searchsorted(self._uvals, radius + 1e-12, side="right")
        pos = np.searchsorted(
            self._rank_aug, U * self._rank_K + qr, side="left"
        )
        return pos - self.indptr[U]


class ColumnarView(GlobalView):
    """A :class:`GlobalView` that mirrors the state vector into columns.

    ``par`` (int64, -1 for None), ``costa`` (float64) and ``hopa``
    (int64) shadow the ``NodeState`` list; ``pdist_*`` / ``pe_etx_*``
    mirror the two parent-edge distance conventions the scalar code uses
    (raw matrix value — inf for a non-edge — in radius scans, 0.0 for a
    non-edge in chain walks).  ``version`` bumps on every *real*
    mutation (no-op applies and empty batches leave it alone) so the
    engine can cache per-snapshot derived arrays.

    The object-world derived structures the base class maintains
    per-move — children lists, the cycle census, member flags with their
    flagged-children counters — are demoted to *lazily rematerialized*
    views here: a batched commit (:meth:`commit_batch`) just invalidates
    them, and the first scalar-path read rebuilds them from the columns
    (children via :func:`derive_children`, the cycle census via
    pointer-jumping).  Flags are stored as a numpy bool column (the
    counters as an int64 column) so snapshots can alias them without a
    conversion pass.

    Every mutation also reports *snapshot dirt*: which top-2 rows
    (``_at_dirty`` / ``_ft_dirty``), link marginals (``_ml_dirty``) and
    price subtrees (``_price_roots``) went stale, plus a forest version
    (``_forest_ver``) for the Euler intervals.  The engine consumes and
    resets these on each snapshot build; events it cannot localize
    (cycles, flag re-derivation) set ``_snap_full`` instead.
    """

    def __init__(
        self,
        topo: Topology,
        states: Sequence[NodeState],
        csr: EdgeCsr,
        metric: CostMetric,
    ) -> None:
        super().__init__(topo, states)
        self.csr = csr
        self._col_metric = metric
        n = topo.n
        self.par = np.full(n, -1, dtype=np.int64)
        self.costa = np.empty(n, dtype=np.float64)
        self.hopa = np.empty(n, dtype=np.int64)
        self.pdist_raw = np.zeros(n, dtype=np.float64)
        self.pdist_edge = np.zeros(n, dtype=np.float64)
        self.pe_etx_raw = np.zeros(n, dtype=np.float64)
        self.pe_etx_edge = np.zeros(n, dtype=np.float64)
        for v, s in enumerate(self.states):
            self.costa[v] = s.cost
            self.hopa[v] = s.hop
            if s.parent is not None:
                self.par[v] = s.parent
                self._set_parent_edge(v, s.parent)
        self.version = 0
        self._forest_ver = 0
        self._snap_reset()

    # -- lazily rematerialized object mirrors --------------------------

    @property
    def _children(self) -> Dict[int, List[int]]:
        kids = self._children_obj
        if kids is None:
            kids = self._children_obj = derive_children(self.states)
        return kids

    @_children.setter
    def _children(self, value: Optional[Dict[int, List[int]]]) -> None:
        self._children_obj = value

    @property
    def _n_cycles(self) -> int:
        if self._cycles_stale:
            self._n_cycles_val = self._count_cycles_batch()
            self._cycles_stale = False
        return self._n_cycles_val

    @_n_cycles.setter
    def _n_cycles(self, value: int) -> None:
        self._n_cycles_val = value
        self._cycles_stale = False

    def _count_cycles_batch(self) -> int:
        """Parent-cycle census via pointer-jumping: after >= n doubling
        steps every chain has either hit a root (-1 absorbs) or landed
        *on* its cycle; counting distinct cycles is then a walk over the
        surviving representatives (cycles are rare and short in
        practice — the vector part does the O(n log n) work)."""
        par = self.par
        n = par.size
        r = par.copy()
        k = 1
        while k < n:
            idx = np.where(r >= 0, r, 0)
            r = np.where(r >= 0, r[idx], np.int64(-1))
            k *= 2
        reps = np.unique(r[r >= 0])
        states = self.states
        seen: Set[int] = set()
        cycles = 0
        for v in reps.tolist():
            if v in seen:
                continue
            cycles += 1
            seen.add(v)
            w = states[v].parent
            while w != v:
                seen.add(w)
                w = states[w].parent
        return cycles

    @property
    def _flags(self) -> np.ndarray:
        """Member flags as a numpy bool column (base class stores lists).

        Same lazy-materialization contract as the base property; the
        flagged-children counters become an int64 column built by one
        bincount.  Re-derivation invalidates any incremental snapshot
        (the per-move flip reports since the last build are void)."""
        if self._flags_cache is None:
            self._flags_cache = np.array(
                derive_flags(self.topo, self.states), dtype=bool
            )
            self._fcnt = None
            self._snap_full = True
        if self._fcnt is None and self._n_cycles == 0:
            par = self.par
            sel = (par >= 0) & self._flags_cache
            self._fcnt = np.bincount(
                par[sel], minlength=len(self.states)
            ).astype(np.int64)
        return self._flags_cache

    # ------------------------------------------------------------------

    def _set_parent_edge(self, v: int, p: int) -> None:
        i = self.csr.edge_slot(v, p)
        if i >= 0:
            d = float(self.csr.dist[i])
            e = self._col_metric.etx(d)
            self.pdist_raw[v] = d
            self.pdist_edge[v] = d
            self.pe_etx_raw[v] = e
            self.pe_etx_edge[v] = e
        else:
            # Matches the scalar conventions: radius scans read the dist
            # matrix (inf for a non-edge), chain walks price it as 0.0.
            self.pdist_raw[v] = math.inf
            self.pdist_edge[v] = 0.0
            self.pe_etx_raw[v] = math.inf
            self.pe_etx_edge[v] = 0.0

    def apply(self, v: int, new_state: NodeState) -> Optional[Tuple[int, ...]]:
        old = self.states[v]
        if new_state == old:
            return ()  # no-op: nothing changed, caches stay valid
        p_old, p_new = old.parent, new_state.parent
        out = super().apply(v, new_state)
        self.version += 1
        self.costa[v] = new_state.cost
        self.hopa[v] = new_state.hop
        self.par[v] = -1 if p_new is None else p_new
        if p_new is not None and p_old != p_new:
            self._set_parent_edge(v, p_new)
        # Snapshot dirt.  The all-children top-2 rows (``at``) depend
        # only on parent pointers and edge distances, so the endpoint
        # tracking is sound even when the flag walk reported "unknown".
        if p_old != p_new:
            self._forest_ver += 1
            if p_old is not None:
                self._at_dirty.add(p_old)
            if p_new is not None:
                self._at_dirty.add(p_new)
            if out is None:
                self._snap_full = True
            else:
                self._ml_dirty.add(v)
                self._price_roots.add(v)
                fl = self._flags_cache
                if fl is not None and fl[v]:
                    if p_old is not None:
                        self._ft_dirty.add(p_old)
                    if p_new is not None:
                        self._ft_dirty.add(p_new)
                for f in out:
                    self._price_roots.add(f)
                    pf = self.states[f].parent
                    if pf is not None:
                        self._ft_dirty.add(pf)
        elif p_old is None and new_state.cost != old.cost:
            # Chain walks read a node's advertised cost only at a
            # disconnected chain head: its subtree's prices are stale.
            self._price_roots.add(v)
        return out

    def commit_batch(
        self,
        va: np.ndarray,
        po: np.ndarray,
        pn: np.ndarray,
        new_states: Sequence[NodeState],
        track_edges: bool,
    ) -> None:
        """Scatter a whole activation step's applied updates at once.

        ``va`` are the updated nodes, ``po``/``pn`` their old/new parent
        columns (-1 for None).  Replaces per-move :meth:`apply` for the
        locally-coupled metrics: the object mirrors are invalidated (and
        lazily rebuilt on the next scalar-path read) instead of walked,
        and parent-edge columns are refreshed by one batched CSR lookup.
        ``track_edges`` gates the edge/top-2 bookkeeping nobody reads in
        hop/tx runs.  Bumps ``version`` exactly once.
        """
        states = self.states
        for v, s in zip(va.tolist(), new_states):
            states[v] = s
        self.par[va] = pn
        self.costa[va] = np.fromiter(
            (s.cost for s in new_states), np.float64, count=len(new_states)
        )
        self.hopa[va] = np.fromiter(
            (s.hop for s in new_states), np.int64, count=len(new_states)
        )
        moved = po != pn
        if moved.any():
            mv = va[moved]
            mp = pn[moved]
            att = mp >= 0
            if track_edges and att.any():
                slots = self.csr.edge_slots(mv[att], mp[att])
                hit = slots >= 0
                sl = np.where(hit, slots, 0)
                d = np.where(hit, self.csr.dist[sl], math.inf)
                e = np.where(hit, self.csr.etx()[sl], math.inf)
                self.pdist_raw[mv[att]] = d
                self.pe_etx_raw[mv[att]] = e
                self.pdist_edge[mv[att]] = np.where(hit, d, 0.0)
                self.pe_etx_edge[mv[att]] = np.where(hit, e, 0.0)
            if track_edges:
                old_p = po[moved]
                self._at_dirty.update(old_p[old_p >= 0].tolist())
                self._at_dirty.update(mp[att].tolist())
            self._forest_ver += 1
            self._snap_full = True
            self._children_obj = None
            self._cycles_stale = True
            self._desc_owner = None
            if self._flags_cache is not None:
                self._flags_cache = None
                self._fcnt = None
            self._flags_excl.clear()
            self._chain_memo.clear()
        self._price_memo.clear()
        self._price_memo_owner = None
        self.version += 1

    def _snap_reset(self) -> None:
        """Clear the snapshot dirt (called after each snapshot build)."""
        self._snap_full = False
        self._at_dirty: Set[int] = set()
        self._ft_dirty: Set[int] = set()
        self._ml_dirty: Set[int] = set()
        self._price_roots: Set[int] = set()


class _Snapshot:
    """Per-snapshot derived arrays (valid for one view version).

    ``kptr/kcnt/kbuf/roots`` are the parent-forest child CSR (with the
    chain walk's source cut) and ``forest_ver`` the
    :attr:`ColumnarView._forest_ver` they were built at; incremental
    updates reuse them while the forest is unchanged.
    """

    __slots__ = (
        "flags", "ft1", "ft1c", "ft2", "ft1e", "ft2e",
        "at1", "at1c", "at2", "at1e", "at2e",
        "ML", "Pd", "Pc", "tin", "tout",
        "kptr", "kcnt", "kbuf", "roots", "forest_ver",
    )


def _top2_scatter(
    kids: np.ndarray,
    par: np.ndarray,
    dist: np.ndarray,
    etxv: np.ndarray,
    r1: np.ndarray,
    c1: np.ndarray,
    r2: np.ndarray,
    e1: np.ndarray,
    e2: np.ndarray,
) -> None:
    """Scatter per-parent top-2 child distances (+ energies) for the
    given children into the ``r1/c1/r2/e1/e2`` rows of their parents.
    The lexsort key (parent, -dist, id) fully determines the order
    (ids are unique), so the result is input-order independent."""
    p = par[kids]
    d = dist[kids]
    order = np.lexsort((kids, -d, p))
    ks = kids[order]
    ps = p[order]
    ds = d[order]
    es = etxv[kids][order]
    first = np.ones(ks.size, dtype=bool)
    first[1:] = ps[1:] != ps[:-1]
    second = np.zeros(ks.size, dtype=bool)
    second[1:] = first[:-1] & (ps[1:] == ps[:-1])
    r1[ps[first]] = ds[first]
    c1[ps[first]] = ks[first]
    e1[ps[first]] = es[first]
    r2[ps[second]] = ds[second]
    e2[ps[second]] = es[second]


def _top2(
    n: int,
    kids: np.ndarray,
    par: np.ndarray,
    dist: np.ndarray,
    etxv: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-parent top-2 child distances (+ matching transmit energies).

    Excluding one child from a radius scan needs at most the runner-up:
    ``r1`` where the excluded child is not the argmax, else ``r2`` (tied
    maxima make the two equal, so either branch is value-correct).
    """
    r1 = np.zeros(n, dtype=np.float64)
    r2 = np.zeros(n, dtype=np.float64)
    e1 = np.zeros(n, dtype=np.float64)
    e2 = np.zeros(n, dtype=np.float64)
    c1 = np.full(n, -1, dtype=np.int64)
    if kids.size:
        _top2_scatter(kids, par, dist, etxv, r1, c1, r2, e1, e2)
    return r1, c1, r2, e1, e2


class ArrayRoundEngine(RoundEngine):
    """Round engine with batched columnar rule evaluation.

    Same constructor, entry points and trajectory semantics as
    :class:`RoundEngine`; only the per-step evaluation and commit paths
    differ.  Best paired with snapshot daemons (``synchronous``,
    ``distributed`` with a large ``k``): one snapshot's derived arrays
    serve the whole step.  Serial daemons re-derive per single-node step
    and are usually better served by the object engine — see the
    README's engine-selection notes.

    ``legacy_apply=True`` restores the pre-kernelized hot path (per-move
    object applies, from-scratch snapshots) — kept as the benchmark
    baseline for the batched/incremental speedup gate.

    :attr:`profile` accumulates per-stage wall-clock counters
    (``commit_s`` / ``snapshot_s`` / ``evaluate_s`` / ``fold_s`` /
    ``scalar_s``) and step/snapshot tallies across runs until
    :meth:`reset_profile`.
    """

    def __init__(
        self,
        topo: Topology,
        metric: CostMetric,
        daemon: Union[str, Daemon] = "synchronous",
        *,
        incremental: bool = False,
        rng: Optional[np.random.Generator] = None,
        legacy_apply: bool = False,
        **daemon_options: object,
    ) -> None:
        super().__init__(
            topo,
            metric,
            daemon,
            incremental=incremental,
            rng=rng,
            **daemon_options,
        )
        self.csr = EdgeCsr(topo, metric)
        t = type(metric)
        if t is HopMetric:
            self._kind = "hop"
        elif t is TxEnergyMetric:
            self._kind = "tx"
        elif t is EnergyAwareMetric:
            self._kind = "energy"
        elif t is FarthestChildMetric:
            self._kind = "farthest"
        else:
            self._kind = None  # unknown metric subclass: scalar evaluation
        self._legacy = bool(legacy_apply)
        self._snap_view: Optional[ColumnarView] = None
        self._snap_ver = -1
        self._snap: Optional[_Snapshot] = None
        self.reset_profile()

    def reset_profile(self) -> None:
        """Zero the per-stage profile counters."""
        self.profile = {
            "commit_s": 0.0,
            "snapshot_s": 0.0,
            "evaluate_s": 0.0,
            "fold_s": 0.0,
            "scalar_s": 0.0,
            "snapshots_full": 0,
            "snapshots_incremental": 0,
            "batch_steps": 0,
            "scalar_steps": 0,
        }

    # ------------------------------------------------------------------
    def _make_view(self, states: Sequence[NodeState]) -> ColumnarView:
        return ColumnarView(self.topo, states, self.csr, self.metric)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def _commit_step(
        self,
        view: GlobalView,
        step_idx: int,
        todo: Sequence[int],
        olds: Sequence[NodeState],
        news: Sequence[NodeState],
        dirty: Optional[Set[int]],
        next_dirty: Optional[Set[int]],
        pos: Dict[int, int],
    ) -> int:
        t0 = time.perf_counter()
        try:
            if (
                not self._legacy
                and todo
                and self._kind in ("hop", "tx", "farthest")
                and isinstance(view, ColumnarView)
            ):
                return self._commit_batch(
                    view, step_idx, todo, news, dirty, next_dirty, pos
                )
            return super()._commit_step(
                view, step_idx, todo, olds, news, dirty, next_dirty, pos
            )
        finally:
            self.profile["commit_s"] += time.perf_counter() - t0

    def _commit_batch(
        self,
        view: "ColumnarView",
        step_idx: int,
        todo: Sequence[int],
        news: Sequence[NodeState],
        dirty: Optional[Set[int]],
        next_dirty: Optional[Set[int]],
        pos: Dict[int, int],
    ) -> int:
        """Batched :meth:`RoundEngine._commit_step` for the locally-
        coupled metrics: the tolerant move test, the silent-rewrite
        test, the column scatter and the affected-set closure all run as
        array operations.  The chain-coupled metric (SS-SPST-E) keeps
        the scalar path — its dirty sets need the per-move flag-flip
        reports — but its applies feed the incremental snapshots.

        Exactness notes: ``approx_equals`` vectorizes as ``np.maximum``
        under errstate (costs are never NaN; an inf incumbent against an
        inf update gives ``|inf - inf| <= inf`` → False both ways), the
        dataclass inequality as per-column ``!=`` (None as -1), and the
        union of per-change radius balls equals the ball of the unioned
        seeds, so the dirty split matches the scalar loop node for node.
        """
        m = len(todo)
        va = np.asarray(todo, dtype=np.int64)
        po = view.par[va]
        co = view.costa[va]
        ho = view.hopa[va]
        pn = np.fromiter(
            (-1 if s.parent is None else s.parent for s in news),
            np.int64,
            count=m,
        )
        cn = np.fromiter((s.cost for s in news), np.float64, count=m)
        hn = np.fromiter((s.hop for s in news), np.int64, count=m)
        with np.errstate(invalid="ignore"):
            band = COST_TOL * np.maximum(np.abs(co), np.abs(cn))
            approx = (po == pn) & (ho == hn) & (np.abs(co - cn) <= band)
        n_moves = int(m - np.count_nonzero(approx))
        if self.daemon.parallel and self.daemon.overwrite:
            applied = (po != pn) | (co != cn) | (ho != hn)
        else:
            applied = ~approx
        idx = np.flatnonzero(applied)
        if idx.size == 0:
            return n_moves
        view.commit_batch(
            va[idx],
            po[idx],
            pn[idx],
            [news[i] for i in idx.tolist()],
            self._kind == "farthest",
        )
        if dirty is not None:
            mvd = po[idx] != pn[idx]
            ends = np.concatenate((po[idx][mvd], pn[idx][mvd]))
            seeds = np.unique(np.concatenate((va[idx], ends[ends >= 0])))
            for w in self._close_over(seeds):
                if pos.get(w, -1) > step_idx:
                    dirty.add(w)
                else:
                    next_dirty.add(w)
        return n_moves

    def _close_over(self, seeds: np.ndarray) -> Sequence[int]:
        """``_affected``'s dependency-radius closure around already-
        unioned seeds, as CSR frontier expansions."""
        radius = self.metric.dependency_radius
        if radius is None:
            return range(self.topo.n)
        indptr, nbr = self.csr.indptr, self.csr.nbr
        out = seeds
        frontier = seeds
        for _ in range(radius):
            cnts = indptr[frontier + 1] - indptr[frontier]
            tot = int(cnts.sum())
            if tot == 0:
                break
            offs = np.repeat(indptr[frontier], cnts) + (
                np.arange(tot, dtype=np.int64)
                - np.repeat(_excl_cumsum(cnts), cnts)
            )
            nxt = np.setdiff1d(nbr[offs], out)
            if nxt.size == 0:
                break
            out = np.union1d(out, nxt)
            frontier = nxt
        return out.tolist()

    # ------------------------------------------------------------------
    # Evaluation path
    # ------------------------------------------------------------------
    def _evaluate_step(self, view: GlobalView, todo: Sequence[int]) -> List[NodeState]:
        kind = self._kind
        if kind is None or not todo:
            return super()._evaluate_step(view, todo)
        if kind == "energy" and (
            view._n_cycles > 0
            or view.par[self.topo.source] >= 0
            or self.metric.UNFLAGGED_SHADOW != 0.0
        ):
            # Parent cycles make forest prefix scans unsound (the scalar
            # walk's cycle guard is per-candidate); a parented source cuts
            # the forest differently from the children map; a nonzero
            # shadow price re-enables unflagged marginals the vector path
            # drops.  All are rare/transient: evaluate this step scalar.
            t0 = time.perf_counter()
            out = super()._evaluate_step(view, todo)
            self.profile["scalar_s"] += time.perf_counter() - t0
            self.profile["scalar_steps"] += 1
            return out
        return self._evaluate_batch(view, todo, kind)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _snapshot(self, view: ColumnarView, kind: str) -> _Snapshot:
        if self._snap_view is view and self._snap_ver == view.version:
            return self._snap
        t0 = time.perf_counter()
        n = self.topo.n
        prev = self._snap if self._snap_view is view else None
        s: Optional[_Snapshot] = None
        if prev is not None and not self._legacy:
            # Incremental update: cheaper than a rebuild while the dirty
            # rows are a small fraction of the columns (either path is
            # exact; the threshold is pure heuristic).
            if kind == "farthest" and len(view._at_dirty) * 4 <= n:
                self._update_at(view, prev)
                s = prev
            elif (
                kind == "energy"
                and not view._snap_full
                and (
                    len(view._ft_dirty)
                    + len(view._ml_dirty)
                    + len(view._price_roots)
                )
                * 4
                <= n
            ):
                self._update_energy(view, prev)
                s = prev
        if s is None:
            s = _Snapshot()
            par = view.par
            if kind == "farthest":
                kids = np.flatnonzero(par >= 0)
                s.at1, s.at1c, s.at2, s.at1e, s.at2e = _top2(
                    n, kids, par, view.pdist_raw, view.pe_etx_raw
                )
            elif kind == "energy":
                if self._legacy:
                    flags = np.fromiter(view._flags, dtype=bool, count=n)
                    s.flags = flags
                    kids = np.flatnonzero((par >= 0) & flags)
                    s.ft1, s.ft1c, s.ft2, s.ft1e, s.ft2e = _top2(
                        n, kids, par, view.pdist_raw, view.pe_etx_raw
                    )
                    self._build_prices(view, s)
                else:
                    self._build_energy_full(view, s)
            self.profile["snapshots_full"] += 1
        else:
            self.profile["snapshots_incremental"] += 1
        view._snap_reset()
        self._snap_view = view
        self._snap_ver = view.version
        self._snap = s
        self.profile["snapshot_s"] += time.perf_counter() - t0
        return s

    # -- incremental updates -------------------------------------------
    def _update_at(self, view: ColumnarView, s: _Snapshot) -> None:
        """Refresh the all-children top-2 rows of the dirty parents
        (``at`` rows read only parent pointers and edge distances, so
        endpoint tracking stays sound through cycles and flag events)."""
        if not view._at_dirty:
            return
        dp = np.unique(
            np.fromiter(view._at_dirty, np.int64, count=len(view._at_dirty))
        )
        s.at1[dp] = 0.0
        s.at2[dp] = 0.0
        s.at1e[dp] = 0.0
        s.at2e[dp] = 0.0
        s.at1c[dp] = -1
        par = view.par
        att = np.flatnonzero(par >= 0)
        kids = att[np.isin(par[att], dp)]
        if kids.size:
            _top2_scatter(
                kids, par, view.pdist_raw, view.pe_etx_raw,
                s.at1, s.at1c, s.at2, s.at1e, s.at2e,
            )

    def _update_energy(self, view: ColumnarView, s: _Snapshot) -> None:
        """Re-derive only the stale snapshot rows.

        Staleness propagates in one direction: a parent move / flag flip
        dirties the endpoints' flagged top-2 rows (``_ft_dirty``); a
        changed top-2 row re-prices the marginals of exactly that
        parent's (current) children; a changed marginal or chain event
        re-prices exactly that node's subtree.  The sweep roots are the
        union; everything else is bitwise-unchanged by construction.
        """
        par = view.par
        flags = view._flags  # materializes counters; np bool column
        s.flags = flags
        if s.forest_ver != view._forest_ver:
            self._build_forest(view, s)
            levels = self._forest_levels(s)
            self._forest_intervals(view, s, levels)
            s.forest_ver = view._forest_ver
        kids_ft = np.empty(0, dtype=np.int64)
        if view._ft_dirty:
            dp = np.unique(
                np.fromiter(
                    view._ft_dirty, np.int64, count=len(view._ft_dirty)
                )
            )
            s.ft1[dp] = 0.0
            s.ft2[dp] = 0.0
            s.ft1e[dp] = 0.0
            s.ft2e[dp] = 0.0
            s.ft1c[dp] = -1
            kids_ft = self._gather_kids(s, dp)
            fk = kids_ft[flags[kids_ft]]
            if fk.size:
                _top2_scatter(
                    fk, par, view.pdist_raw, view.pe_etx_raw,
                    s.ft1, s.ft1c, s.ft2, s.ft1e, s.ft2e,
                )
        W = np.unique(
            np.concatenate(
                (
                    np.fromiter(
                        view._ml_dirty, np.int64, count=len(view._ml_dirty)
                    ),
                    kids_ft,
                )
            )
        )
        if W.size:
            s.ML[W] = 0.0
            att = W[(par[W] >= 0) & (W != self.topo.source)]
            if att.size:
                self._ml_fill(view, s, att)
        R = np.unique(
            np.concatenate(
                (
                    np.fromiter(
                        view._price_roots,
                        np.int64,
                        count=len(view._price_roots),
                    ),
                    W,
                )
            )
        )
        if R.size:
            self._sweep_prices(view, s, R)

    def _sweep_prices(
        self, view: ColumnarView, s: _Snapshot, R: np.ndarray
    ) -> None:
        """Recompute ``Pd``/``Pc`` for exactly the subtrees rooted at
        ``R``: prune nested roots with the Euler intervals (only the
        outermost survive, so every survivor's parent is provably
        outside all swept subtrees and its rows are clean), reseed the
        survivors from their parents, descend level by level."""
        tin, tout = s.tin, s.tout
        order = np.argsort(tin[R], kind="stable")
        keep: List[int] = []
        last_tout = -1
        for r in R[order].tolist():
            if tin[r] >= last_tout:
                keep.append(r)
                last_tout = int(tout[r])
        roots = np.asarray(keep, dtype=np.int64)
        par = view.par
        src = self.topo.source
        flags = s.flags
        rooted = par[roots] < 0
        rr = roots[rooted]
        if rr.size:
            base = np.where(rr == src, 0.0, view.costa[rr])
            s.Pd[rr] = base
            s.Pc[rr] = base
        at = roots[~rooted]
        if at.size:
            pk = par[at]
            s.Pd[at] = s.Pd[pk]
            s.Pc[at] = np.where(flags[pk], s.Pd[pk], s.Pc[pk]) + s.ML[at]
        frontier = roots
        while frontier.size:
            kids = self._gather_kids(s, frontier)
            if kids.size == 0:
                break
            pk = par[kids]
            s.Pd[kids] = s.Pd[pk]
            s.Pc[kids] = np.where(flags[pk], s.Pd[pk], s.Pc[pk]) + s.ML[kids]
            frontier = kids

    # -- full builds ---------------------------------------------------
    def _build_energy_full(self, view: ColumnarView, s: _Snapshot) -> None:
        n = self.topo.n
        par = view.par
        flags = view._flags
        s.flags = flags
        kids = np.flatnonzero((par >= 0) & flags)
        s.ft1, s.ft1c, s.ft2, s.ft1e, s.ft2e = _top2(
            n, kids, par, view.pdist_raw, view.pe_etx_raw
        )
        s.ML = np.zeros(n, dtype=np.float64)
        ids = np.arange(n, dtype=np.int64)
        att = np.flatnonzero((par >= 0) & (ids != self.topo.source))
        if att.size:
            self._ml_fill(view, s, att)
        self._build_forest(view, s)
        s.forest_ver = view._forest_ver
        if kernels.use_numba():
            s.Pd, s.Pc, s.tin, s.tout = kernels.get("forest_scan")(
                s.kptr, s.kcnt, s.kbuf, s.roots, self.topo.source,
                flags, s.ML, view.costa,
            )
        else:
            levels = self._forest_levels(s)
            self._scan_prices(view, s, levels)
            self._forest_intervals(view, s, levels)

    def _ml_fill(self, view: ColumnarView, s: _Snapshot, att: np.ndarray) -> None:
        """The link-marginal block over ``att`` (attached, non-source)
        rows: ``ML[w]`` is the marginal of link ``w -> parent(w)`` while
        the carried flag is alive.  Same expressions and floats whether
        called on all rows (full build) or a dirty subset."""
        csr = self.csr
        par = view.par
        p = par[att]
        d = view.pdist_edge[att]
        de = view.pe_etx_edge[att]
        r_wo = np.where(s.ft1c[p] == att, s.ft2[p], s.ft1[p])
        r_e = np.where(s.ft1c[p] == att, s.ft2e[p], s.ft1e[p])
        cnt_d = csr.count_within(p, d)
        cnt_r = csr.count_within(p, r_wo)
        e_rx = self.metric.e_rx
        with np.errstate(invalid="ignore"):
            ncar_d = de + cnt_d * e_rx
            ncar_r = np.where(r_wo > 0.0, r_e + cnt_r * e_rx, 0.0)
            s.ML[att] = np.where(d <= r_wo, 0.0, ncar_d - ncar_r)

    def _build_forest(self, view: ColumnarView, s: _Snapshot) -> None:
        """Child CSR of the parent forest.  The chain walk's source cut
        (``par_eff[src] = -1``) is a no-op here: the batch gate
        guarantees a detached source."""
        n = self.topo.n
        par = view.par
        att = np.flatnonzero(par >= 0)
        cnt = np.bincount(par[att], minlength=n).astype(np.int64)
        s.kcnt = cnt
        s.kptr = _excl_cumsum(cnt)
        s.kbuf = att[np.argsort(par[att], kind="stable")]
        s.roots = np.flatnonzero(par < 0)

    def _gather_kids(self, s: _Snapshot, parents: np.ndarray) -> np.ndarray:
        cnts = s.kcnt[parents]
        tot = int(cnts.sum())
        if tot == 0:
            return np.empty(0, dtype=np.int64)
        offs = np.repeat(s.kptr[parents], cnts) + (
            np.arange(tot, dtype=np.int64)
            - np.repeat(_excl_cumsum(cnts), cnts)
        )
        return s.kbuf[offs]

    def _forest_levels(self, s: _Snapshot) -> List[np.ndarray]:
        levels: List[np.ndarray] = []
        frontier = s.roots
        while frontier.size:
            kids = self._gather_kids(s, frontier)
            if kids.size == 0:
                break
            levels.append(kids)
            frontier = kids
        return levels

    def _scan_prices(
        self, view: ColumnarView, s: _Snapshot, levels: List[np.ndarray]
    ) -> None:
        """Root-to-leaf chain-price prefix scan, one level at a time —
        the exact accumulation order of the scalar walk's memo backfill,
        so the floats match bit for bit."""
        n = self.topo.n
        par = view.par
        src = self.topo.source
        flags = s.flags
        Pd = np.zeros(n, dtype=np.float64)
        Pc = np.zeros(n, dtype=np.float64)
        base = np.where(s.roots == src, 0.0, view.costa[s.roots])
        Pd[s.roots] = base
        Pc[s.roots] = base
        for kids in levels:
            pk = par[kids]
            Pd[kids] = Pd[pk]
            Pc[kids] = np.where(flags[pk], Pd[pk], Pc[pk]) + s.ML[kids]
        s.Pd = Pd
        s.Pc = Pc

    def _forest_intervals(
        self, view: ColumnarView, s: _Snapshot, levels: List[np.ndarray]
    ) -> None:
        """Euler tin/tout, vectorized: subtree sizes bottom-up, then
        preorder numbers level by level (a child starts one past its
        parent plus the sizes of its earlier siblings).  The numbering
        can differ from the scalar builder's (which pushes children onto
        a stack, visiting them reversed) — only interval *membership* is
        ever observed, and any consistent numbering yields the same
        verdicts."""
        n = self.topo.n
        par = view.par
        sz = np.ones(n, dtype=np.int64)
        for kids in reversed(levels):
            np.add.at(sz, par[kids], sz[kids])
        tin = np.zeros(n, dtype=np.int64)
        tin[s.roots] = _excl_cumsum(sz[s.roots])
        for kids in levels:
            pk = par[kids]
            gc = _excl_cumsum(sz[kids])
            firsts = np.ones(kids.size, dtype=bool)
            firsts[1:] = pk[1:] != pk[:-1]
            gi = np.flatnonzero(firsts)
            reps = np.diff(np.append(gi, kids.size))
            base = np.repeat(gc[gi], reps)
            tin[kids] = tin[pk] + 1 + (gc - base)
        s.tin = tin
        s.tout = tin + sz

    # -- legacy full price build (the PR-6 baseline) -------------------
    def _build_prices(self, view: ColumnarView, s: _Snapshot) -> None:
        """Live-world chain prices as a root-to-leaf prefix scan.

        Kept verbatim as the ``legacy_apply`` snapshot path (per-step
        from-scratch rebuild, Python DFS for the Euler intervals) — the
        baseline the deep-scale bench gates the incremental path
        against.
        """
        topo, metric, csr = self.topo, self.metric, self.csr
        n = topo.n
        par = view.par
        flags = s.flags
        src = topo.source
        ids = np.arange(n, dtype=np.int64)

        ML = np.zeros(n, dtype=np.float64)
        att = np.flatnonzero((par >= 0) & (ids != src))
        if att.size:
            p = par[att]
            d = view.pdist_edge[att]
            de = view.pe_etx_edge[att]
            r_wo = np.where(s.ft1c[p] == att, s.ft2[p], s.ft1[p])
            r_e = np.where(s.ft1c[p] == att, s.ft2e[p], s.ft1e[p])
            cnt_d = csr.count_within(p, d)
            cnt_r = csr.count_within(p, r_wo)
            e_rx = metric.e_rx
            with np.errstate(invalid="ignore"):
                ncar_d = de + cnt_d * e_rx
                ncar_r = np.where(r_wo > 0.0, r_e + cnt_r * e_rx, 0.0)
                ML[att] = np.where(d <= r_wo, 0.0, ncar_d - ncar_r)
        s.ML = ML

        # Parent forest with the chain-walk's source cut (the walk stops
        # at the source before reading its parent pointer).
        par_eff = par.copy()
        par_eff[src] = -1
        att_all = np.flatnonzero(par_eff >= 0)
        cnt = np.bincount(par_eff[att_all], minlength=n).astype(np.int64)
        fptr = np.concatenate(([0], np.cumsum(cnt))).astype(np.int64)
        forder = att_all[np.argsort(par_eff[att_all], kind="stable")]

        Pd = np.zeros(n, dtype=np.float64)
        Pc = np.zeros(n, dtype=np.float64)
        roots = np.flatnonzero(par_eff < 0)
        base = np.where(roots == src, 0.0, view.costa[roots])
        Pd[roots] = base
        Pc[roots] = base
        frontier = roots
        while True:
            lens = cnt[frontier]
            tot = int(lens.sum())
            if tot == 0:
                break
            offs = np.repeat(fptr[frontier], lens) + (
                np.arange(tot, dtype=np.int64)
                - np.repeat(_excl_cumsum(lens), lens)
            )
            kids = forder[offs]
            pk = par[kids]
            Pd[kids] = Pd[pk]
            Pc[kids] = np.where(flags[pk], Pd[pk], Pc[pk]) + ML[kids]
            frontier = kids
        s.Pd = Pd
        s.Pc = Pc

        # Euler intervals over the same forest: subtree membership tests
        # (loop candidates, correction zones) become interval checks.
        tin = np.zeros(n, dtype=np.int64)
        tout = np.zeros(n, dtype=np.int64)
        t = 0
        for root in roots.tolist():
            stack = [(root, False)]
            while stack:
                w, done = stack.pop()
                if done:
                    tout[w] = t
                    continue
                tin[w] = t
                t += 1
                stack.append((w, True))
                for c in forder[fptr[w]:fptr[w + 1]].tolist():
                    stack.append((c, False))
        s.tin = tin
        s.tout = tout

    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, view: ColumnarView, todo: Sequence[int], kind: str
    ) -> List[NodeState]:
        t_start = time.perf_counter()
        prof = self.profile
        snap0 = prof["snapshot_s"]
        fold0 = prof["fold_s"]
        topo, metric, csr = self.topo, self.metric, self.csr
        src = topo.source
        h_max = H_MAX(topo)
        oc_max = metric.infinity(topo)

        todo_arr = np.asarray(todo, dtype=np.int64)
        Vrow = todo_arr[todo_arr != src]
        n_rows = len(Vrow)
        results: List[Optional[NodeState]] = [None] * len(todo)
        if n_rows:
            counts = csr.indptr[Vrow + 1] - csr.indptr[Vrow]
            P = int(counts.sum())
        else:
            P = 0
        if P == 0:
            has = np.zeros(n_rows, dtype=bool)
            b_id = b_hop = np.zeros(n_rows, dtype=np.int64)
            b_oc = np.zeros(n_rows, dtype=np.float64)
        else:
            row_pair = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
            V_pair = Vrow[row_pair]
            slot = np.arange(P, dtype=np.int64) - np.repeat(
                _excl_cumsum(counts), counts
            )
            offs = np.repeat(csr.indptr[Vrow], counts) + slot
            U_pair = csr.nbr[offs]
            D_pair = csr.dist[offs]
            hopU = view.hopa[U_pair]
            valid = hopU < h_max

            oc = self._pair_costs(
                view, kind, Vrow, row_pair, V_pair, U_pair, D_pair, offs, valid
            )

            inc_b = U_pair == view.par[V_pair]
            hyst = metric.switch_hysteresis
            with np.errstate(invalid="ignore"):
                eff = np.where(inc_b, oc, oc * (1.0 + hyst))
            inc_pair = np.where(inc_b, 0, 1).astype(np.int64)

            has, b_id, b_oc, b_hop = self._fold(
                n_rows, row_pair, slot, valid,
                eff, oc, inc_pair, hopU, D_pair, U_pair, counts,
            )

        row = 0
        for i, v in enumerate(todo):
            if v == src:
                results[i] = NodeState(parent=None, cost=0.0, hop=0)
                continue
            if has[row]:
                results[i] = NodeState(
                    parent=int(b_id[row]),
                    cost=float(b_oc[row]),
                    hop=int(b_hop[row]) + 1,
                )
            else:
                results[i] = NodeState(parent=None, cost=oc_max, hop=h_max)
            row += 1
        prof["evaluate_s"] += (
            (time.perf_counter() - t_start)
            - (prof["snapshot_s"] - snap0)
            - (prof["fold_s"] - fold0)
        )
        prof["batch_steps"] += 1
        return results

    # ------------------------------------------------------------------
    def _pair_costs(
        self,
        view: "ColumnarView",
        kind: str,
        Vrow: np.ndarray,
        row_pair: np.ndarray,
        V_pair: np.ndarray,
        U_pair: np.ndarray,
        D_pair: np.ndarray,
        offs: np.ndarray,
        valid: np.ndarray,
    ) -> np.ndarray:
        metric, csr = self.metric, self.csr
        if kind == "hop":
            return view.costa[U_pair] + 1.0
        if kind == "tx":
            return view.costa[U_pair] + csr.etx()[offs]
        if kind == "farthest":
            s = self._snapshot(view, kind)
            etx_d = csr.etx()[offs]
            with np.errstate(invalid="ignore"):
                excl = s.at1c[U_pair] == V_pair
                r_wo = np.where(excl, s.at2[U_pair], s.at1[U_pair])
                r_we = np.where(excl, s.at2e[U_pair], s.at1e[U_pair])
                etx_with = np.where(D_pair > r_wo, etx_d, r_we)
                delta = (etx_with - r_we) + metric.e_rx
                return view.costa[U_pair] + delta
        # energy
        s = self._snapshot(view, kind)
        flags = s.flags
        tin, tout = s.tin, s.tout
        inf = metric.infinity(self.topo)
        etx_d = csr.etx()[offs]
        e_rx = metric.e_rx
        if kernels.use_numba():
            oc = kernels.get("energy_pair_costs")(
                V_pair, U_pair, D_pair, etx_d, flags,
                tin, tout, s.Pd, s.Pc,
                s.ft1, s.ft1c, s.ft2, s.ft1e, s.ft2e,
                csr.indptr, csr.sdist, e_rx, inf,
            )
        else:
            with np.errstate(invalid="ignore"):
                vfl = flags[V_pair]
                in_desc = (tin[V_pair] <= tin[U_pair]) & (
                    tin[U_pair] < tout[V_pair]
                )
                price = np.where(
                    vfl & ~flags[U_pair], s.Pc[U_pair], s.Pd[U_pair]
                )
                price = np.where(in_desc, inf, price)
                excl = s.ft1c[U_pair] == V_pair
                r_wo = np.where(excl, s.ft2[U_pair], s.ft1[U_pair])
                r_e = np.where(excl, s.ft2e[U_pair], s.ft1e[U_pair])
                cnt_d = csr.count_within(U_pair, D_pair)
                cnt_r = csr.count_within(U_pair, r_wo)
                ncar_d = etx_d + cnt_d * e_rx
                ncar_r = np.where(r_wo > 0.0, r_e + cnt_r * e_rx, 0.0)
                marg = np.where(D_pair <= r_wo, 0.0, ncar_d - ncar_r)
                delta = np.where(vfl, marg, 0.0)
                oc = price + delta

        # Correction zones: a flagged attached evaluator's detachment is
        # visible to chain reads below the first ancestor that keeps its
        # flag without it (``zr``); candidates inside zr's subtree are
        # re-priced through the scalar path (exact detached-world walk).
        # Everything outside reads only live values — the vector price is
        # already exact there.
        zlo = np.zeros(len(Vrow), dtype=np.int64)
        zhi = np.zeros(len(Vrow), dtype=np.int64)
        states = view.states
        members = self.topo.members
        fcnt = view._fcnt
        any_zone = False
        for r, v in enumerate(Vrow.tolist()):
            if not flags[v]:
                continue
            pv = states[v].parent
            if pv is None:
                continue
            w = pv
            last = pv
            while w is not None and w not in members and fcnt[w] <= 1:
                last = w
                w = states[w].parent
            zr = w if w is not None else last
            zlo[r] = tin[zr]
            zhi[r] = tout[zr]
            any_zone = True
        if any_zone:
            in_zone = (tin[U_pair] >= zlo[row_pair]) & (
                tin[U_pair] < zhi[row_pair]
            )
            for i in np.flatnonzero(in_zone & valid).tolist():
                oc[i] = metric.join_cost(view, int(V_pair[i]), int(U_pair[i]))
        return oc

    # ------------------------------------------------------------------
    def _fold(
        self,
        n_rows: int,
        row_pair: np.ndarray,
        slot: np.ndarray,
        valid: np.ndarray,
        eff: np.ndarray,
        oc: np.ndarray,
        inc_pair: np.ndarray,
        hopU: np.ndarray,
        D_pair: np.ndarray,
        U_pair: np.ndarray,
        counts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The sequential candidate fold of ``compute_update_local`` —
        numba: one compiled row-major loop; numpy: one masked pass per
        candidate slot in neighbor order."""
        t0 = time.perf_counter()
        try:
            if kernels.use_numba():
                return kernels.get("fold")(
                    _excl_cumsum(counts), counts,
                    np.ascontiguousarray(valid),
                    np.ascontiguousarray(eff, dtype=np.float64),
                    np.ascontiguousarray(oc, dtype=np.float64),
                    inc_pair, hopU, D_pair, U_pair, COST_TOL,
                )
            b_eff = np.zeros(n_rows, dtype=np.float64)
            b_oc = np.zeros(n_rows, dtype=np.float64)
            b_inc = np.zeros(n_rows, dtype=np.int64)
            b_hop = np.zeros(n_rows, dtype=np.int64)
            b_d = np.zeros(n_rows, dtype=np.float64)
            b_id = np.zeros(n_rows, dtype=np.int64)
            has = np.zeros(n_rows, dtype=bool)
            for j in range(int(counts.max())):
                sel = np.flatnonzero((slot == j) & valid)
                if not sel.size:
                    continue
                rw = row_pair[sel]
                ca = eff[sel]
                cb = b_eff[rw]
                with np.errstate(invalid="ignore"):
                    band = COST_TOL * np.maximum(np.abs(ca), np.abs(cb))
                    lt = ca < cb - band
                    gt = ca > cb + band
                tie = ~(lt | gt)
                ainc = inc_pair[sel]
                binc = b_inc[rw]
                ahop = hopU[sel]
                bhop = b_hop[rw]
                ad = D_pair[sel]
                bd = b_d[rw]
                au = U_pair[sel]
                bu = b_id[rw]
                lex = (ainc < binc) | (
                    (ainc == binc)
                    & (
                        (ahop < bhop)
                        | (
                            (ahop == bhop)
                            & ((ad < bd) | ((ad == bd) & (au < bu)))
                        )
                    )
                )
                take = np.flatnonzero(~has[rw] | lt | (tie & lex))
                if take.size:
                    rr = rw[take]
                    ss = sel[take]
                    b_eff[rr] = eff[ss]
                    b_oc[rr] = oc[ss]
                    b_inc[rr] = inc_pair[ss]
                    b_hop[rr] = hopU[ss]
                    b_d[rr] = D_pair[ss]
                    b_id[rr] = U_pair[ss]
                    has[rr] = True
            return has, b_id, b_oc, b_hop
        finally:
            self.profile["fold_s"] += time.perf_counter() - t0
