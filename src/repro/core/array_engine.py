"""Vectorized round engine: columnar state, batched rule evaluation.

:class:`ArrayRoundEngine` is a drop-in :class:`~repro.core.rounds.RoundEngine`
that rebuilds the round-model state as numpy columns — parent, cost, hop,
member flags and flagged-children counters — and evaluates each activation
step's whole dirty frontier as batched array operations instead of one
Python rule evaluation per node.  It exists for scale: the object engine
tops out around 10^3 nodes per study, the array engine takes the daemon
studies to 10^4–10^5 (see ``benchmarks/bench_deepscale.py``).

The contract is **bit-identical trajectories** with the object engine —
states, rounds, convergence verdict, cost history and move counts — under
every daemon and both evaluation modes.  That is only possible because the
vectorization replicates the scalar semantics operation for operation:

* the per-candidate costs are built from the *same* float64 values in the
  *same* order (per-edge transmit energies are precomputed once with the
  scalar radio model, then gathered — never recomputed with vector
  transcendentals, whose last-ulp behaviour may differ);
* the sequential incumbent/hop/id tie-break fold of ``rules._better`` is
  reproduced as masked passes over candidate *slots* in neighbor order,
  preserving the fold's non-commutative tolerant-comparison semantics;
* SS-SPST-E's chain pricing becomes a prefix scan over the parent forest:
  two per-node price columns (``Pd`` — carried flag dead, ``Pc`` —
  carried flag alive) are propagated root-to-leaf per snapshot, exactly
  mirroring the top-down accumulation of
  :meth:`~repro.core.views.GlobalView.path_price`.

Where exact vectorization is not sound, the engine *narrows* instead of
approximating: evaluators whose detachment is visible to chain reads
(flagged, attached) re-price only the candidates inside their correction
zone — the subtree of the first ancestor that keeps its flag without them
— through the scalar path; snapshots with parent cycles (arbitrary
illegitimate states) or a parented source fall back to scalar evaluation
for the affected steps.  Adaptive daemons (adversarial) schedule against
live probes and always use the scalar path.

Select it through ``engine_for(..., engine="array")``, the campaign
``engine`` scenario knob, or ``--engine array`` on the CLI.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.daemons import Daemon
from repro.core.metrics import (
    CostMetric,
    EnergyAwareMetric,
    FarthestChildMetric,
    HopMetric,
    TxEnergyMetric,
)
from repro.core.rounds import RoundEngine
from repro.core.rules import COST_TOL, H_MAX
from repro.core.state import NodeState
from repro.core.views import GlobalView
from repro.graph.topology import Topology


def _excl_cumsum(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (the start offset of each group)."""
    out = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


class EdgeCsr:
    """Compressed adjacency with per-edge scalar-exact transmit energies.

    Row order matches ``topo.neighbors(v)`` exactly (the rule's candidate
    fold is order-sensitive), and rows are id-sorted, so membership
    lookups are binary searches.  ``sdist`` is the per-row distance-sorted
    copy backing the vectorized in-range counting (same values as
    :meth:`Topology.count_within` bisects over).
    """

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        self.n = topo.n
        provided = getattr(topo, "csr_arrays", None)
        if provided is not None:
            self.indptr, self.nbr, self.dist = provided()
        else:
            rows = [topo.neighbors(v) for v in range(topo.n)]
            counts = np.array([len(r) for r in rows], dtype=np.int64)
            self.indptr = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            self.nbr = np.array(
                [u for r in rows for u in r], dtype=np.int64
            )
            self.dist = np.array(
                [float(topo.dist[v, u]) for v, r in enumerate(rows) for u in r],
                dtype=np.float64,
            )
        rowid = np.repeat(
            np.arange(self.n, dtype=np.int64),
            np.diff(self.indptr),
        )
        order = np.lexsort((self.dist, rowid))
        self.sdist = self.dist[order]
        self._metric = metric
        self._etx: Optional[np.ndarray] = None

    def etx(self) -> np.ndarray:
        """Per-edge per-bit transmit energy, computed with the *scalar*
        radio model once (vector pow may differ in the last ulp)."""
        if self._etx is None:
            m = self._metric
            self._etx = np.array(
                [m.etx(float(d)) for d in self.dist], dtype=np.float64
            )
        return self._etx

    def edge_slot(self, v: int, u: int) -> int:
        """CSR position of edge (v, u), or -1 when absent."""
        i0, i1 = int(self.indptr[v]), int(self.indptr[v + 1])
        i = i0 + int(np.searchsorted(self.nbr[i0:i1], u))
        if i < i1 and int(self.nbr[i]) == u:
            return i
        return -1

    def count_within(self, U: np.ndarray, radius: np.ndarray) -> np.ndarray:
        """Vectorized ``Topology.count_within``: per-row bisect_right with
        the same ``radius + 1e-12`` tolerance key."""
        key = radius + 1e-12
        lo = self.indptr[U].astype(np.int64)
        hi = self.indptr[U + 1].astype(np.int64)
        base = lo.copy()
        sd = self.sdist
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            vals = sd[np.where(active, mid, 0)]
            go = active & (vals <= key)
            lo = np.where(go, mid + 1, lo)
            hi = np.where(active & ~go, mid, hi)
            active = lo < hi
        return lo - base


class ColumnarView(GlobalView):
    """A :class:`GlobalView` that also maintains columnar state.

    ``par`` (-1 for detached), ``costa``, ``hopa`` mirror the state
    vector; ``pdist_raw``/``pdist_edge`` and their transmit energies
    mirror the two parent-edge distance conventions the scalar code uses
    (raw matrix value — inf for a non-edge — in radius scans, 0.0 for a
    non-edge in chain walks).  ``version`` bumps on every apply so the
    engine can cache per-snapshot derived arrays.
    """

    def __init__(
        self,
        topo: Topology,
        states: Sequence[NodeState],
        csr: EdgeCsr,
        metric: CostMetric,
    ) -> None:
        super().__init__(topo, states)
        self.csr = csr
        self._col_metric = metric
        n = topo.n
        self.par = np.full(n, -1, dtype=np.int64)
        self.costa = np.empty(n, dtype=np.float64)
        self.hopa = np.empty(n, dtype=np.int64)
        self.pdist_raw = np.zeros(n, dtype=np.float64)
        self.pdist_edge = np.zeros(n, dtype=np.float64)
        self.pe_etx_raw = np.zeros(n, dtype=np.float64)
        self.pe_etx_edge = np.zeros(n, dtype=np.float64)
        for v, s in enumerate(self.states):
            self.costa[v] = s.cost
            self.hopa[v] = s.hop
            if s.parent is not None:
                self.par[v] = s.parent
                self._set_parent_edge(v, s.parent)
        self.version = 0

    def _set_parent_edge(self, v: int, p: int) -> None:
        i = self.csr.edge_slot(v, p)
        if i >= 0:
            d = float(self.csr.dist[i])
            e = self._col_metric.etx(d)
            self.pdist_raw[v] = d
            self.pdist_edge[v] = d
            self.pe_etx_raw[v] = e
            self.pe_etx_edge[v] = e
        else:
            # Matches the scalar conventions: radius scans read the dist
            # matrix (inf for a non-edge), chain walks price it as 0.0.
            self.pdist_raw[v] = math.inf
            self.pdist_edge[v] = 0.0
            self.pe_etx_raw[v] = math.inf
            self.pe_etx_edge[v] = 0.0

    def apply(self, v: int, new_state: NodeState):
        out = super().apply(v, new_state)
        self.version += 1
        self.costa[v] = new_state.cost
        self.hopa[v] = new_state.hop
        p = new_state.parent
        self.par[v] = -1 if p is None else p
        if p is not None:
            self._set_parent_edge(v, p)
        return out


class _Snapshot:
    """Per-snapshot derived arrays (valid for one view version)."""

    __slots__ = (
        "flags", "ft1", "ft1c", "ft2", "ft1e", "ft2e",
        "at1", "at1c", "at2", "at1e", "at2e",
        "ML", "Pd", "Pc", "tin", "tout",
    )


def _top2(
    n: int,
    kids: np.ndarray,
    par: np.ndarray,
    dist: np.ndarray,
    etxv: np.ndarray,
):
    """Per-parent top-2 child distances (+ matching transmit energies).

    Excluding one child from a radius scan needs at most the runner-up:
    ``r1`` where the excluded child is not the argmax, else ``r2`` (tied
    maxima make the two equal, so either branch is value-correct).
    """
    r1 = np.zeros(n, dtype=np.float64)
    r2 = np.zeros(n, dtype=np.float64)
    e1 = np.zeros(n, dtype=np.float64)
    e2 = np.zeros(n, dtype=np.float64)
    c1 = np.full(n, -1, dtype=np.int64)
    if kids.size:
        p = par[kids]
        d = dist[kids]
        order = np.lexsort((kids, -d, p))
        ks = kids[order]
        ps = p[order]
        ds = d[order]
        es = etxv[kids][order]
        first = np.ones(ks.size, dtype=bool)
        first[1:] = ps[1:] != ps[:-1]
        second = np.zeros(ks.size, dtype=bool)
        second[1:] = first[:-1] & (ps[1:] == ps[:-1])
        r1[ps[first]] = ds[first]
        c1[ps[first]] = ks[first]
        e1[ps[first]] = es[first]
        r2[ps[second]] = ds[second]
        e2[ps[second]] = es[second]
    return r1, c1, r2, e1, e2


class ArrayRoundEngine(RoundEngine):
    """Round engine with batched columnar rule evaluation.

    Same constructor, entry points and trajectory semantics as
    :class:`RoundEngine`; only the per-step evaluation differs.  Best
    paired with snapshot daemons (``synchronous``, ``distributed`` with a
    large ``k``): one snapshot's derived arrays serve the whole step.
    Serial daemons re-derive per single-node step and are usually better
    served by the object engine — see the README's engine-selection notes.
    """

    def __init__(
        self,
        topo: Topology,
        metric: CostMetric,
        daemon: Union[str, Daemon] = "synchronous",
        *,
        incremental: bool = False,
        rng: Optional[np.random.Generator] = None,
        **daemon_options,
    ) -> None:
        super().__init__(
            topo,
            metric,
            daemon,
            incremental=incremental,
            rng=rng,
            **daemon_options,
        )
        self.csr = EdgeCsr(topo, metric)
        t = type(metric)
        if t is HopMetric:
            self._kind = "hop"
        elif t is TxEnergyMetric:
            self._kind = "tx"
        elif t is EnergyAwareMetric:
            self._kind = "energy"
        elif t is FarthestChildMetric:
            self._kind = "farthest"
        else:
            self._kind = None  # unknown metric subclass: scalar evaluation
        self._snap_view: Optional[ColumnarView] = None
        self._snap_ver = -1
        self._snap: Optional[_Snapshot] = None

    # ------------------------------------------------------------------
    def _make_view(self, states: Sequence[NodeState]) -> ColumnarView:
        return ColumnarView(self.topo, states, self.csr, self.metric)

    # ------------------------------------------------------------------
    def _evaluate_step(self, view: GlobalView, todo: Sequence[int]) -> List[NodeState]:
        kind = self._kind
        if kind is None or not todo:
            return super()._evaluate_step(view, todo)
        if kind == "energy" and (
            view._n_cycles > 0
            or view.par[self.topo.source] >= 0
            or self.metric.UNFLAGGED_SHADOW != 0.0
        ):
            # Parent cycles make forest prefix scans unsound (the scalar
            # walk's cycle guard is per-candidate); a parented source cuts
            # the forest differently from the children map; a nonzero
            # shadow price re-enables unflagged marginals the vector path
            # drops.  All are rare/transient: evaluate this step scalar.
            return super()._evaluate_step(view, todo)
        return self._evaluate_batch(view, todo, kind)

    # ------------------------------------------------------------------
    def _snapshot(self, view: ColumnarView, kind: str) -> _Snapshot:
        if self._snap_view is view and self._snap_ver == view.version:
            return self._snap
        n = self.topo.n
        s = _Snapshot()
        par = view.par
        if kind == "farthest":
            kids = np.flatnonzero(par >= 0)
            s.at1, s.at1c, s.at2, s.at1e, s.at2e = _top2(
                n, kids, par, view.pdist_raw, view.pe_etx_raw
            )
        elif kind == "energy":
            flags = np.fromiter(view._flags, dtype=bool, count=n)
            s.flags = flags
            kids = np.flatnonzero((par >= 0) & flags)
            s.ft1, s.ft1c, s.ft2, s.ft1e, s.ft2e = _top2(
                n, kids, par, view.pdist_raw, view.pe_etx_raw
            )
            self._build_prices(view, s)
        self._snap_view = view
        self._snap_ver = view.version
        self._snap = s
        return s

    def _build_prices(self, view: ColumnarView, s: _Snapshot) -> None:
        """Live-world chain prices as a root-to-leaf prefix scan.

        ``ML[w]`` is the marginal of link ``w -> parent(w)`` while the
        carried flag is alive; ``Pd``/``Pc`` propagate
        ``price(w) = price(parent) [+ ML[w]]`` top-down — the exact
        accumulation order of the scalar walk's memo backfill, so the
        floats match bit for bit.
        """
        topo, metric, csr = self.topo, self.metric, self.csr
        n = topo.n
        par = view.par
        flags = s.flags
        src = topo.source
        ids = np.arange(n, dtype=np.int64)

        ML = np.zeros(n, dtype=np.float64)
        att = np.flatnonzero((par >= 0) & (ids != src))
        if att.size:
            p = par[att]
            d = view.pdist_edge[att]
            de = view.pe_etx_edge[att]
            r_wo = np.where(s.ft1c[p] == att, s.ft2[p], s.ft1[p])
            r_e = np.where(s.ft1c[p] == att, s.ft2e[p], s.ft1e[p])
            cnt_d = csr.count_within(p, d)
            cnt_r = csr.count_within(p, r_wo)
            e_rx = metric.e_rx
            with np.errstate(invalid="ignore"):
                ncar_d = de + cnt_d * e_rx
                ncar_r = np.where(r_wo > 0.0, r_e + cnt_r * e_rx, 0.0)
                ML[att] = np.where(d <= r_wo, 0.0, ncar_d - ncar_r)
        s.ML = ML

        # Parent forest with the chain-walk's source cut (the walk stops
        # at the source before reading its parent pointer).
        par_eff = par.copy()
        par_eff[src] = -1
        att_all = np.flatnonzero(par_eff >= 0)
        cnt = np.bincount(par_eff[att_all], minlength=n).astype(np.int64)
        fptr = np.concatenate(([0], np.cumsum(cnt))).astype(np.int64)
        forder = att_all[np.argsort(par_eff[att_all], kind="stable")]

        Pd = np.zeros(n, dtype=np.float64)
        Pc = np.zeros(n, dtype=np.float64)
        roots = np.flatnonzero(par_eff < 0)
        base = np.where(roots == src, 0.0, view.costa[roots])
        Pd[roots] = base
        Pc[roots] = base
        frontier = roots
        while True:
            lens = cnt[frontier]
            tot = int(lens.sum())
            if tot == 0:
                break
            offs = np.repeat(fptr[frontier], lens) + (
                np.arange(tot, dtype=np.int64)
                - np.repeat(_excl_cumsum(lens), lens)
            )
            kids = forder[offs]
            pk = par[kids]
            Pd[kids] = Pd[pk]
            Pc[kids] = np.where(flags[pk], Pd[pk], Pc[pk]) + ML[kids]
            frontier = kids
        s.Pd = Pd
        s.Pc = Pc

        # Euler intervals over the same forest: subtree membership tests
        # (loop candidates, correction zones) become interval checks.
        tin = np.zeros(n, dtype=np.int64)
        tout = np.zeros(n, dtype=np.int64)
        t = 0
        for root in roots.tolist():
            stack = [(root, False)]
            while stack:
                w, done = stack.pop()
                if done:
                    tout[w] = t
                    continue
                tin[w] = t
                t += 1
                stack.append((w, True))
                for c in forder[fptr[w]:fptr[w + 1]].tolist():
                    stack.append((c, False))
        s.tin = tin
        s.tout = tout

    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, view: ColumnarView, todo: Sequence[int], kind: str
    ) -> List[NodeState]:
        topo, metric, csr = self.topo, self.metric, self.csr
        src = topo.source
        h_max = H_MAX(topo)
        oc_max = metric.infinity(topo)

        todo_arr = np.asarray(todo, dtype=np.int64)
        Vrow = todo_arr[todo_arr != src]
        n_rows = len(Vrow)
        results: List[Optional[NodeState]] = [None] * len(todo)
        if n_rows:
            counts = csr.indptr[Vrow + 1] - csr.indptr[Vrow]
            P = int(counts.sum())
        else:
            P = 0
        if P == 0:
            has = np.zeros(n_rows, dtype=bool)
            b_id = b_hop = np.zeros(n_rows, dtype=np.int64)
            b_oc = np.zeros(n_rows, dtype=np.float64)
        else:
            row_pair = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
            V_pair = Vrow[row_pair]
            slot = np.arange(P, dtype=np.int64) - np.repeat(
                _excl_cumsum(counts), counts
            )
            offs = np.repeat(csr.indptr[Vrow], counts) + slot
            U_pair = csr.nbr[offs]
            D_pair = csr.dist[offs]
            hopU = view.hopa[U_pair]
            valid = hopU < h_max

            oc = self._pair_costs(
                view, kind, Vrow, row_pair, V_pair, U_pair, D_pair, offs, valid
            )

            inc_b = U_pair == view.par[V_pair]
            hyst = metric.switch_hysteresis
            with np.errstate(invalid="ignore"):
                eff = np.where(inc_b, oc, oc * (1.0 + hyst))
            inc_pair = np.where(inc_b, 0, 1).astype(np.int64)

            has, b_id, b_oc, b_hop = self._fold(
                n_rows, row_pair, slot, valid,
                eff, oc, inc_pair, hopU, D_pair, U_pair,
                int(counts.max()),
            )

        row = 0
        for i, v in enumerate(todo):
            if v == src:
                results[i] = NodeState(parent=None, cost=0.0, hop=0)
                continue
            if has[row]:
                results[i] = NodeState(
                    parent=int(b_id[row]),
                    cost=float(b_oc[row]),
                    hop=int(b_hop[row]) + 1,
                )
            else:
                results[i] = NodeState(parent=None, cost=oc_max, hop=h_max)
            row += 1
        return results

    # ------------------------------------------------------------------
    def _pair_costs(
        self, view, kind, Vrow, row_pair, V_pair, U_pair, D_pair, offs, valid
    ) -> np.ndarray:
        metric, csr = self.metric, self.csr
        if kind == "hop":
            return view.costa[U_pair] + 1.0
        if kind == "tx":
            return view.costa[U_pair] + csr.etx()[offs]
        if kind == "farthest":
            s = self._snapshot(view, kind)
            etx_d = csr.etx()[offs]
            with np.errstate(invalid="ignore"):
                excl = s.at1c[U_pair] == V_pair
                r_wo = np.where(excl, s.at2[U_pair], s.at1[U_pair])
                r_we = np.where(excl, s.at2e[U_pair], s.at1e[U_pair])
                etx_with = np.where(D_pair > r_wo, etx_d, r_we)
                delta = (etx_with - r_we) + metric.e_rx
                return view.costa[U_pair] + delta
        # energy
        s = self._snapshot(view, kind)
        flags = s.flags
        tin, tout = s.tin, s.tout
        inf = metric.infinity(self.topo)
        etx_d = csr.etx()[offs]
        e_rx = metric.e_rx
        with np.errstate(invalid="ignore"):
            vfl = flags[V_pair]
            in_desc = (tin[V_pair] <= tin[U_pair]) & (tin[U_pair] < tout[V_pair])
            price = np.where(vfl & ~flags[U_pair], s.Pc[U_pair], s.Pd[U_pair])
            price = np.where(in_desc, inf, price)
            excl = s.ft1c[U_pair] == V_pair
            r_wo = np.where(excl, s.ft2[U_pair], s.ft1[U_pair])
            r_e = np.where(excl, s.ft2e[U_pair], s.ft1e[U_pair])
            cnt_d = csr.count_within(U_pair, D_pair)
            cnt_r = csr.count_within(U_pair, r_wo)
            ncar_d = etx_d + cnt_d * e_rx
            ncar_r = np.where(r_wo > 0.0, r_e + cnt_r * e_rx, 0.0)
            marg = np.where(D_pair <= r_wo, 0.0, ncar_d - ncar_r)
            delta = np.where(vfl, marg, 0.0)
            oc = price + delta

        # Correction zones: a flagged attached evaluator's detachment is
        # visible to chain reads below the first ancestor that keeps its
        # flag without it (``zr``); candidates inside zr's subtree are
        # re-priced through the scalar path (exact detached-world walk).
        # Everything outside reads only live values — the vector price is
        # already exact there.
        zlo = np.zeros(len(Vrow), dtype=np.int64)
        zhi = np.zeros(len(Vrow), dtype=np.int64)
        states = view.states
        members = self.topo.members
        fcnt = view._fcnt
        any_zone = False
        for r, v in enumerate(Vrow.tolist()):
            if not flags[v]:
                continue
            pv = states[v].parent
            if pv is None:
                continue
            w = pv
            last = pv
            while w is not None and w not in members and fcnt[w] <= 1:
                last = w
                w = states[w].parent
            zr = w if w is not None else last
            zlo[r] = tin[zr]
            zhi[r] = tout[zr]
            any_zone = True
        if any_zone:
            in_zone = (tin[U_pair] >= zlo[row_pair]) & (
                tin[U_pair] < zhi[row_pair]
            )
            for i in np.flatnonzero(in_zone & valid).tolist():
                oc[i] = metric.join_cost(view, int(V_pair[i]), int(U_pair[i]))
        return oc

    # ------------------------------------------------------------------
    def _fold(
        self, n_rows, row_pair, slot, valid,
        eff, oc, inc_pair, hopU, D_pair, U_pair, maxdeg,
    ):
        """The sequential candidate fold of ``compute_update_local``, one
        masked pass per candidate slot in neighbor order."""
        b_eff = np.zeros(n_rows, dtype=np.float64)
        b_oc = np.zeros(n_rows, dtype=np.float64)
        b_inc = np.zeros(n_rows, dtype=np.int64)
        b_hop = np.zeros(n_rows, dtype=np.int64)
        b_d = np.zeros(n_rows, dtype=np.float64)
        b_id = np.zeros(n_rows, dtype=np.int64)
        has = np.zeros(n_rows, dtype=bool)
        for j in range(maxdeg):
            sel = np.flatnonzero((slot == j) & valid)
            if not sel.size:
                continue
            rw = row_pair[sel]
            ca = eff[sel]
            cb = b_eff[rw]
            with np.errstate(invalid="ignore"):
                band = COST_TOL * np.maximum(np.abs(ca), np.abs(cb))
                lt = ca < cb - band
                gt = ca > cb + band
            tie = ~(lt | gt)
            ainc = inc_pair[sel]
            binc = b_inc[rw]
            ahop = hopU[sel]
            bhop = b_hop[rw]
            ad = D_pair[sel]
            bd = b_d[rw]
            au = U_pair[sel]
            bu = b_id[rw]
            lex = (ainc < binc) | (
                (ainc == binc)
                & (
                    (ahop < bhop)
                    | (
                        (ahop == bhop)
                        & ((ad < bd) | ((ad == bd) & (au < bu)))
                    )
                )
            )
            take = np.flatnonzero(~has[rw] | lt | (tie & lex))
            if take.size:
                rr = rw[take]
                ss = sel[take]
                b_eff[rr] = eff[ss]
                b_oc[rr] = oc[ss]
                b_inc[rr] = inc_pair[ss]
                b_hop[rr] = hopU[ss]
                b_d[rr] = D_pair[ss]
                b_id[rr] = U_pair[ss]
                has[rr] = True
        return has, b_id, b_oc, b_hop
