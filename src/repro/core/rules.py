"""The guarded self-stabilizing update rule (paper section 5).

For a non-root node ``v`` the rule reads the neighbor states through a
:class:`~repro.core.views.NodeView` and computes:

* ``N1(v)`` — neighbors whose hop count is below ``H_max = |V|`` (nodes
  trapped in a loop count themselves up to ``H_max`` and drop out of every
  ``N1`` set, which is how count-to-infinity is broken — Lemma 3);
* ``N2(v)`` — the members of ``N1(v)`` minimizing ``oc(v, u)``;
* the new state: parent = the chosen element of ``N2(v)`` (ties prefer the
  incumbent parent, then the lower advertised hop, then the smaller id),
  cost = ``oc(v, parent)``, hop = parent's hop + 1.

If ``N1(v)`` is empty the node declares itself disconnected:
``(None, OC_max, H_max)``.  The root's state is the constant
``(None, 0, 0)``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.metrics import CostMetric
from repro.core.state import NodeState
from repro.core.views import NodeView
from repro.graph.topology import Topology
from repro.util.ids import NodeId

#: relative tolerance for cost comparisons: costs within this *relative*
#: band are ties, resolved by the incumbent-parent / hop / id tie-breaks.
#: Purely relative — never an absolute floor — so the tie band is
#: invariant under uniform rescaling of the radio constants (per-bit
#: energy units are arbitrary).  Sized to the metric's dynamic range:
#: float64 chain sums over up to ~10^5 terms accumulate ≲1e-11 relative
#: error, and no two physically distinct parent choices in a geometric
#: deployment differ by less than ~1e-6 relative, so 1e-9 sits safely
#: between fp noise and real cost structure at every unit scale.
COST_TOL = 1e-9


def H_MAX(topo: Topology) -> int:
    """Maximum admissible hop count: the node count ``|V|``."""
    return topo.n


def compute_update(
    topo: Topology,
    metric: CostMetric,
    view: NodeView,
    v: NodeId,
) -> NodeState:
    """Return the state the rule assigns to ``v`` given the current view."""
    return compute_update_local(
        metric,
        view,
        v,
        is_root=(v == topo.source),
        h_max=H_MAX(topo),
        oc_max=metric.infinity(topo),
        hysteresis=metric.switch_hysteresis,
    )


def compute_update_local(
    metric: CostMetric,
    view: NodeView,
    v: NodeId,
    is_root: bool,
    h_max: int,
    oc_max: float,
    hysteresis: float = 0.0,
) -> NodeState:
    """Topology-free form of the rule, used directly by the DES protocol
    (a real node knows only ``|V|`` and ``OC_max`` as scenario constants,
    plus whatever its beacons delivered into the view).

    ``hysteresis`` is route-flap damping: an alternative parent must beat
    the incumbent's cost by this *relative* margin to win (multiplicative,
    hence scale-invariant).  The DES agents pass their configured
    ``switch_threshold`` because beacon-carried state is up to one
    interval stale; the round model passes the metric's
    ``switch_hysteresis`` — 0 for the exact-potential metrics (hop, tx),
    a deliberate margin for the non-potential F/E metrics whose
    best-response dynamics otherwise admit persistent limit cycles (see
    ``docs/convergence.md``).
    """
    if is_root:
        return NodeState(parent=None, cost=0.0, hop=0)

    current_parent = view.state_of(v).parent

    best: Optional[Tuple] = None
    for u in view.neighbors_of(v):
        su = view.state_of(u)
        if su.hop >= h_max:  # not usefully connected (N1 exclusion)
            continue
        oc = metric.join_cost(view, v, u)
        effective = oc if u == current_parent else oc * (1.0 + hysteresis)
        key = (effective, 0 if u == current_parent else 1, su.hop, view.dist(v, u), u)
        if best is None or _better(key, best[0]):
            best = (key, oc, su.hop, u)

    if best is None:
        return NodeState(parent=None, cost=oc_max, hop=h_max)

    _, oc, hop_u, u = best
    return NodeState(parent=u, cost=oc, hop=hop_u + 1)


def _better(a: Tuple, b: Tuple) -> bool:
    """Lexicographic comparison with tolerant cost equality.

    Costs within ``COST_TOL`` (relative) are treated as equal so the
    incumbent-parent / lower-hop / smaller-id tie-breaks take over.  The
    band is purely relative (no absolute floor): an absolute floor makes
    the tie band unit-dependent — ~0.1%-relative at microjoule scale but
    1e-9-relative at joule scale — so rescaling the radio constants
    changed which parents tied and hence the chosen tree.
    """
    ca, cb = a[0], b[0]
    scale = max(abs(ca), abs(cb))
    if ca < cb - COST_TOL * scale:
        return True
    if ca > cb + COST_TOL * scale:
        return False
    return a[1:] < b[1:]


def guard_violated(
    topo: Topology,
    metric: CostMetric,
    view: NodeView,
    v: NodeId,
) -> bool:
    """Whether ``v``'s current state differs from what the rule computes."""
    return not view.state_of(v).approx_equals(
        compute_update(topo, metric, view, v), tol=COST_TOL
    )
