"""Information views the update rule reads.

The self-stabilizing rule at node ``v`` only needs *local* information about
each neighbor ``u``:

* ``u``'s advertised state (cost, hop),
* the distance ``d(v, u)``,
* ``u``'s current data-transmission radius — and what that radius would be
  *without v as a child* (so a node can evaluate "stay with my parent"
  against alternatives fairly),
* how many of ``u``'s neighbors sit within a given radius (the
  discard-energy term of SS-SPST-E).

:class:`GlobalView` provides these from a :class:`~repro.graph.topology.Topology`
plus a :class:`~repro.core.state.StateVector` (the round model, where a
"round" delivers every neighbor's beacon).  The DES protocol builds the
same view from received beacon payloads (:mod:`repro.protocols.ss_spst`).
"""

from __future__ import annotations

import abc
from bisect import insort
from typing import Dict, List, Optional, Sequence

from repro.core.state import NodeState, derive_children, derive_flags
from repro.graph.topology import Topology
from repro.util.ids import NodeId


class NodeView(abc.ABC):
    """What node ``v`` can see when evaluating neighbor ``u``."""

    @abc.abstractmethod
    def neighbors_of(self, v: NodeId) -> List[NodeId]:
        """Candidate parents: v's current neighbors."""

    @abc.abstractmethod
    def state_of(self, u: NodeId) -> NodeState:
        """u's advertised (parent, cost, hop)."""

    @abc.abstractmethod
    def dist(self, v: NodeId, u: NodeId) -> float:
        """Distance between v and u."""

    @abc.abstractmethod
    def flag_of(self, u: NodeId) -> bool:
        """Whether u currently has a member in its (claimed) subtree."""

    @abc.abstractmethod
    def radius_without(self, u: NodeId, v: NodeId, flagged_only: bool) -> float:
        """u's child radius if v were not its child (0.0 = u silent).

        ``flagged_only`` selects the SS-SPST-E notion (only children with a
        member downstream count as data receivers) versus SS-SPST-F (every
        tree child counts).
        """

    @abc.abstractmethod
    def count_in_range(self, u: NodeId, radius: float) -> int:
        """Number of u's graph neighbors within ``radius`` of u."""

    @abc.abstractmethod
    def member(self, u: NodeId) -> bool:
        """Whether u is a multicast group member."""

    @abc.abstractmethod
    def flag_excluding(self, u: NodeId, v: NodeId) -> bool:
        """u's member flag in the world where ``v`` is detached from its
        current parent (v's subtree no longer contributes flags)."""

    @abc.abstractmethod
    def path_price(self, u: NodeId, v: NodeId, v_flag: bool, metric) -> float:
        """Price of candidate parent ``u``'s path, seen by joiner ``v``.

        Evaluated in the world where ``v`` is detached from its current
        parent, and where ``u`` additionally carries ``v_flag`` (the member
        flag ``v`` would contribute by attaching).  Pricing candidates this
        way is symmetric between the incumbent parent and alternatives:

        * the incumbent's path is no longer "pre-paid" by v's current
          attachment (which would make every alternative look cheaper and
          cause parent flip-flopping), and
        * an alternative whose branch is currently pruned is charged the
          full cost of lighting that branch up to the root (the ancestors
          must start forwarding data for v), which a simple advertised-cost
          read would miss.

        For metrics whose path cost does not couple to the child set (hop,
        T, F) this is just ``state_of(u).cost``.
        """


class GlobalView(NodeView):
    """Round-model view: global topology + a state vector snapshot.

    The view is *updatable*: :meth:`apply` replaces one node's state in
    place and incrementally maintains the derived structures (children
    lists; member flags are invalidated and lazily re-derived only when a
    parent pointer actually moved).  Executors that serialize updates —
    the central-daemon family — keep one view per round and apply moves
    to it instead of re-deriving children and flags from scratch for
    every node, which removes the O(n²)-per-round view reconstruction
    that used to dominate large-topology runs.
    """

    def __init__(self, topo: Topology, states: Sequence[NodeState]) -> None:
        self.topo = topo
        self.states = list(states)
        self._children = derive_children(self.states)
        self._flags_cache: Optional[List[bool]] = None
        self._flags_excl: Dict[NodeId, List[bool]] = {}

    @property
    def _flags(self) -> List[bool]:
        """Member flags, derived lazily (metrics that never read flags —
        hop, tx — never pay for them)."""
        if self._flags_cache is None:
            self._flags_cache = derive_flags(self.topo, self.states)
        return self._flags_cache

    def apply(self, v: NodeId, new_state: NodeState) -> None:
        """Replace ``v``'s state, updating derived structures in place.

        Children lists are patched incrementally (kept sorted, matching
        :func:`~repro.core.state.derive_children` output exactly); flags
        and the detached-flag cache depend only on parent pointers and
        membership, so they are invalidated only when the parent moved.
        """
        old = self.states[v]
        self.states[v] = new_state
        if old.parent != new_state.parent:
            if old.parent is not None:
                self._children[old.parent].remove(v)
            if new_state.parent is not None:
                insort(self._children[new_state.parent], v)
            self._flags_cache = None
            self._flags_excl.clear()

    # ------------------------------------------------------------------
    def neighbors_of(self, v: NodeId) -> List[NodeId]:
        return self.topo.neighbors(v)

    def state_of(self, u: NodeId) -> NodeState:
        return self.states[u]

    def dist(self, v: NodeId, u: NodeId) -> float:
        return float(self.topo.dist[v, u])

    def flag_of(self, u: NodeId) -> bool:
        return self._flags[u]

    def children_of(self, u: NodeId) -> List[NodeId]:
        return self._children[u]

    def radius_without(self, u: NodeId, v: NodeId, flagged_only: bool) -> float:
        # In flagged-only (SS-SPST-E) evaluations the world is "v detached",
        # so sibling flags that depended on v's subtree are recomputed.
        flags = self.flags_excluding(v) if flagged_only else self._flags
        return self._radius_excluding(u, (v,), flags, flagged_only)

    def count_in_range(self, u: NodeId, radius: float) -> int:
        if radius <= 0.0:
            return 0
        return len(self.topo.neighbors_within(u, radius))

    def member(self, u: NodeId) -> bool:
        return u in self.topo.members

    def flags_excluding(self, v: NodeId) -> List[bool]:
        """Member flags with ``v`` detached from its current parent (cached)."""
        cached = self._flags_excl.get(v)
        if cached is not None:
            return cached
        if self.states[v].parent is None:
            flags = self._flags
        else:
            detached = list(self.states)
            detached[v] = NodeState(parent=None, cost=detached[v].cost, hop=detached[v].hop)
            flags = derive_flags(self.topo, detached)
        self._flags_excl[v] = flags
        return flags

    def flag_excluding(self, u: NodeId, v: NodeId) -> bool:
        return bool(self.flags_excluding(v)[u])

    def _radius_excluding(
        self, u: NodeId, exclude, flags: Sequence[bool], flagged_only: bool
    ) -> float:
        radius = 0.0
        for c in self._children[u]:
            if c in exclude:
                continue
            if flagged_only and not flags[c]:
                continue
            d = float(self.topo.dist[u, c])
            if d > radius:
                radius = d
        return radius

    def path_price(self, u: NodeId, v: NodeId, v_flag: bool, metric) -> float:
        """Exact chain walk in the v-detached world (see the ABC docstring).

        Guards against parent cycles (possible in arbitrary illegitimate
        states) by falling back to the advertised cost when a node repeats.
        """
        if not getattr(metric, "path_couples_to_children", False):
            return self.states[u].cost

        flags = self.flags_excluding(v)
        flag_u = self.member(u) or v_flag or any(
            flags[c] for c in self._children[u] if c != v
        )
        return self._cost_up(u, flag_u, v, flags, metric, seen={u})

    def _cost_up(self, w, flag_w, v, flags, metric, seen) -> float:
        """Path cost of node ``w`` carrying (possibly modified) flag ``flag_w``."""
        if w == self.topo.source:
            return 0.0
        p = self.states[w].parent
        if p is None:
            return self.states[w].cost  # disconnected: advertised OC_max
        # Marginal cost p pays to cover w (w's attachment is being priced,
        # so w itself is excluded from p's baseline radius).
        if flag_w:
            d = float(self.topo.dist[w, p]) if self.topo.has_edge(w, p) else 0.0
            # v is detached everywhere in this world, so exclude it too.
            r_wo = self._radius_excluding(p, (w, v), flags, flagged_only=True)
            delta = metric.node_cost_at_radius(self, p, max(r_wo, d)) - (
                metric.node_cost_at_radius(self, p, r_wo)
            )
        else:
            delta = 0.0
        if p in seen:  # cycle in an illegitimate state: stop re-pricing
            return self.states[p].cost + delta
        seen.add(p)
        flag_p = (
            self.member(p)
            or flag_w
            or any(flags[c] for c in self._children[p] if c not in (w, v))
        )
        return self._cost_up(p, flag_p, v, flags, metric, seen) + delta
