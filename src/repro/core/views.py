"""Information views the update rule reads.

The self-stabilizing rule at node ``v`` only needs *local* information about
each neighbor ``u``:

* ``u``'s advertised state (cost, hop),
* the distance ``d(v, u)``,
* ``u``'s current data-transmission radius — and what that radius would be
  *without v as a child* (so a node can evaluate "stay with my parent"
  against alternatives fairly),
* how many of ``u``'s neighbors sit within a given radius (the
  discard-energy term of SS-SPST-E).

:class:`GlobalView` provides these from a :class:`~repro.graph.topology.Topology`
plus a :class:`~repro.core.state.StateVector` (the round model, where a
"round" delivers every neighbor's beacon).  The DES protocol builds the
same view from received beacon payloads (:mod:`repro.protocols.ss_spst`).
"""

from __future__ import annotations

import abc
from bisect import bisect_left, insort
from typing import Container, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.state import NodeState, derive_children, derive_flags
from repro.graph.topology import Topology
from repro.util.ids import NodeId


class NodeView(abc.ABC):
    """What node ``v`` can see when evaluating neighbor ``u``."""

    @abc.abstractmethod
    def neighbors_of(self, v: NodeId) -> List[NodeId]:
        """Candidate parents: v's current neighbors."""

    @abc.abstractmethod
    def state_of(self, u: NodeId) -> NodeState:
        """u's advertised (parent, cost, hop)."""

    @abc.abstractmethod
    def dist(self, v: NodeId, u: NodeId) -> float:
        """Distance between v and u."""

    @abc.abstractmethod
    def flag_of(self, u: NodeId) -> bool:
        """Whether u currently has a member in its (claimed) subtree."""

    @abc.abstractmethod
    def radius_without(self, u: NodeId, v: NodeId, flagged_only: bool) -> float:
        """u's child radius if v were not its child (0.0 = u silent).

        ``flagged_only`` selects the SS-SPST-E notion (only children with a
        member downstream count as data receivers) versus SS-SPST-F (every
        tree child counts).
        """

    @abc.abstractmethod
    def count_in_range(self, u: NodeId, radius: float) -> int:
        """Number of u's graph neighbors within ``radius`` of u."""

    @abc.abstractmethod
    def member(self, u: NodeId) -> bool:
        """Whether u is a multicast group member."""

    @abc.abstractmethod
    def flag_excluding(self, u: NodeId, v: NodeId) -> bool:
        """u's member flag in the world where ``v`` is detached from its
        current parent (v's subtree no longer contributes flags)."""

    @abc.abstractmethod
    def path_price(
        self, u: NodeId, v: NodeId, v_flag: bool, metric: object
    ) -> float:
        """Price of candidate parent ``u``'s path, seen by joiner ``v``.

        Evaluated in the world where ``v`` is detached from its current
        parent, and where ``u`` additionally carries ``v_flag`` (the member
        flag ``v`` would contribute by attaching).  Pricing candidates this
        way is symmetric between the incumbent parent and alternatives:

        * the incumbent's path is no longer "pre-paid" by v's current
          attachment (which would make every alternative look cheaper and
          cause parent flip-flopping), and
        * an alternative whose branch is currently pruned is charged the
          full cost of lighting that branch up to the root (the ancestors
          must start forwarding data for v), which a simple advertised-cost
          read would miss.

        For metrics whose path cost does not couple to the child set (hop,
        T, F) this is just ``state_of(u).cost``.
        """


class _DetachedFlags:
    """Member flags in a v-detached world: the live flags with a small
    ancestor prefix turned off.

    Detaching ``v`` can only *lower* flags, and only on the contiguous
    ancestor prefix of ``v``'s parent whose member support came solely
    through ``v`` — so the detached world is representable as the live
    flag list plus an "off" set, no copy required.  Supports exactly the
    indexing the metric code performs on flag vectors.
    """

    __slots__ = ("base", "off")

    def __init__(self, base: Sequence[bool], off: Set[NodeId]) -> None:
        self.base = base
        self.off = off

    def __getitem__(self, u: NodeId) -> bool:
        return bool(self.base[u]) and u not in self.off

    def __len__(self) -> int:
        return len(self.base)


def _count_parent_cycles(states: Sequence[NodeState]) -> int:
    """Number of cycles in the parent-pointer functional graph.

    Arbitrary (illegitimate) states may contain parent cycles; while any
    exist, counter-based flag maintenance is unsound (a cycle can keep its
    own flags alive) and the view falls back to full re-derivation.
    """
    n = len(states)
    color = [0] * n  # 0 = unvisited, 1 = on current walk, 2 = finished
    cycles = 0
    for s in range(n):
        if color[s]:
            continue
        path = []
        w: Optional[int] = s
        while w is not None and color[w] == 0:
            color[w] = 1
            path.append(w)
            w = states[w].parent
        if w is not None and color[w] == 1:
            cycles += 1  # the walk bit its own tail: one new cycle
        for x in path:
            color[x] = 2
    return cycles


class GlobalView(NodeView):
    """Round-model view: global topology + a state vector snapshot.

    The view is *updatable*: :meth:`apply` replaces one node's state in
    place and incrementally maintains every derived structure:

    * children lists are patched (kept sorted, matching
      :func:`~repro.core.state.derive_children` exactly);
    * member flags and a per-node flagged-children counter are updated by
      walking only the old-parent and new-parent ancestor chains — a flag
      can only toggle along those chains, and the walk stops at the first
      ancestor whose flag is unaffected;
    * the number of parent-pointer cycles is tracked so the counter scheme
      is only trusted on acyclic states (cycles can be self-supporting;
      while any exist, flags fall back to lazy full re-derivation).

    :meth:`apply` reports which nodes' flags actually flipped (or ``None``
    when it cannot tell), which is what lets the incremental executors
    build *finite* dirty sets for the chain-coupled SS-SPST-E metric
    instead of marking every node dirty.
    """

    def __init__(self, topo: Topology, states: Sequence[NodeState]) -> None:
        self.topo = topo
        self.states = list(states)
        self._children = derive_children(self.states)
        self._flags_cache: Optional[List[bool]] = None
        self._fcnt: Optional[List[int]] = None  # per-node flagged-children count
        self._n_cycles = _count_parent_cycles(self.states)
        self._flags_excl: Dict[NodeId, Sequence[bool]] = {}
        # Per-evaluation chain-price memo: ``w -> {carried_flag: price}`` of
        # w's upstream chain in the owner's detached world.  Candidates of
        # one evaluating node share chain prefixes (all chains converge
        # toward the root), so one evaluation walks each chain segment once
        # instead of once per candidate.  Any apply() invalidates it.
        self._price_memo: Dict[NodeId, Dict[bool, float]] = {}
        self._price_memo_owner: Optional[NodeId] = None
        # Cross-evaluation chain-price memo: same layout, but priced in the
        # *live* world and therefore shared by every evaluating node whose
        # detachment is invisible to chain reads (disconnected or unflagged
        # evaluators — the common case).  Unlike the per-evaluation memo it
        # survives apply(): only the prices of the *subtrees of the touched
        # tree positions* (the changed node, flagged endpoints, flag-flipped
        # ancestors and their parents — the flag-flip report again) are
        # dropped, so deep-chain stabilization walks each settled prefix
        # once instead of once per evaluation (O(n) chain steps on a line
        # instead of O(n²)).
        self._chain_memo: Dict[NodeId, Dict[bool, float]] = {}
        #: diagnostic: total ancestor steps walked by :meth:`path_price`
        #: (what the chain memos shrink; read by the ablation bench)
        self.chain_steps: int = 0
        #: static per-(node, radius) node-cost values, filled by
        #: :meth:`EnergyAwareMetric.node_cost_at_radius`; never invalidated
        #: (the underlying topology is immutable).
        self.node_cost_cache: Dict[Tuple[NodeId, float], float] = {}
        #: static tree-edge distances (0.0 for non-edges), keyed (child,
        #: parent); chain walks read one per ancestor step.
        self._edge_dist: Dict[Tuple[NodeId, NodeId], float] = {}
        # Per-evaluation descendant set of the evaluating node, used by
        # :meth:`path_price` to price candidates inside the evaluator's
        # own subtree (loop candidates) without walking their chains.
        self._desc_owner: Optional[NodeId] = None
        self._desc_set: Set[NodeId] = set()

    @property
    def _flags(self) -> List[bool]:
        """Member flags, derived lazily (metrics that never read flags —
        hop, tx — never pay for them).  On acyclic states the flagged-
        children counters are built alongside and both are maintained
        incrementally by :meth:`apply` from then on."""
        if self._flags_cache is None:
            self._flags_cache = derive_flags(self.topo, self.states)
            self._fcnt = None
        if self._fcnt is None and self._n_cycles == 0:
            fcnt = [0] * len(self.states)
            flags = self._flags_cache
            for c, st in enumerate(self.states):
                if st.parent is not None and flags[c]:
                    fcnt[st.parent] += 1
            self._fcnt = fcnt
        return self._flags_cache

    # ------------------------------------------------------------------
    # In-place updates
    # ------------------------------------------------------------------
    def apply(self, v: NodeId, new_state: NodeState) -> Optional[Tuple[NodeId, ...]]:
        """Replace ``v``'s state, updating derived structures in place.

        Returns the nodes whose member flag flipped (possibly empty), or
        ``None`` when the impact is unknown — flags were not materialized
        yet, or a parent cycle is involved and the counter scheme cannot
        localize the change.  Callers building dirty sets must treat
        ``None`` as "anything may have changed".
        """
        old = self.states[v]
        if old.parent == new_state.parent:
            # Cost/hop-only change: children, flags and cycles untouched;
            # chain prices can still shift (disconnected-terminal costs).
            self.states[v] = new_state
            self._price_memo.clear()
            self._price_memo_owner = None
            if old.parent is None and new_state.cost != old.cost:
                # Chain walks read a node's advertised cost only at a
                # disconnected chain head; prices of everything routing
                # through v are stale.  Attached cost changes are invisible
                # to chain pricing (it re-derives marginals from radii).
                self._drop_chain_prices((v,))
            return ()

        p_old, p_new = old.parent, new_state.parent
        # A parent move can only create/destroy a cycle *through v*; check
        # before and after the edit.  With zero cycles the "before" walk is
        # provably negative and skipped.
        was_on_cycle = self._n_cycles > 0 and self._on_own_cycle(v)
        if p_old is not None:
            siblings = self._children[p_old]
            i = bisect_left(siblings, v)
            if i == len(siblings) or siblings[i] != v:
                raise ValueError(
                    f"GlobalView.apply: node {v} is not a recorded child of "
                    f"its current parent {p_old}; the state vector or "
                    f"children lists were mutated outside apply()"
                )
            del siblings[i]
        self.states[v] = new_state
        if p_new is not None:
            insort(self._children[p_new], v)
        now_on_cycle = self._on_own_cycle(v)
        self._n_cycles += int(now_on_cycle) - int(was_on_cycle)

        self._flags_excl.clear()
        self._price_memo.clear()
        self._price_memo_owner = None
        self._desc_owner = None  # children map changed

        if was_on_cycle or now_on_cycle or self._n_cycles > 0:
            # Cycles can keep their own flags alive; no local walk is
            # sound.  Re-derive lazily and report "unknown".
            self._flags_cache = None
            self._fcnt = None
            self._chain_memo.clear()
            return None
        if self._flags_cache is None or self._fcnt is None:
            self._chain_memo.clear()
            return None  # flags never materialized: nothing to maintain

        # Acyclic before and after: v's own flag depends only on its own
        # children (unchanged), so only the two ancestor chains can flip.
        if not self._flags_cache[v]:
            # An unflagged child is invisible to flagged radii and flag
            # scans: only chains routing *through v* are repriced.
            self._drop_chain_prices((v,))
            return ()
        flips: List[NodeId] = []
        if p_old is not None:
            self._dec_flag_chain(p_old, flips)
        if p_new is not None:
            self._inc_flag_chain(p_new, flips)
        # Stale chain prices: exactly the subtrees of the touched positions
        # (mirrors the reader analysis of the incremental engine's
        # ``_affected``) — v's own chain moved, the endpoints' flagged
        # radii changed, and every flip rewrote a flag its parent's radius
        # and descendants' prices read.
        stale = {v, p_old, p_new}
        for f in flips:
            stale.add(f)
            stale.add(self.states[f].parent)
        stale.discard(None)
        self._drop_chain_prices(stale)
        return tuple(flips)

    def _drop_chain_prices(self, roots: Iterable[NodeId]) -> None:
        """Invalidate shared chain prices of the subtrees under ``roots``."""
        if not self._chain_memo:
            return
        for w in self.collect_subtrees(roots):
            self._chain_memo.pop(w, None)

    def _on_own_cycle(self, v: NodeId) -> bool:
        """Whether following parent pointers from ``v`` returns to ``v``."""
        w = self.states[v].parent
        for _ in range(len(self.states)):
            if w is None:
                return False
            if w == v:
                return True
            w = self.states[w].parent
        return False  # walked into a foreign cycle: v is not on it

    def _dec_flag_chain(self, w: Optional[NodeId], flips: List[NodeId]) -> None:
        """Ancestor walk after ``w`` lost one flagged child."""
        members = self.topo.members
        flags, fcnt, states = self._flags_cache, self._fcnt, self.states
        while w is not None:
            fcnt[w] -= 1
            if w in members or fcnt[w] > 0:
                break  # flag survives: nothing changes further up
            flags[w] = False
            flips.append(w)
            w = states[w].parent

    def _inc_flag_chain(self, w: Optional[NodeId], flips: List[NodeId]) -> None:
        """Ancestor walk after ``w`` gained one flagged child."""
        flags, fcnt, states = self._flags_cache, self._fcnt, self.states
        while w is not None:
            fcnt[w] += 1
            if flags[w]:
                break  # already flagged: ancestors unaffected
            flags[w] = True
            flips.append(w)
            w = states[w].parent

    def collect_subtrees(self, roots: Iterable[NodeId]) -> Set[NodeId]:
        """All nodes in the (current) subtrees rooted at ``roots``.

        Used by the incremental executors: a changed radius/flag at node
        ``y`` is read by exactly the candidate chains passing through
        ``y``, i.e. by evaluators adjacent to ``y``'s subtree.  Robust to
        parent cycles (the visited set bounds the walk).
        """
        out: Set[NodeId] = set(roots)
        stack = sorted(out)
        children = self._children
        while stack:
            w = stack.pop()
            for c in children[w]:
                if c not in out:
                    out.add(c)
                    stack.append(c)
        return out

    # ------------------------------------------------------------------
    def neighbors_of(self, v: NodeId) -> List[NodeId]:
        return self.topo.neighbors(v)

    def state_of(self, u: NodeId) -> NodeState:
        return self.states[u]

    def dist(self, v: NodeId, u: NodeId) -> float:
        return float(self.topo.dist[v, u])

    def flag_of(self, u: NodeId) -> bool:
        return self._flags[u]

    def children_of(self, u: NodeId) -> List[NodeId]:
        return self._children[u]

    def radius_without(self, u: NodeId, v: NodeId, flagged_only: bool) -> float:
        # In flagged-only (SS-SPST-E) evaluations the world is "v detached",
        # so sibling flags that depended on v's subtree are recomputed.
        flags = self.flags_excluding(v) if flagged_only else self._flags
        return self._radius_excluding(u, (v,), flags, flagged_only)

    def count_in_range(self, u: NodeId, radius: float) -> int:
        if radius <= 0.0:
            return 0
        return self.topo.count_within(u, radius)

    def member(self, u: NodeId) -> bool:
        return u in self.topo.members

    def flags_excluding(self, v: NodeId) -> Sequence[bool]:
        """Member flags with ``v`` detached from its current parent (cached).

        On acyclic states this is an ancestor walk over the flagged-children
        counters: detaching ``v`` turns off exactly the contiguous ancestor
        prefix whose only member support came through ``v`` (each ancestor
        in turn loses one flagged child; the walk stops at the first member
        or multiply-supported node).  Cyclic states fall back to a full
        re-derivation over a detached copy.
        """
        cached = self._flags_excl.get(v)
        if cached is not None:
            return cached
        flags = self._flags  # materializes counters on acyclic states
        st = self.states[v]
        out: Sequence[bool]
        if st.parent is None or not flags[v]:
            out = flags  # detaching changes nothing
        elif self._fcnt is None:
            detached = list(self.states)
            detached[v] = NodeState(parent=None, cost=st.cost, hop=st.hop)
            out = derive_flags(self.topo, detached)
        else:
            off: Set[NodeId] = set()
            members = self.topo.members
            fcnt, states = self._fcnt, self.states
            w = st.parent
            while w is not None:
                if w in members or fcnt[w] > 1:
                    break  # keeps a flag source besides the detached chain
                off.add(w)
                w = states[w].parent
            out = _DetachedFlags(flags, off) if off else flags
        self._flags_excl[v] = out
        return out

    def flag_excluding(self, u: NodeId, v: NodeId) -> bool:
        return bool(self.flags_excluding(v)[u])

    def _detach_neutral(self, v: NodeId, flags: Sequence[bool]) -> bool:
        """Whether detaching ``v`` is invisible to *every* chain-walk read.

        Chain walks read, at each ancestor step into ``p``: ``p``'s
        children flags and flagged radius with the chain predecessor ``w``
        (and ``v``) excluded.  Detaching ``v`` changes those reads only

        * at ``parent(v)`` — and only when ``v`` carries a flag — or
        * at the parents of the ``off`` prefix (ancestors whose flag the
          detachment turns off),

        and in both cases only for walks whose predecessor ``w`` is *not*
        the affected child (a walk's own predecessor is always excluded
        anyway).  When every affected node is its parent's only child —
        the entire class of chain/line structures, and any evaluator that
        is disconnected or unflagged — no such walk exists: every price is
        the live-world price, so evaluations may share one memo
        (``_chain_memo``).  Cyclic states are never neutral (counter
        maintenance is untrusted there).
        """
        if self._n_cycles:
            return False
        st = self.states[v]
        if st.parent is None or not flags[v]:
            return True
        if len(self._children[st.parent]) != 1:
            return False
        off = flags.off if isinstance(flags, _DetachedFlags) else ()
        for o in off:
            p = self.states[o].parent
            if p is not None and len(self._children[p]) != 1:
                return False
        return True

    def _radius_excluding(
        self,
        u: NodeId,
        exclude: Container[NodeId],
        flags: Sequence[bool],
        flagged_only: bool,
    ) -> float:
        radius = 0.0
        for c in self._children[u]:
            if c in exclude:
                continue
            if flagged_only and not flags[c]:
                continue
            d = float(self.topo.dist[u, c])
            if d > radius:
                radius = d
        return radius

    def path_price(
        self, u: NodeId, v: NodeId, v_flag: bool, metric: object
    ) -> float:
        """Exact iterative chain walk in the v-detached world (ABC docstring).

        The price is the *marginal* global cost of lighting up ``u``'s
        path for ``v``: walking up from ``u``, each ancestor link is
        charged the cost of starting to cover its chain child **only
        while the chain is lit solely by ``v``'s carried flag**.  The
        carried flag dies at the first ancestor that is flagged in the
        v-detached world *independently of v* — from there up, the path
        is already paid for in the baseline, and recharging it would
        double-count.  (That double-charge was a real bug: it priced the
        incumbent's already-lit chain as if it had to be built from
        scratch, which made cheap parents look expensive, disagreed with
        the true global-cost delta of the move, and drove persistent
        limit cycles no activation order could escape — see
        ``docs/convergence.md``.)  A chain whose head is disconnected
        still contributes the head's advertised cost (``OC_max``-ish), so
        orphaned subtrees stay unattractive while count-to-infinity
        resolves.

        Guards against parent cycles (possible in arbitrary illegitimate
        states) by falling back to the advertised cost when a node
        repeats, and never recurses — line topologies deeper than the
        interpreter's recursion limit are fine.  Chain-price prefixes are
        memoized per ``(node, carried-flag)``, so evaluating all of
        ``v``'s candidates costs one walk over the union of their chains.
        When ``v``'s detachment is invisible to every chain read — ``v``
        disconnected, or unflagged (an unflagged child contributes to no
        flagged radius and no flag scan) — the prices equal their
        live-world values and go into the *cross-evaluation* memo
        (``_chain_memo``), which survives until an apply() touches the
        priced subtrees; flagged attached evaluators fall back to the
        per-evaluation memo (``_price_memo``), whose prefixes are valid
        only in their own detached world.
        """
        if not getattr(metric, "path_couples_to_children", False):
            return self.states[u].cost

        if self._desc_owner != v:
            # Descendants of the evaluating node, via the children map
            # (exact inverse of the parent pointers, so this agrees with
            # "the chain from u passes through v" even in cyclic states).
            seen_d: Set[NodeId] = set()
            stack = [v]
            kids = self._children
            while stack:
                for c in kids[stack.pop()]:
                    if c not in seen_d:
                        seen_d.add(c)
                        stack.append(c)
            self._desc_owner, self._desc_set = v, seen_d
        if u in self._desc_set:
            # u hangs below v: its chain runs through v itself, so in
            # the v-detached world it is headless and never reaches the
            # root (attaching to u would form a parent loop).  Price it
            # at the metric's infinity — the same ``OC_max`` sentinel a
            # disconnected node advertises — so a node's own subtree
            # loses to every rooted candidate.  Without this, a chain
            # running through v priced as already-lit (near zero) and v
            # flip-flopped into and out of the loop forever; pricing it
            # at v's advertised cost instead still lured free-riders
            # (advertised cost 0) back into loops they had just escaped.
            # The verdict is evaluator-specific, which is also why it is
            # decided *before* the walk: the shared chain memo may hold
            # prefixes (written by other evaluators) that cross v.
            return metric.infinity(self.topo)

        flags = self.flags_excluding(v)
        if self._detach_neutral(v, flags):
            # Detaching v changes nothing any chain walk reads: prices are
            # live-world values, shared across evaluating nodes.
            memo = self._chain_memo
        elif self._price_memo_owner == v:
            memo = self._price_memo
        else:
            # New evaluating node: prior prefixes were priced in a
            # different detached world.
            self._price_memo = memo = {}
            self._price_memo_owner = v
        states, topo = self.states, self.topo
        edge_dist = self._edge_dist

        # v's flag is "carried" up the chain only while the chain nodes
        # are unlit without it; it dies at the first independently
        # flagged ancestor.
        w, carried = u, bool(v_flag) and not flags[u]
        seen = {u}
        pending: List[Tuple[Tuple[NodeId, bool], float]] = []
        cacheable = True
        while True:
            by_flag = memo.get(w)
            base = None if by_flag is None else by_flag.get(carried)
            if base is not None:
                break
            if w == topo.source:
                base = 0.0
                memo.setdefault(w, {})[carried] = base
                break
            p = states[w].parent
            if p is None:
                base = states[w].cost  # disconnected: advertised OC_max
                memo.setdefault(w, {})[carried] = base
                break
            self.chain_steps += 1
            if carried:
                # w is lit only by v's attachment: p must start covering
                # it.  Marginal against p's baseline flagged radius in
                # the v-detached world (w is unlit there, so excluding it
                # is a no-op, kept for robustness).
                d = edge_dist.get((w, p))
                if d is None:
                    d = float(topo.dist[w, p]) if topo.has_edge(w, p) else 0.0
                    edge_dist[(w, p)] = d
                r_wo = self._radius_excluding(p, (w, v), flags, flagged_only=True)
                if d <= r_wo:
                    delta = 0.0  # w already covered: marginal exactly zero
                else:
                    delta = metric.node_cost_at_radius(self, p, d) - (
                        metric.node_cost_at_radius(self, p, r_wo)
                    )
            else:
                delta = 0.0
            if p in seen:  # cycle in an illegitimate state: stop re-pricing
                # The cut point depends on where *this* walk started, so
                # the price is valid for this candidate only — memoizing
                # it would leak one candidate's cut into another's chain.
                base = states[p].cost + delta
                cacheable = False
                break
            seen.add(p)
            pending.append(((w, carried), delta))
            w, carried = p, carried and not flags[p]
        # Backfill the walked prefixes: price(w) = delta(w->p) + price(p).
        # A walk truncated by the cycle guard yields start-dependent
        # values: return them, but keep them out of the shared memo so
        # every candidate prices cycles from its own walk (the pre-memo
        # per-candidate semantics).
        price = base
        for (kw, kf), delta in reversed(pending):
            price += delta
            if cacheable:
                memo.setdefault(kw, {})[kf] = price
        return price
