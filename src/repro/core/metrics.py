"""The four cost metrics of the paper (section 4).

All metrics expose the same interface:

* ``join_cost(view, v, u)`` — the overhead cost ``oc(v, u) = oc_u +
  deltaE_u(v)`` of node ``v`` choosing ``u`` as its parent, where
  ``deltaE_u(v)`` is "the energy cost difference experienced by node u with
  and without v as its child" (section 5).  When ``v`` already is ``u``'s
  child the marginal is computed against ``u``-without-``v``, so staying
  and switching are compared fairly.
* ``node_cost(...)`` / ``tree_cost(topo, tree)`` — the static cost of a
  settled tree (the quantity Lemma 1/2 reason about).
* ``infinity(topo)`` — the ``OC_max`` assigned to disconnected nodes;
  strictly larger than any achievable tree cost.

Energy quantities are **joules per data bit**: the radio's transmit cost
per bit at the power-controlled radius, and the constant per-bit reception
cost.  Scaling by the data-packet size multiplies every metric by the same
constant and never changes an argmin, so per-bit units are used throughout.

The metric-specific node costs are:

=========  =================================================================
SS-SPST    hop count (``C_v`` is the path length; tree cost = sum of depths)
SS-SPST-T  sum over tree links of per-link transmit energy  (eq. 1)
SS-SPST-F  ``E_tx(r_v) + n_v * E_rx`` with ``r_v`` = distance to the
           costliest tree child, ``n_v`` = number of tree children (eq. 2)
SS-SPST-E  ``E_tx(r_v) + n'_v * E_rx + D_v`` with ``r_v`` over *flagged*
           children only and the discard energy ``D_v = (N_v(r_v) - n'_v) *
           E_rx`` for the non-intended neighbors inside the transmission
           range (eq. 3-4).  Algebraically ``C_v = E_tx(r_v) + N_v(r_v) *
           E_rx``: the transmitter's energy plus reception energy of
           *everyone* who hears it, intended or not.
=========  =================================================================
"""

from __future__ import annotations

import abc
import weakref
from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.core.state import NodeState
from repro.core.views import NodeView
from repro.energy.radio import RadioModel
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment
from repro.util.ids import NodeId


class CostMetric(abc.ABC):
    """Common interface for tree-cost metrics."""

    #: short name used in configs, reports and protocol variants
    name: str = "?"
    #: relative route-flap damping applied by the round-model update rule:
    #: an alternative parent must beat the incumbent's cost by this
    #: margin (multiplicative, hence scale-invariant) before the node
    #: switches.  0 for metrics that are exact potential games (hop, tx
    #: — every improving move strictly decreases a global potential, so
    #: no damping is needed and none is wanted: any margin would cost
    #: optimality).  The child-coupled F/E metrics are *not* potential
    #: games — one node's move re-prices others' marginals — and their
    #: best-response dynamics admit genuine limit cycles that no
    #: activation order escapes; they set a deliberate margin (see
    #: ``docs/convergence.md`` for the damping argument).
    switch_hysteresis: float = 0.0
    #: True when a node's *path* cost depends on its own child set (only
    #: SS-SPST-E: member flags propagate up the chain), in which case the
    #: update rule must re-price candidate paths without the joining node
    #: (see :meth:`repro.core.views.NodeView.path_cost_excluding`).
    path_couples_to_children: bool = False
    #: extra beacon bytes this metric requires beyond the base beacon
    #: (SS-SPST-E "sends additional information in its beacon packet")
    beacon_extra_bytes_per_neighbor: int = 0
    beacon_extra_bytes_fixed: int = 0
    #: how far (in graph hops) one node's state change can reach into
    #: *other* nodes' next update, used by the incremental (dirty-set)
    #: executors to decide who must be re-evaluated.  1 = a node's update
    #: reads only its neighbors' advertised states (hop, tx); metrics
    #: whose join cost also reads neighbors' children sets extend the
    #: reach by one hop around the endpoints of a moved parent pointer
    #: (farthest keeps radius 1 because the executors seed the closure
    #: with both parent endpoints).  Chain-coupled metrics
    #: (``path_couples_to_children``) additionally seed the closure with
    #: the *subtrees* of every touched tree position, using the flag-flip
    #: reports of :meth:`repro.core.views.GlobalView.apply` — see
    #: ``_IncrementalBase._affected``.  ``None`` = globally coupled with
    #: no localization at all: every node stays dirty while the system
    #: moves (an escape hatch for custom metrics; none of the paper's
    #: four needs it).
    dependency_radius: Optional[int] = 1

    def __init__(self, radio: RadioModel) -> None:
        self.radio = radio
        self.e_rx = radio.rx_energy(1.0)  # J per bit received
        # OC_max per topology (the update rule reads it on every single
        # evaluation; the energy variants scan the whole distance matrix
        # to compute it, which must not be paid per node per round).
        self._infinity_cache: "weakref.WeakKeyDictionary[Topology, float]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def etx(self, distance: float) -> float:
        """Per-bit transmit energy at the given power-controlled radius."""
        return self.radio.tx_cost_per_bit(distance)

    def etx0(self, radius: float) -> float:
        """Like :meth:`etx` but a silent node (radius 0) costs nothing."""
        return 0.0 if radius <= 0.0 else self.etx(radius)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def join_cost(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        """``oc(v, u)``: cost of ``v`` adopting ``u`` as parent."""

    @abc.abstractmethod
    def tree_cost(self, topo: Topology, tree: TreeAssignment) -> float:
        """Static total cost of a settled tree."""

    def infinity(self, topo: Topology) -> float:
        """``OC_max`` for disconnected nodes (exceeds any tree cost).

        Cached per topology (weakly, so topologies are not kept alive):
        the value is a pure function of the distance matrix, which is
        immutable for the lifetime of a :class:`Topology`.
        """
        cached = self._infinity_cache.get(topo)
        if cached is not None:
            return cached
        d_max = getattr(topo, "max_edge_dist", None)
        if d_max is None:
            finite = topo.dist[np.isfinite(topo.dist)]
            d_max = float(finite.max()) if finite.size else 1.0
        elif d_max <= 0.0:
            d_max = 1.0
        per_node = self.etx(d_max) + topo.n * self.e_rx
        out = (topo.n + 1) * per_node + 1.0
        self._infinity_cache[topo] = out
        return out


class HopMetric(CostMetric):
    """SS-SPST: plain hop count (the baseline the paper improves on)."""

    name = "hop"

    def join_cost(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        return view.state_of(u).cost + 1.0

    def tree_cost(self, topo: Topology, tree: TreeAssignment) -> float:
        connected = tree.connected_nodes()
        return float(sum(tree.depth(v) for v in connected))

    def infinity(self, topo: Topology) -> float:
        # Exceeds any path cost (<= n) and any total tree cost (<= n^2/2).
        return float(topo.n * topo.n + 1)


class TxEnergyMetric(CostMetric):
    """SS-SPST-T: link-based transmission energy (eq. 1).

    Ignores the wireless multicast advantage: every link is priced as if it
    required its own transmission.
    """

    name = "tx"

    def join_cost(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        return view.state_of(u).cost + self.etx(view.dist(v, u))

    def tree_cost(self, topo: Topology, tree: TreeAssignment) -> float:
        return float(
            sum(self.etx(float(topo.dist[p, v])) for p, v in tree.edges())
        )


class FarthestChildMetric(CostMetric):
    """SS-SPST-F: node cost from the costliest (farthest) tree child (eq. 2).

    One transmission reaching the farthest child covers all children
    (wireless multicast advantage); each child additionally pays reception.
    """

    name = "farthest"
    beacon_extra_bytes_fixed = 6  # radius, second radius, costliest child id
    # F couples join costs to the child set (one node's move changes
    # another's marginal), so improving moves are not a potential descent
    # and fixed-order schedules can cycle; damp switches by a relative
    # margin (the same route-flap mechanism the DES agents use).
    switch_hysteresis = 0.05

    flagged_only = False

    def _delta(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        """Marginal cost for ``u`` of having ``v`` as a child."""
        d = view.dist(v, u)
        r_without = view.radius_without(u, v, flagged_only=self.flagged_only)
        r_with = max(r_without, d)
        return (self.etx0(r_with) - self.etx0(r_without)) + self.e_rx

    def join_cost(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        return view.state_of(u).cost + self._delta(view, v, u)

    def node_cost(self, topo: Topology, tree: TreeAssignment, u: NodeId) -> float:
        children = tree.children()[u]
        if not children:
            return 0.0
        radius = max(float(topo.dist[u, c]) for c in children)
        return self.etx(radius) + len(children) * self.e_rx

    def tree_cost(self, topo: Topology, tree: TreeAssignment) -> float:
        return float(sum(self.node_cost(topo, tree, u) for u in range(topo.n)))


class EnergyAwareMetric(FarthestChildMetric):
    """SS-SPST-E: the paper's contribution (eq. 3-4).

    Extends the F metric in two ways:

    * only *flagged* children (member in subtree) are data receivers, so a
      node whose children are all pruned transmits nothing;
    * the discard energy of every non-intended neighbor inside the
      transmission radius is charged to the transmitting node, steering the
      tree away from dense non-member neighborhoods (Figure 5).
    """

    name = "energy"
    # Member flags and chain re-pricing couple a node's update to the
    # ancestor chains of its candidates.  Inverted, a change is read
    # exactly by the subtrees of the touched tree positions — the
    # executors seed the dirty closure with those subtrees (derived from
    # the flag flips GlobalView.apply reports), then extend one hop.
    dependency_radius = 1
    # E beacons additionally carry the sender's neighbor-distance list so
    # joiners can evaluate the discard term; distances are quantized to one
    # byte each (range/255 buckets) — full floats would make the beacon
    # energy swamp the discard savings the metric buys.
    beacon_extra_bytes_fixed = 8
    beacon_extra_bytes_per_neighbor = 1

    flagged_only = True
    path_couples_to_children = True

    def node_cost_at_radius(self, view: NodeView, u: NodeId, radius: float) -> float:
        """``C_u`` at a hypothetical data radius: tx + everyone-in-range rx.

        The value is a pure function of ``(u, radius)`` for views backed
        by a static topology; such views expose a ``node_cost_cache``
        dict and chain pricing (which evaluates this at every ancestor)
        hits it.  Beacon-table views have *dynamic* neighborhoods and no
        cache attribute, so they always compute.
        """
        if radius <= 0.0:
            return 0.0
        cache = getattr(view, "node_cost_cache", None)
        if cache is None:
            return self.etx(radius) + view.count_in_range(u, radius) * self.e_rx
        key = (u, radius)
        val = cache.get(key)
        if val is None:
            val = self.etx(radius) + view.count_in_range(u, radius) * self.e_rx
            cache[key] = val
        return val

    #: weight of the shadow price charged to unflagged (pruned) joiners.
    #: A pruned node imposes no *data* cost (the paper's semantics, and the
    #: default).  Setting a small positive value charges free-riders a
    #: fraction of the true marginal, which shortens the long pruned chains
    #: they otherwise form — measured across seeds this does not improve
    #: delivery, so it stays off; the knob exists for the ablation bench.
    UNFLAGGED_SHADOW = 0.0

    def _delta(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        r_without = view.radius_without(u, v, flagged_only=True)
        d = view.dist(v, u)
        if d <= r_without:  # v already covered: marginal exactly zero
            marginal = 0.0
        else:
            marginal = self.node_cost_at_radius(view, u, d) - self.node_cost_at_radius(
                view, u, r_without
            )
        if not view.flag_excluding(v, v):
            # An unflagged child imposes no data-forwarding obligation; it
            # either already overhears (within r) or simply isn't covered.
            return self.UNFLAGGED_SHADOW * marginal
        return marginal

    def join_cost(self, view: NodeView, v: NodeId, u: NodeId) -> float:
        # Price u's path in the v-detached world, with v's flag attached
        # (lighting up a pruned branch charges the whole chain), then add
        # u's own marginal cost for covering v.  See NodeView.path_price.
        v_flag = view.flag_excluding(v, v)
        return view.path_price(u, v, v_flag, self) + self._delta(view, v, u)

    def node_cost(self, topo: Topology, tree: TreeAssignment, u: NodeId) -> float:
        radius = tree.data_tx_radius(u)
        if radius <= 0.0:
            return 0.0
        heard = len(topo.neighbors_within(u, radius))
        return self.etx(radius) + heard * self.e_rx

    def discard_cost(self, topo: Topology, tree: TreeAssignment, u: NodeId) -> float:
        """The ``D_u`` component alone (eq. 3), for reporting/ablations."""
        radius = tree.data_tx_radius(u)
        if radius <= 0.0:
            return 0.0
        heard = len(topo.neighbors_within(u, radius))
        intended = len(tree.flagged_children().get(u, []))
        return max(heard - intended, 0) * self.e_rx

    def tree_discard_cost(self, topo: Topology, tree: TreeAssignment) -> float:
        """Total discard energy of the (pruned) tree per data bit."""
        return float(sum(self.discard_cost(topo, tree, u) for u in range(topo.n)))


#: canonical metric order used across experiments and reports
METRIC_NAMES = ("hop", "tx", "farthest", "energy")

_REGISTRY: Dict[str, Type[CostMetric]] = {
    "hop": HopMetric,
    "tx": TxEnergyMetric,
    "farthest": FarthestChildMetric,
    "energy": EnergyAwareMetric,
}

#: mapping from metric name to the protocol label used in the paper
PROTOCOL_LABELS = {
    "hop": "SS-SPST",
    "tx": "SS-SPST-T",
    "farthest": "SS-SPST-F",
    "energy": "SS-SPST-E",
}


def metric_by_name(name: str, radio: RadioModel) -> CostMetric:
    """Instantiate a metric by its short name ('hop', 'tx', 'farthest', 'energy')."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(radio)
