"""The legitimate-state predicate (Definition 1) and tree extraction.

A global state is *legitimate* iff every node's state equals what the
update rule computes from its neighbors' states — i.e. the state vector is
a fixpoint of the rule — and, when the topology is connected, the parent
pointers form a spanning tree rooted at the source.  Closure (Lemma 2) is
then immediate: a fixpoint does not move.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, compute_update
from repro.core.state import NodeState
from repro.core.views import GlobalView
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment


def is_legitimate(
    topo: Topology,
    metric: CostMetric,
    states: Sequence[NodeState],
) -> bool:
    """Fixpoint test: no node's guard is violated."""
    view = GlobalView(topo, states)
    for v in range(topo.n):
        target = compute_update(topo, metric, view, v)
        if not states[v].approx_equals(target, tol=COST_TOL):
            return False
    return True


def extract_tree(topo: Topology, states: Sequence[NodeState]) -> Optional[TreeAssignment]:
    """Parent pointers as a validated tree, or None if they are not one."""
    try:
        return TreeAssignment(topo, [s.parent for s in states])
    except ValueError:
        return None


def violations(
    topo: Topology,
    metric: CostMetric,
    states: Sequence[NodeState],
) -> list:
    """Nodes whose guard is violated, with (current, target) — debugging aid."""
    view = GlobalView(topo, states)
    out = []
    for v in range(topo.n):
        target = compute_update(topo, metric, view, v)
        if not states[v].approx_equals(target, tol=COST_TOL):
            out.append((v, states[v], target))
    return out
