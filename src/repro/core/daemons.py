"""Activation daemons: *who* gets to move, and *when*.

Self-stabilization guarantees are always stated relative to a **daemon**
— the adversary/scheduler that decides which enabled nodes execute their
guarded update in each round.  The paper's round-count examples assume
the synchronous daemon; Dijkstra-style proofs are usually stated under a
central daemon; the DES protocol's jittered beacons realize a randomized
one; and the schedules under which self-stabilization claims are really
stressed (adversarial, bounded-delay) are daemons too.

This module decomposes the daemon from the evaluation engine
(:class:`~repro.core.rounds.RoundEngine`): a :class:`Daemon` yields, per
round, a sequence of **activation steps** — tuples of node ids that
update simultaneously from the same snapshot.  Serial daemons yield
1-node steps; the synchronous daemon yields one n-node step.  Every
daemon automatically composes with both the full and the incremental
(dirty-set) evaluation modes of the engine, with bit-identical
trajectories between the two — a new schedule is a ~30-line subclass,
not a new executor.

Provided daemons:

====================  =================================================
``synchronous``       all nodes at once from the previous round's
                      snapshot (the paper's round-count model)
``central``           one node at a time in id order (classic proofs)
``randomized``        one at a time, fresh random permutation per round
                      (what jittered beacons do; escapes the fixed-order
                      limit cycles of the F/E metrics almost surely)
``distributed``       k-local-parallel: a random permutation chunked
                      into groups of ``k`` nodes that move simultaneously
                      (between central ``k=1`` and synchronous ``k=n``)
``adversarial-max-cost``  greedy adversary: among the *enabled* nodes it
                      always activates the one whose move keeps the total
                      capped cost highest (stalling the Lyapunov descent;
                      the schedule convergence claims must survive)
``weakly-fair``       bounded-delay: each round activates a random
                      subset, but no node is skipped more than
                      ``delay - 1`` rounds in a row (the weakest fairness
                      under which convergence is still guaranteed)
====================  =================================================
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Type

import numpy as np

from repro.core.rules import COST_TOL, compute_update
from repro.util.ids import NodeId

Step = Tuple[NodeId, ...]


class Daemon(abc.ABC):
    """Activation scheduler: yields per-round activation sequences.

    Subclasses only describe *scheduling*; evaluation, state application,
    dirty-set bookkeeping, convergence detection and diagnostics all live
    in :class:`~repro.core.rounds.RoundEngine`, so every daemon works
    under both the full and the incremental engine mode unchanged.
    """

    #: registry/config name
    name: str = "?"
    #: True when multi-node steps are snapshot steps (all updates computed
    #: from the step-start view, then applied together)
    parallel: bool = False
    #: parallel-step write policy: also apply updates that differ from the
    #: current state only below the move tolerance (historic
    #: ``SyncExecutor`` semantics; silent rewrites propagate but do not
    #: count as moves)
    overwrite: bool = False
    #: True when the schedule reads the live view (the engine then drives
    #: the round lazily, step by step, instead of materializing it)
    adaptive: bool = False
    #: how many consecutive move-free rounds certify a fixpoint.  Daemons
    #: that schedule (or scan) every node each round need 1; a partial
    #: daemon needs its bounded delay (a round may make no moves simply
    #: because no enabled node was scheduled).
    quiescence_rounds: int = 1

    def reset(self, n: int) -> None:
        """Per-run initialization (fairness bookkeeping etc.)."""

    @abc.abstractmethod
    def round_steps(self, ctx: "RoundContext") -> Iterable[Step]:
        """The activation steps of one round.

        Non-adaptive daemons must not read ``ctx.view`` — their schedule
        may depend only on ``ctx.n``, ``ctx.round_no``, their own rng and
        fairness bookkeeping, so that full and incremental engine modes
        (which invoke this exactly once per round either way) see the
        same schedule.  Adaptive daemons may read the view through
        ``ctx.probe``/``ctx.current`` and are re-entered lazily after
        each step is applied.
        """


class RoundContext:
    """What a daemon may read while scheduling one round.

    Built by the engine.  ``probe`` computes (and memoizes, until a state
    change invalidates it) the update rule's result for one node — each
    fresh computation counts toward the run's ``evaluations`` diagnostic.
    ``candidates()`` is the set of nodes that can possibly be enabled:
    every node in full mode, the dirty set in incremental mode (a clean
    node recomputes its own state by the dirty-set invariant, so
    restricting an enabled-node scan to it is exact, not a heuristic).
    """

    __slots__ = ("engine", "view", "round_no", "n", "evaluations", "_dirty",
                 "_cap", "_probe_cache", "probed_clean")

    def __init__(
        self,
        engine: object,
        view: object,
        dirty: Optional[Set[NodeId]],
        round_no: int,
    ) -> None:
        self.engine = engine
        self.view = view
        self.round_no = round_no
        self.n = engine.topo.n
        self.evaluations = 0
        self._dirty = dirty
        self._cap = engine.metric.infinity(engine.topo)
        self._probe_cache: Dict[NodeId, object] = {}
        #: nodes whose probe matched their current state since the last
        #: state change (the engine prunes them from the dirty set)
        self.probed_clean: set = set()

    def candidates(self) -> Iterable[NodeId]:
        """Nodes that may be enabled, in deterministic (id) order."""
        if self._dirty is None:
            return range(self.n)
        return sorted(self._dirty)

    def current(self, v: NodeId) -> object:
        """v's current state."""
        return self.view.states[v]

    def probe(self, v: NodeId) -> object:
        """The state the update rule assigns to ``v`` right now."""
        ns = self._probe_cache.get(v)
        if ns is None:
            ns = compute_update(self.engine.topo, self.engine.metric, self.view, v)
            self._probe_cache[v] = ns
            self.evaluations += 1
            if ns.approx_equals(self.view.states[v], tol=COST_TOL):
                self.probed_clean.add(v)
        return ns

    def is_enabled(self, v: NodeId) -> bool:
        """Whether ``v``'s guard is violated (its update would move it)."""
        return not self.probe(v).approx_equals(self.view.states[v], tol=COST_TOL)

    def capped(self, cost: float) -> float:
        """Cost clipped at OC_max (the Lyapunov summand)."""
        return min(cost, self._cap)

    def flush_probes(self) -> None:
        """Invalidate probe memos after a state change (engine-called)."""
        self._probe_cache.clear()
        self.probed_clean.clear()


# ----------------------------------------------------------------------
# The daemons
# ----------------------------------------------------------------------
class SynchronousDaemon(Daemon):
    """All nodes move simultaneously from the previous round's snapshot."""

    name = "synchronous"
    parallel = True
    overwrite = True

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        yield tuple(range(ctx.n))


class CentralDaemon(Daemon):
    """One node at a time, id order, each seeing the freshest states."""

    name = "central"

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        for v in range(ctx.n):
            yield (v,)


class RandomizedDaemon(Daemon):
    """Serial activation in a fresh random order every round.

    Strictly-improving local moves under the F/E metrics are not an exact
    potential game (a move changes *other* nodes' marginal costs), so a
    fixed activation order can enter a limit cycle in rare adversarial
    states.  Randomizing the order — which is what jittered beacon timing
    does in the real protocol — escapes such cycles almost surely.
    """

    name = "randomized"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        for v in self.rng.permutation(ctx.n):
            yield (int(v),)


class DistributedDaemon(Daemon):
    """k-local-parallel: random groups of ``k`` nodes move simultaneously.

    A random permutation is chunked into ``ceil(n / k)`` snapshot steps;
    within a step the ``k`` nodes all read the step-start view (the
    distributed-daemon assumption that an arbitrary bounded subset acts
    concurrently).  ``k = 1`` degenerates to the randomized serial
    daemon, ``k = n`` to a randomly-ordered synchronous one.
    """

    name = "distributed"
    parallel = True  # snapshot steps, but no sync-style silent rewrites

    def __init__(self, rng: np.random.Generator, k: int = 4) -> None:
        if k < 1:
            raise ValueError("distributed daemon needs k >= 1")
        self.rng = rng
        self.k = int(k)

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        perm = [int(v) for v in self.rng.permutation(ctx.n)]
        for i in range(0, ctx.n, self.k):
            yield tuple(perm[i : i + self.k])


class AdversarialMaxCostDaemon(Daemon):
    """Greedy adversary: always activates the worst enabled node.

    Each step it scans the enabled nodes (guard violated) and activates
    the one whose move leaves the total capped cost *highest* — the
    schedule that fights the Lemma-1 Lyapunov descent hardest.  A round
    is at most ``n`` such picks (or fewer when the system quiesces).
    Under metrics that are exact potentials (hop, tx) this only slows
    convergence; under the F/E metrics it can drive the limit cycles the
    randomized daemon escapes, which is precisely what makes it the right
    stress test for convergence claims.
    """

    name = "adversarial-max-cost"
    adaptive = True

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        for _ in range(ctx.n):
            best: Optional[Tuple[Tuple[float, int], NodeId]] = None
            for v in ctx.candidates():
                ns = ctx.probe(v)
                old = ctx.current(v)
                if ns.approx_equals(old, tol=COST_TOL):
                    continue
                delta = ctx.capped(ns.cost) - ctx.capped(old.cost)
                key = (delta, -v)  # max delta; ties -> smallest id
                if best is None or key > best[0]:
                    best = (key, v)
            if best is None:
                return  # quiescent: nothing enabled
            yield (best[1],)


class WeaklyFairDaemon(Daemon):
    """Bounded-delay daemon: random subsets, no node starved past ``delay``.

    Each round every node is scheduled with probability ``p``; a node
    skipped ``delay - 1`` rounds in a row is scheduled unconditionally,
    so any window of ``delay`` consecutive rounds activates every node at
    least once (weak fairness with a hard bound).  Scheduled nodes run
    serially in id order.  Because a round may legitimately make no moves
    while enabled nodes sit unscheduled, a fixpoint is only certified by
    ``delay`` consecutive move-free rounds (``quiescence_rounds``).
    """

    name = "weakly-fair"

    def __init__(self, rng: np.random.Generator, delay: int = 3, p: float = 0.5) -> None:
        if delay < 1:
            raise ValueError("weakly-fair daemon needs delay >= 1")
        if not 0.0 <= p <= 1.0:
            raise ValueError("activation probability must be in [0, 1]")
        self.rng = rng
        self.delay = int(delay)
        self.p = float(p)
        self.quiescence_rounds = int(delay)
        self._skipped: Optional[list] = None

    def reset(self, n: int) -> None:
        self._skipped = [0] * n  # consecutive rounds without activation

    def round_steps(self, ctx: RoundContext) -> Iterator[Step]:
        if self._skipped is None or len(self._skipped) != ctx.n:
            self.reset(ctx.n)
        draws = self.rng.random(ctx.n)
        skipped = self._skipped
        for v in range(ctx.n):
            if skipped[v] + 1 >= self.delay or draws[v] < self.p:
                skipped[v] = 0
                yield (v,)
            else:
                skipped[v] += 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Daemon]] = {
    d.name: d
    for d in (
        SynchronousDaemon,
        CentralDaemon,
        RandomizedDaemon,
        DistributedDaemon,
        AdversarialMaxCostDaemon,
        WeaklyFairDaemon,
    )
}

#: canonical daemon order used across configs, tests and reports
DAEMON_NAMES: Tuple[str, ...] = tuple(_REGISTRY)

#: subset with a DES (beacon-scheduling) realization; the adversarial
#: daemon is a round-model-only stress schedule (a packet-level adversary
#: would need omniscient, zero-latency control of every node's clock)
DES_DAEMON_NAMES: Tuple[str, ...] = tuple(
    n for n in DAEMON_NAMES if n != AdversarialMaxCostDaemon.name
)

def require_des_daemon(name: str) -> None:
    """Raise the canonical error when ``name`` has no DES realization.

    One message, shared by every layer that gates on a beacon-schedule
    realization (the DES experiment backend, the protocol factory), so
    callers and tests see the same wording everywhere.
    """
    if name not in DES_DAEMON_NAMES:
        raise ValueError(
            f"daemon {name!r} has no DES realization; choose "
            f"from {sorted(DES_DAEMON_NAMES)} (the adversarial daemon "
            f"is round-model only)"
        )


#: daemons whose construction takes an rng
_NEEDS_RNG = {RandomizedDaemon.name, DistributedDaemon.name, WeaklyFairDaemon.name}


def daemon_by_name(
    name: str, rng: Optional[np.random.Generator] = None, **kwargs: object
) -> Daemon:
    """Instantiate a daemon by registry name.

    ``rng`` feeds the stochastic daemons (randomized / distributed /
    weakly-fair); when omitted a deterministic default stream is used so
    engines stay reproducible.  Extra ``kwargs`` reach the daemon's
    constructor (e.g. ``k=`` for distributed, ``delay=``/``p=`` for
    weakly-fair).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown daemon {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    if cls.name in _NEEDS_RNG:
        if rng is None:
            rng = np.random.default_rng(0)
        return cls(rng, **kwargs)
    if kwargs:
        raise ValueError(f"daemon {name!r} takes no options (got {sorted(kwargs)})")
    return cls()
