"""Optional compiled kernels over the columnar engine state.

The array engine's hot loops — per-row in-range counting, the sequential
candidate fold, SS-SPST-E's fused pair pricing and the forest prefix
scan — exist in two interchangeable implementations:

* ``numpy`` (default) — the pure-numpy formulations in
  :mod:`repro.core.array_engine`; no dependencies beyond numpy.
* ``numba`` — JIT-compiled scalar loops over the same columnar arrays,
  selected with ``REPRO_KERNEL=numba`` (or :func:`set_kernel`).  When
  numba is not importable the selection *falls back* to numpy with a
  warning, so the same command line works on machines without it.

The contract is **bit-identical results**: every numba kernel mirrors
its numpy counterpart operation for operation (same float64 expressions,
same comparison semantics including NaN propagation and the
``radius + 1e-12`` bisection key), so trajectories are identical under
either value — pinned by the parity properties in
``tests/test_kernels.py``.

Kernels are compiled lazily on first use; selecting numba costs one JIT
compilation per kernel on the first engine step that needs it.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: recognized values of ``REPRO_KERNEL`` / :func:`set_kernel`
KERNEL_NAMES = ("numpy", "numba")

ENV_VAR = "REPRO_KERNEL"

_active: Optional[str] = None
_numba_ok: Optional[bool] = None
_compiled: Dict[str, Callable] = {}


def numba_available() -> bool:
    """Whether the numba JIT layer is importable (cached)."""
    global _numba_ok
    if _numba_ok is None:
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except ImportError:
            _numba_ok = False
    return _numba_ok


def _resolve(name: str) -> str:
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if name == "numba" and not numba_available():
        warnings.warn(
            "REPRO_KERNEL=numba requested but numba is not importable; "
            "falling back to the pure-numpy kernels (results are identical, "
            "only slower)",
            RuntimeWarning,
            stacklevel=3,
        )
        return "numpy"
    return name


def active_kernel() -> str:
    """The resolved kernel name (reads ``REPRO_KERNEL`` on first call)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(ENV_VAR, "numpy") or "numpy")
    return _active


def set_kernel(name: str) -> str:
    """Select a kernel programmatically; returns the *resolved* name
    (``numpy`` when numba was requested but is unavailable)."""
    global _active
    _active = _resolve(name)
    return _active


def use_numba() -> bool:
    return active_kernel() == "numba"


def get(name: str) -> Callable:
    """A kernel by name (``count_within`` / ``fold`` /
    ``energy_pair_costs`` / ``forest_scan``).  Returns the compiled
    numba kernel when numba is importable (compiling all on first use),
    otherwise the same-signature numpy twin from :data:`NUMPY_TWINS` —
    so ``get`` is callable on every machine and the two implementations
    stay drop-in interchangeable."""
    if name not in NUMPY_TWINS:
        raise KeyError(
            f"unknown kernel {name!r}; expected one of {sorted(NUMPY_TWINS)}"
        )
    if not numba_available():
        return NUMPY_TWINS[name]
    if not _compiled:
        _build()
    return _compiled[name]


# ---------------------------------------------------------------------------
# Numpy reference twins.
#
# One twin per njit kernel, with an *identical* parameter list and
# bit-identical results (same float64 expressions, same NaN and
# ``+ 1e-12`` bisection semantics).  They serve three roles: the
# :func:`get` fallback when numba is absent, the oracle side of the
# parity properties in ``tests/test_kernels.py``, and the statically
# checkable half of the K4xx lint contract (every ``_compiled`` kernel
# must appear in ``NUMPY_TWINS`` with a matching signature).
# ---------------------------------------------------------------------------


def numpy_count_within(
    indptr: np.ndarray,
    sdist: np.ndarray,
    U: np.ndarray,
    radius: np.ndarray,
) -> np.ndarray:
    out = np.empty(U.size, dtype=np.int64)
    for i in range(U.size):
        u = int(U[i])
        lo = int(indptr[u])
        hi = int(indptr[u + 1])
        out[i] = np.searchsorted(sdist[lo:hi], radius[i] + 1e-12, side="right")
    return out


def numpy_fold(
    starts: np.ndarray,
    counts: np.ndarray,
    valid: np.ndarray,
    eff: np.ndarray,
    oc: np.ndarray,
    inc: np.ndarray,
    hopU: np.ndarray,
    D: np.ndarray,
    U: np.ndarray,
    tol: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n_rows = starts.size
    has = np.zeros(n_rows, dtype=np.bool_)
    b_id = np.zeros(n_rows, dtype=np.int64)
    b_oc = np.zeros(n_rows, dtype=np.float64)
    b_hop = np.zeros(n_rows, dtype=np.int64)
    for r in range(n_rows):
        h = False
        beff = 0.0
        boc = 0.0
        binc = 0
        bhop = 0
        bd = 0.0
        bid = 0
        for j in range(int(starts[r]), int(starts[r]) + int(counts[r])):
            if not valid[j]:
                continue
            ca = float(eff[j])
            if not h:
                take = True
            else:
                aa = abs(ca)
                ab = abs(beff)
                if aa != aa:
                    m = aa
                elif ab != ab:
                    m = ab
                elif aa > ab:
                    m = aa
                else:
                    m = ab
                band = tol * m
                if ca < beff - band:
                    take = True
                elif ca > beff + band:
                    take = False
                else:
                    ainc = int(inc[j])
                    ahop = int(hopU[j])
                    ad = float(D[j])
                    au = int(U[j])
                    take = (ainc < binc) or (
                        ainc == binc
                        and (
                            ahop < bhop
                            or (
                                ahop == bhop
                                and (ad < bd or (ad == bd and au < bid))
                            )
                        )
                    )
            if take:
                h = True
                beff = ca
                boc = float(oc[j])
                binc = int(inc[j])
                bhop = int(hopU[j])
                bd = float(D[j])
                bid = int(U[j])
        has[r] = h
        b_id[r] = bid
        b_oc[r] = boc
        b_hop[r] = bhop
    return has, b_id, b_oc, b_hop


def numpy_energy_pair_costs(
    V: np.ndarray,
    U: np.ndarray,
    D: np.ndarray,
    etx_d: np.ndarray,
    flags: np.ndarray,
    tin: np.ndarray,
    tout: np.ndarray,
    Pd: np.ndarray,
    Pc: np.ndarray,
    ft1: np.ndarray,
    ft1c: np.ndarray,
    ft2: np.ndarray,
    ft1e: np.ndarray,
    ft2e: np.ndarray,
    indptr: np.ndarray,
    sdist: np.ndarray,
    e_rx: float,
    inf: float,
) -> np.ndarray:
    P = V.size
    oc = np.empty(P, dtype=np.float64)
    for i in range(P):
        v = int(V[i])
        u = int(U[i])
        vfl = bool(flags[v])
        if tin[v] <= tin[u] and tin[u] < tout[v]:
            price = inf
        elif vfl and not flags[u]:
            price = float(Pc[u])
        else:
            price = float(Pd[u])
        delta = 0.0
        if vfl:
            if ft1c[u] == v:
                r_wo = float(ft2[u])
                r_e = float(ft2e[u])
            else:
                r_wo = float(ft1[u])
                r_e = float(ft1e[u])
            d = float(D[i])
            if not (d <= r_wo):
                lo = int(indptr[u])
                hi = int(indptr[u + 1])
                cnt_d = np.searchsorted(sdist[lo:hi], d + 1e-12, side="right")
                ncar_d = float(etx_d[i]) + cnt_d * e_rx
                if r_wo > 0.0:
                    cnt_r = np.searchsorted(
                        sdist[lo:hi], r_wo + 1e-12, side="right"
                    )
                    ncar_r = r_e + cnt_r * e_rx
                else:
                    ncar_r = 0.0
                delta = ncar_d - ncar_r
        oc[i] = price + delta
    return oc


def numpy_forest_scan(
    kptr: np.ndarray,
    kcnt: np.ndarray,
    kbuf: np.ndarray,
    roots: np.ndarray,
    src: int,
    flags: np.ndarray,
    ML: np.ndarray,
    costa: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n = kptr.size
    Pd = np.zeros(n, dtype=np.float64)
    Pc = np.zeros(n, dtype=np.float64)
    tin = np.zeros(n, dtype=np.int64)
    tout = np.zeros(n, dtype=np.int64)
    stack = np.empty(n + 1, dtype=np.int64)
    curs = np.empty(n + 1, dtype=np.int64)
    t = 0
    for ri in range(roots.size):
        root = int(roots[ri])
        base = 0.0 if root == src else float(costa[root])
        Pd[root] = base
        Pc[root] = base
        top = 0
        stack[0] = root
        curs[0] = 0
        tin[root] = t
        t += 1
        while top >= 0:
            w = int(stack[top])
            k = int(curs[top])
            nxt = -1
            while k < kcnt[w]:
                c = int(kbuf[kptr[w] + k])
                k += 1
                if c != src:
                    nxt = c
                    break
            curs[top] = k
            if nxt >= 0:
                Pd[nxt] = Pd[w]
                if flags[w]:
                    Pc[nxt] = Pd[w] + ML[nxt]
                else:
                    Pc[nxt] = Pc[w] + ML[nxt]
                tin[nxt] = t
                t += 1
                top += 1
                stack[top] = nxt
                curs[top] = 0
            else:
                tout[w] = t
                top -= 1
    return Pd, Pc, tin, tout


#: kernel-parity contract: compiled kernel name -> numpy reference twin
#: (same parameter list; checked statically by lint rules K401/K402 and
#: dynamically by ``tests/test_kernels.py``).
NUMPY_TWINS: Dict[str, Callable] = {
    "count_within": numpy_count_within,
    "fold": numpy_fold,
    "energy_pair_costs": numpy_energy_pair_costs,
    "forest_scan": numpy_forest_scan,
}


def _build() -> None:
    import numba

    njit = numba.njit(cache=False, fastmath=False)

    # Every kernel mirrors its numpy counterpart in array_engine.py
    # expression for expression; see that module for the semantics.

    @njit
    def count_within(
        indptr: np.ndarray,
        sdist: np.ndarray,
        U: np.ndarray,
        radius: np.ndarray,
    ) -> np.ndarray:
        # EdgeCsr.count_within: per-row bisect_right over the
        # distance-sorted slice, same ``radius + 1e-12`` key.
        out = np.empty(U.size, dtype=np.int64)
        for i in range(U.size):
            u = U[i]
            key = radius[i] + 1e-12
            lo = indptr[u]
            hi = indptr[u + 1]
            base = lo
            while lo < hi:
                mid = (lo + hi) >> 1
                if sdist[mid] <= key:
                    lo = mid + 1
                else:
                    hi = mid
            out[i] = lo - base
        return out

    @njit
    def fold(
        starts: np.ndarray,
        counts: np.ndarray,
        valid: np.ndarray,
        eff: np.ndarray,
        oc: np.ndarray,
        inc: np.ndarray,
        hopU: np.ndarray,
        D: np.ndarray,
        U: np.ndarray,
        tol: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        # ArrayRoundEngine._fold: the sequential incumbent/hop/id
        # tie-break of rules._better, one row at a time in slot order.
        n_rows = starts.size
        has = np.zeros(n_rows, dtype=np.bool_)
        b_id = np.zeros(n_rows, dtype=np.int64)
        b_oc = np.zeros(n_rows, dtype=np.float64)
        b_hop = np.zeros(n_rows, dtype=np.int64)
        for r in range(n_rows):
            h = False
            beff = 0.0
            boc = 0.0
            binc = np.int64(0)
            bhop = np.int64(0)
            bd = 0.0
            bid = np.int64(0)
            for j in range(starts[r], starts[r] + counts[r]):
                if not valid[j]:
                    continue
                ca = eff[j]
                if not h:
                    take = True
                else:
                    # band = tol * np.maximum(|ca|, |cb|): NaN propagates
                    aa = abs(ca)
                    ab = abs(beff)
                    if aa != aa:
                        m = aa
                    elif ab != ab:
                        m = ab
                    elif aa > ab:
                        m = aa
                    else:
                        m = ab
                    band = tol * m
                    if ca < beff - band:
                        take = True
                    elif ca > beff + band:
                        take = False
                    else:
                        ainc = inc[j]
                        ahop = hopU[j]
                        ad = D[j]
                        au = U[j]
                        take = (ainc < binc) or (
                            ainc == binc
                            and (
                                ahop < bhop
                                or (
                                    ahop == bhop
                                    and (
                                        ad < bd
                                        or (ad == bd and au < bid)
                                    )
                                )
                            )
                        )
                if take:
                    h = True
                    beff = ca
                    boc = oc[j]
                    binc = inc[j]
                    bhop = hopU[j]
                    bd = D[j]
                    bid = U[j]
            has[r] = h
            b_id[r] = bid
            b_oc[r] = boc
            b_hop[r] = bhop
        return has, b_id, b_oc, b_hop

    @njit
    def energy_pair_costs(
        V: np.ndarray,
        U: np.ndarray,
        D: np.ndarray,
        etx_d: np.ndarray,
        flags: np.ndarray,
        tin: np.ndarray,
        tout: np.ndarray,
        Pd: np.ndarray,
        Pc: np.ndarray,
        ft1: np.ndarray,
        ft1c: np.ndarray,
        ft2: np.ndarray,
        ft1e: np.ndarray,
        ft2e: np.ndarray,
        indptr: np.ndarray,
        sdist: np.ndarray,
        e_rx: float,
        inf: float,
    ) -> np.ndarray:
        # ArrayRoundEngine._pair_costs, energy branch: fused price +
        # marginal per candidate pair (before correction zones, which
        # stay in the shared Python path).
        P = V.size
        oc = np.empty(P, dtype=np.float64)
        for i in range(P):
            v = V[i]
            u = U[i]
            vfl = flags[v]
            if tin[v] <= tin[u] and tin[u] < tout[v]:
                price = inf
            elif vfl and not flags[u]:
                price = Pc[u]
            else:
                price = Pd[u]
            delta = 0.0
            if vfl:
                if ft1c[u] == v:
                    r_wo = ft2[u]
                    r_e = ft2e[u]
                else:
                    r_wo = ft1[u]
                    r_e = ft1e[u]
                d = D[i]
                if not (d <= r_wo):
                    key = d + 1e-12
                    lo = indptr[u]
                    hi = indptr[u + 1]
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if sdist[mid] <= key:
                            lo = mid + 1
                        else:
                            hi = mid
                    cnt_d = lo - indptr[u]
                    ncar_d = etx_d[i] + cnt_d * e_rx
                    if r_wo > 0.0:
                        key = r_wo + 1e-12
                        lo = indptr[u]
                        hi = indptr[u + 1]
                        while lo < hi:
                            mid = (lo + hi) >> 1
                            if sdist[mid] <= key:
                                lo = mid + 1
                            else:
                                hi = mid
                        cnt_r = lo - indptr[u]
                        ncar_r = r_e + cnt_r * e_rx
                    else:
                        ncar_r = 0.0
                    delta = ncar_d - ncar_r
            oc[i] = price + delta
        return oc

    @njit
    def forest_scan(
        kptr: np.ndarray,
        kcnt: np.ndarray,
        kbuf: np.ndarray,
        roots: np.ndarray,
        src: int,
        flags: np.ndarray,
        ML: np.ndarray,
        costa: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        # ArrayRoundEngine's chain-price prefix scan + Euler intervals,
        # as one iterative DFS over the child CSR (source cut applied by
        # skipping the source as a child).  The interval *numbering*
        # differs from the numpy level sweep — only interval membership
        # is ever observed, and any consistent DFS numbering yields the
        # same verdicts; the Pd/Pc float expressions are identical.
        n = kptr.size
        Pd = np.zeros(n, dtype=np.float64)
        Pc = np.zeros(n, dtype=np.float64)
        tin = np.zeros(n, dtype=np.int64)
        tout = np.zeros(n, dtype=np.int64)
        stack = np.empty(n + 1, dtype=np.int64)
        curs = np.empty(n + 1, dtype=np.int64)
        t = np.int64(0)
        for ri in range(roots.size):
            root = roots[ri]
            if root == src:
                base = 0.0
            else:
                base = costa[root]
            Pd[root] = base
            Pc[root] = base
            top = 0
            stack[0] = root
            curs[0] = 0
            tin[root] = t
            t += 1
            while top >= 0:
                w = stack[top]
                k = curs[top]
                nxt = np.int64(-1)
                while k < kcnt[w]:
                    c = kbuf[kptr[w] + k]
                    k += 1
                    if c != src:
                        nxt = c
                        break
                curs[top] = k
                if nxt >= 0:
                    Pd[nxt] = Pd[w]
                    if flags[w]:
                        Pc[nxt] = Pd[w] + ML[nxt]
                    else:
                        Pc[nxt] = Pc[w] + ML[nxt]
                    tin[nxt] = t
                    t += 1
                    top += 1
                    stack[top] = nxt
                    curs[top] = 0
                else:
                    tout[w] = t
                    top -= 1
        return Pd, Pc, tin, tout

    _compiled["count_within"] = count_within
    _compiled["fold"] = fold
    _compiled["energy_pair_costs"] = energy_pair_costs
    _compiled["forest_scan"] = forest_scan
