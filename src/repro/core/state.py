"""Per-node protocol state and derived structures.

Each node maintains (paper section 5):

* ``parent`` — current parent pointer (``None`` = disconnected or root),
* ``cost``  — the overhead energy cost ``oc_v`` estimated at the node,
* ``hop``   — hop count to the root (bounded by ``|V|`` for loop control).

A :class:`StateVector` is simply a list of states indexed by node id; the
helpers derive the children map (a node's children are the nodes whose
parent pointer names it) and the bottom-up member *flags* used for pruning
and by the SS-SPST-E metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graph.topology import Topology
from repro.util.ids import NodeId


@dataclass(frozen=True)
class NodeState:
    """One node's protocol variables."""

    parent: Optional[NodeId]
    cost: float
    hop: int

    def approx_equals(self, other: "NodeState", tol: float = 1e-9) -> bool:
        """Equality with a *relative* floating-point tolerance on the cost.

        The tolerance is purely relative — ``tol * max(|self|, |other|)``
        — so the predicate is invariant under uniform rescaling of the
        cost unit (per-bit energy units are arbitrary; an absolute floor
        would make the tie band unit-dependent, which changed the chosen
        tree when radio constants were rescaled).
        """
        return (
            self.parent == other.parent
            and self.hop == other.hop
            and abs(self.cost - other.cost)
            <= tol * max(abs(self.cost), abs(other.cost))
        )


StateVector = List[NodeState]


def derive_children(states: Sequence[NodeState]) -> Dict[NodeId, List[NodeId]]:
    """children[u] = sorted nodes whose parent pointer is u."""
    children: Dict[NodeId, List[NodeId]] = {v: [] for v in range(len(states))}
    for v, st in enumerate(states):
        if st.parent is not None:
            children[st.parent].append(v)
    for lst in children.values():
        lst.sort()
    return children


def derive_flags(topo: Topology, states: Sequence[NodeState]) -> List[bool]:
    """Bottom-up member flags, robust to illegitimate (cyclic) states.

    ``flag[v]`` is True iff ``v`` is a member or (transitively) some node
    pointing down to ``v`` is flagged.  Computed as a bounded fixpoint so it
    terminates even when parent pointers form cycles (possible in arbitrary
    initial states).
    """
    n = len(states)
    flag = [v in topo.members for v in range(n)]
    children = derive_children(states)
    for _ in range(n):
        changed = False
        for u in range(n):
            if not flag[u] and any(flag[c] for c in children[u]):
                flag[u] = True
                changed = True
        if not changed:
            break
    return flag
