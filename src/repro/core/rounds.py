"""The round engine: one evaluator for every activation daemon.

The paper measures stabilization in *rounds*: "the time period in which
each node in the system receives at least one beacon message from each of
its neighbors and performs computation based on its received information"
(section 2).  *Which* nodes act within a round — and in what order — is
the **daemon** (:mod:`repro.core.daemons`); *how* scheduled nodes are
evaluated is the :class:`RoundEngine`, which comes in two modes:

* **full** — every scheduled node is evaluated every round (the baseline
  the proofs talk about);
* **incremental** — only scheduled nodes in the **dirty set** are
  evaluated: the nodes whose dependency region changed since they were
  last evaluated.  For the locally-coupled metrics (hop, tx, farthest)
  the region is a ``dependency_radius``-hop closure around the endpoints
  of each change (see :class:`~repro.core.metrics.CostMetric`).  The
  chain-coupled SS-SPST-E metric reads, at every evaluation, the whole
  ancestor chains of the candidate parents — so a change reaches exactly
  the nodes *adjacent to the subtrees* of the touched tree positions:
  the moved node, both parent endpoints, and every ancestor whose member
  flag flipped (reported by :meth:`~repro.core.views.GlobalView.apply`).
  When the view cannot localize a change (parent cycles in illegitimate
  states), the engine degenerates gracefully to a full dirty set for
  that change.

For every daemon the two modes produce **bit-identical trajectories**
(states, rounds, cost history, moves): a node outside the dirty set
recomputes exactly the state it already holds, so skipping it cannot
alter any round's outcome.

The pre-decomposition executor names (``SyncExecutor``,
``CentralDaemonExecutor``, ``RandomizedDaemonExecutor``,
``IncrementalSyncExecutor``, ``IncrementalCentralDaemonExecutor``)
remain importable as thin shims over ``RoundEngine`` so existing callers
keep working; new code should say
``RoundEngine(topo, metric, daemon="central", incremental=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.daemons import Daemon, RoundContext, daemon_by_name
from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, H_MAX, compute_update
from repro.core.state import NodeState, StateVector
from repro.core.views import GlobalView
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment


def fresh_states(topo: Topology, metric: CostMetric) -> StateVector:
    """Canonical start: root correct, everyone else disconnected.

    "Each node in the network, when it is not connected to the tree has an
    energy cost OC_max" (section 5).
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    return [
        NodeState(parent=None, cost=0.0, hop=0)
        if v == topo.source
        else NodeState(parent=None, cost=inf, hop=h_max)
        for v in range(topo.n)
    ]


def arbitrary_states(
    topo: Topology,
    metric: CostMetric,
    rng: np.random.Generator,
) -> StateVector:
    """A random (possibly wildly illegitimate) initial state.

    Parent pointers may form cycles, point anywhere in the neighborhood or
    be absent; costs and hops are random garbage within representable
    bounds.  Self-stabilization must recover from *any* such state
    (Lemma 1), which the property tests exercise.
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    states: StateVector = []
    for v in range(topo.n):
        nbrs = topo.neighbors(v)
        if nbrs and rng.random() < 0.8:
            parent = int(rng.choice(nbrs))
        else:
            parent = None
        cost = float(rng.uniform(0.0, inf))
        hop = int(rng.integers(0, h_max + 1))
        states.append(NodeState(parent=parent, cost=cost, hop=hop))
    return states


@dataclass
class StabilizationResult:
    """Outcome of running an engine to fixpoint."""

    states: StateVector
    rounds: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    moves: int = 0  # total individual state changes applied
    #: rule evaluations spent *stabilizing*: evaluations in rounds that
    #: moved at least one node.  The trailing move-free pass(es) that
    #: certify the fixpoint are a convergence check, not work — the
    #: incremental engine may short-circuit them entirely (empty dirty
    #: set), so counting them made the full and incremental diagnostics
    #: disagree by exactly n on the final round.  Runs that exhaust
    #: ``max_rounds`` without converging count every evaluation.
    evaluations: int = 0
    #: ancestor steps walked by SS-SPST-E chain pricing (diagnostic; the
    #: quantity the cross-evaluation price-prefix memo shrinks — always 0
    #: for metrics without chain coupling)
    chain_steps: int = 0

    def tree(self, topo: Topology) -> TreeAssignment:
        """Extract the parent assignment as a validated tree."""
        return TreeAssignment(topo, [s.parent for s in self.states])

    def as_dict(self) -> dict:
        """JSON-safe stabilization counts (no state vector / history).

        The quantities the experiment layer records and aggregates; the
        rounds backend builds its run summaries from these.
        """
        return {
            "rounds": self.rounds,
            "converged": bool(self.converged),
            "moves": self.moves,
            "evaluations": self.evaluations,
            "chain_steps": self.chain_steps,
        }


def total_cost(states: Sequence[NodeState], cap: float) -> float:
    """Sum of per-node costs, capped (the Lemma-1 Lyapunov quantity)."""
    return float(sum(min(s.cost, cap) for s in states))


class RoundEngine:
    """Evaluate a daemon's activation schedule to a fixpoint.

    Parameters
    ----------
    daemon:
        A :class:`~repro.core.daemons.Daemon` instance or registry name
        (``"synchronous"``, ``"central"``, ``"randomized"``,
        ``"distributed"``, ``"adversarial-max-cost"``, ``"weakly-fair"``).
    incremental:
        Dirty-set evaluation (bit-identical to full evaluation, usually
        much cheaper once the system is mostly settled).
    rng:
        Feeds stochastic daemons when ``daemon`` is given by name.
    """

    def __init__(
        self,
        topo: Topology,
        metric: CostMetric,
        daemon: Union[str, Daemon] = "synchronous",
        *,
        incremental: bool = False,
        rng: Optional[np.random.Generator] = None,
        **daemon_options: object,
    ) -> None:
        self.topo = topo
        self.metric = metric
        if isinstance(daemon, Daemon):
            if daemon_options:
                raise ValueError("daemon options require a daemon given by name")
            self.daemon = daemon
        else:
            self.daemon = daemon_by_name(daemon, rng=rng, **daemon_options)
        self.incremental = bool(incremental)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Run rounds until a fixpoint (or ``max_rounds``).

        ``rounds`` in the result counts rounds in which at least one node
        changed state — the paper's "takes k rounds to stabilize".
        """
        view = self._make_view(states)
        dirty = set(range(self.topo.n)) if self.incremental else None
        return self._run_from(view, dirty, max_rounds)

    def run_perturbed(
        self,
        settled_states: StateVector,
        perturbations: Sequence,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Resume from a previously *settled* state vector after external
        state changes (faults), evaluating only the affected region.

        ``perturbations`` is a sequence of ``(v, new_state)`` pairs applied
        on top of ``settled_states``.  Because the changes enter through
        :meth:`GlobalView.apply`, their reach is known exactly and the
        initial dirty set is the changes' dependency region instead of the
        whole network — this is where the incremental mode beats full
        evaluation by orders of magnitude (full evaluation re-evaluates
        every scheduled node every round no matter how local the fault).

        The trajectory is bit-identical to ``run()`` on the perturbed
        vector **provided ``settled_states`` was a fixpoint** (then every
        node outside the affected region would recompute exactly the state
        it already holds).  Resuming from a non-fixpoint vector violates
        that contract and may skip pending moves.  In full mode this is
        simply ``run()`` on the perturbed vector.
        """
        view = self._make_view(settled_states)
        if not self.incremental:
            for v, new_state in perturbations:
                if new_state != view.states[v]:
                    view.apply(v, new_state)
            return self._run_from(view, None, max_rounds)
        if getattr(self.metric, "path_couples_to_children", False):
            # Materialize flags/counters up front so the applies below can
            # report their flag flips (a parent-moving apply on a view
            # without flags returns "unknown" and would dirty everyone).
            # Locally-coupled metrics never read flags — skip the O(n·depth)
            # derivation for them.
            view.flag_of(0)
        dirty: Set[int] = set()
        for v, new_state in perturbations:
            old = view.states[v]
            if new_state == old:
                continue
            report = view.apply(v, new_state)
            dirty |= self._affected(view, [(v, old, new_state)], [report])
        return self._run_from(view, dirty, max_rounds)

    # ------------------------------------------------------------------
    # Engine extension points
    # ------------------------------------------------------------------
    def _make_view(self, states: Sequence[NodeState]) -> GlobalView:
        """Build the working view; array engines substitute a columnar one."""
        return GlobalView(self.topo, states)

    def _evaluate_step(self, view: GlobalView, todo: Sequence[int]) -> List[NodeState]:
        """Compute the rule for every node of one activation step.

        All evaluations within a step read the same snapshot (no applies
        happen between them), so subclasses may batch them —
        :class:`~repro.core.array_engine.ArrayRoundEngine` evaluates the
        whole step as vectorized array operations.  Must return the new
        states aligned with ``todo``.
        """
        return [compute_update(self.topo, self.metric, view, v) for v in todo]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run_from(
        self,
        view: GlobalView,
        dirty: Optional[Set[int]],
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        daemon = self.daemon
        daemon.reset(self.topo.n)
        cap = self.metric.infinity(self.topo)
        states = view.states  # the view owns the working copy
        history = [total_cost(states, cap)]
        moves = 0
        rounds = 0
        evaluations = 0
        quiet_rounds = 0
        quiet_evals = 0
        converged = False
        for round_no in range(max_rounds):
            n_moves, n_evals, dirty = self._play_round(view, dirty, round_no)
            history.append(total_cost(states, cap))
            if n_moves == 0:
                # A move-free round only *certifies* a fixpoint once the
                # daemon's quiescence window is full (a partial daemon may
                # simply not have scheduled any enabled node); its
                # evaluations are check-pass work and are discarded on
                # successful convergence.
                quiet_rounds += 1
                quiet_evals += n_evals
                if quiet_rounds >= daemon.quiescence_rounds:
                    converged = True
                    break
            else:
                evaluations += quiet_evals + n_evals
                quiet_evals = 0
                quiet_rounds = 0
                rounds += 1
                moves += n_moves
        if not converged:
            evaluations += quiet_evals
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=converged,
            cost_history=history,
            moves=moves,
            evaluations=evaluations,
            chain_steps=view.chain_steps,
        )

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def _play_round(
        self, view: GlobalView, dirty: Optional[Set[int]], round_no: int
    ) -> Tuple[int, int, Optional[Set[int]]]:
        """Play one round; returns ``(n_moves, n_evals, next_dirty)``.

        ``dirty is None`` selects full evaluation.  The incremental
        bookkeeping mirrors what the daemon would let each node *see*:
        when a change dirties a node whose activation step is still ahead
        in this round's schedule, it is re-marked for the current round
        (it would have read the fresh state anyway); nodes whose step
        already passed — or that are not scheduled at all this round —
        carry over to the next round.
        """
        if self.daemon.adaptive:
            return self._play_adaptive_round(view, dirty, round_no)

        ctx = RoundContext(self, view, dirty, round_no)
        steps = [
            tuple(int(v) for v in step) for step in self.daemon.round_steps(ctx)
        ]
        pos = {}
        if dirty is not None:  # only the in-round re-dirty logic reads pos
            for i, step in enumerate(steps):
                for v in step:
                    pos[v] = i
        next_dirty: Optional[Set[int]] = set() if dirty is not None else None
        n_moves = 0
        n_evals = 0
        for i, step in enumerate(steps):
            # Snapshot semantics: every update in the step is computed
            # from the step-start view, then all are applied.  (A 1-node
            # step makes the snapshot distinction vacuous, so serial
            # daemons flow through the same code path; only the write
            # policy differs — see ``overwrite``.)
            todo = []
            for v in step:
                if dirty is not None:
                    if v not in dirty:
                        continue
                    dirty.discard(v)
                todo.append(v)
            olds = [view.states[v] for v in todo]
            news = self._evaluate_step(view, todo)
            n_evals += len(todo)
            n_moves += self._commit_step(
                view, i, todo, olds, news, dirty, next_dirty, pos
            )
        if dirty is not None:
            # Dirty nodes the daemon never scheduled this round stay dirty.
            next_dirty |= dirty
        return n_moves, n_evals, next_dirty

    def _commit_step(
        self,
        view: GlobalView,
        step_idx: int,
        todo: Sequence[int],
        olds: Sequence[NodeState],
        news: Sequence[NodeState],
        dirty: Optional[Set[int]],
        next_dirty: Optional[Set[int]],
        pos: Dict[int, int],
    ) -> int:
        """Apply one activation step's evaluated updates; returns the
        number of genuine moves.

        The engine's second extension point (after :meth:`_evaluate_step`):
        all of a step's updates are known before any is applied, so
        subclasses may commit them as one batch —
        :class:`~repro.core.array_engine.ArrayRoundEngine` scatters the
        whole step into its columns at once.  Must preserve the scalar
        semantics exactly: a *genuine* move is one failing the tolerant
        ``approx_equals`` check; non-genuine but bitwise-different states
        are still written under parallel overwrite daemons (silent
        rewrites), and every applied change dirties its affected region,
        split between this round (steps still ahead, read via ``pos``)
        and the next.
        """
        n_moves = 0
        parallel = self.daemon.parallel
        overwrite = self.daemon.overwrite
        for v, old, ns in zip(todo, olds, news):
            genuine = not ns.approx_equals(old, tol=COST_TOL)
            if genuine:
                n_moves += 1
            elif not (parallel and overwrite and ns != old):
                continue  # no move; silent rewrites only when overwriting
            # Affected sets are computed per change, immediately after
            # its apply: single-step reader analysis is exact (flags
            # and parents are read in the world the change produced),
            # and the union over steps covers the whole batch.
            report = view.apply(v, ns)
            if dirty is not None:
                for w in self._affected(view, [(v, old, ns)], [report]):
                    if pos.get(w, -1) > step_idx:
                        dirty.add(w)
                    else:
                        next_dirty.add(w)
        return n_moves

    def _play_adaptive_round(
        self, view: GlobalView, dirty: Optional[Set[int]], round_no: int
    ) -> Tuple[int, int, Optional[Set[int]]]:
        """Adaptive daemons read the live view while scheduling, so the
        round is driven lazily: each yielded step is applied before the
        daemon is re-entered.  Evaluation happens through the context's
        probe memo (shared with the daemon's own enabled-node scans), and
        the dirty set is maintained step by step: probed-clean nodes drop
        out, each applied change re-dirties its affected region."""
        ctx = RoundContext(self, view, dirty, round_no)
        n_moves = 0
        for step in self.daemon.round_steps(ctx):
            for v in step:
                old = view.states[v]
                ns = ctx.probe(v)
                if ns.approx_equals(old, tol=COST_TOL):
                    continue  # the daemon scheduled a node that is clean
                report = view.apply(v, ns)
                n_moves += 1
                if dirty is not None:
                    dirty -= ctx.probed_clean
                    dirty.discard(v)
                    dirty |= self._affected(view, [(v, old, ns)], [report])
                ctx.flush_probes()
        if dirty is not None:
            dirty -= ctx.probed_clean
        return n_moves, ctx.evaluations, dirty

    # ------------------------------------------------------------------
    def _affected(
        self,
        view: GlobalView,
        changes: Iterable[Tuple[int, NodeState, NodeState]],
        reports: Optional[Sequence[object]] = None,
    ) -> Set[int]:
        """Nodes whose next update may differ after the given changes.

        ``changes`` is an iterable of ``(v, old_state, new_state)``;
        ``reports`` the per-change flag-flip reports returned by
        :meth:`GlobalView.apply` (``None`` entries mean the view could not
        localize the change).

        The seed set is the changed nodes plus the endpoints of any moved
        parent pointer (their children lists — and hence their advertised
        radii — changed too).  Metrics whose path cost couples to the
        child set (SS-SPST-E) additionally read, for every candidate, the
        radii/flags along the candidate's whole ancestor chain: a change
        at tree position ``y`` is therefore read by exactly the candidates
        in ``y``'s subtree, i.e. the evaluators adjacent to it.  For those
        metrics the seeds are widened to the subtrees of every touched
        position — the moved node, both endpoints, every flag-flipped
        ancestor and its parent (whose flagged radius changed).  Finally
        the closure extends the metric's ``dependency_radius`` hops around
        the seeds.  A ``None`` radius (or an unlocalizable change) means
        every node is affected.
        """
        radius = self.metric.dependency_radius
        if radius is None:
            return set(range(self.topo.n))
        chain_coupled = getattr(self.metric, "path_couples_to_children", False)
        seeds = set()
        subtree_roots = set()
        for i, (v, old, new) in enumerate(changes):
            seeds.add(v)
            endpoints = []
            if old.parent != new.parent:
                if old.parent is not None:
                    endpoints.append(old.parent)
                if new.parent is not None:
                    endpoints.append(new.parent)
            seeds.update(endpoints)
            if chain_coupled:
                flips = reports[i] if reports is not None else None
                if flips is None:
                    return set(range(self.topo.n))
                # v's own subtree re-routes through the new chain (and
                # chains terminating at a disconnected v read its cost).
                subtree_roots.add(v)
                # The endpoints' *flagged* radii only changed if the moved
                # child carries a flag; moves of pruned (unflagged) nodes
                # stay invisible to every chain price.
                if view.flag_of(v):
                    subtree_roots.update(endpoints)
                for f in flips:
                    subtree_roots.add(f)
                    pf = view.states[f].parent
                    if pf is not None:
                        subtree_roots.add(pf)
        if subtree_roots:
            seeds |= view.collect_subtrees(subtree_roots)
        out = set(seeds)
        frontier = seeds
        for _ in range(radius):
            nxt = set()
            for v in frontier:
                nxt.update(self.topo.neighbors(v))
            nxt -= out
            if not nxt:
                break
            out |= nxt
            frontier = nxt
        return out


#: backwards-compatible alias (pre-decomposition private base class name)
_ExecutorBase = RoundEngine


# ----------------------------------------------------------------------
# Deprecated executor shims
# ----------------------------------------------------------------------
class SyncExecutor(RoundEngine):
    """Deprecated: ``RoundEngine(topo, metric, daemon="synchronous")``."""

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        super().__init__(topo, metric, daemon="synchronous")


class CentralDaemonExecutor(RoundEngine):
    """Deprecated: ``RoundEngine(topo, metric, daemon="central")``."""

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        super().__init__(topo, metric, daemon="central")


class RandomizedDaemonExecutor(RoundEngine):
    """Deprecated: ``RoundEngine(topo, metric, daemon="randomized", rng=rng)``."""

    def __init__(
        self, topo: Topology, metric: CostMetric, rng: np.random.Generator
    ) -> None:
        super().__init__(topo, metric, daemon="randomized", rng=rng)


class IncrementalSyncExecutor(RoundEngine):
    """Deprecated: ``RoundEngine(..., daemon="synchronous", incremental=True)``."""

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        super().__init__(topo, metric, daemon="synchronous", incremental=True)


class IncrementalCentralDaemonExecutor(RoundEngine):
    """Deprecated: ``RoundEngine(..., daemon="central", incremental=True)``."""

    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        super().__init__(topo, metric, daemon="central", incremental=True)
