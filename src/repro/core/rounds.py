"""Round executors for the self-stabilizing algorithm.

The paper measures stabilization in *rounds*: "the time period in which
each node in the system receives at least one beacon message from each of
its neighbors and performs computation based on its received information"
(section 2).  Two classic daemons are provided:

* :class:`SyncExecutor` — all nodes update simultaneously from the
  previous round's states (the synchronous daemon; what the paper's
  round-count examples describe);
* :class:`CentralDaemonExecutor` — nodes update one at a time in id order
  within a round, each seeing the freshest states (the central daemon under
  which Dijkstra-style proofs are usually stated; also closest to the DES
  protocol, where jittered beacons serialize updates).

Both track the per-round total cost (the Lyapunov quantity of Lemma 1) and
stop at a fixpoint.

The incremental variants — :class:`IncrementalSyncExecutor` and
:class:`IncrementalCentralDaemonExecutor` — compute *bit-identical*
trajectories (states, rounds, cost history, moves) while only
re-evaluating a **dirty set**: the nodes whose dependency region changed
since they were last evaluated.  The region is derived from the metric's
``dependency_radius`` (see :class:`~repro.core.metrics.CostMetric`); for
the globally-coupled SS-SPST-E metric every node stays dirty while the
system moves, so the incremental executors degenerate gracefully to the
baseline behaviour (still benefiting from the in-place
:meth:`~repro.core.views.GlobalView.apply` view maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, H_MAX, compute_update
from repro.core.state import NodeState, StateVector
from repro.core.views import GlobalView
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment


def fresh_states(topo: Topology, metric: CostMetric) -> StateVector:
    """Canonical start: root correct, everyone else disconnected.

    "Each node in the network, when it is not connected to the tree has an
    energy cost OC_max" (section 5).
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    return [
        NodeState(parent=None, cost=0.0, hop=0)
        if v == topo.source
        else NodeState(parent=None, cost=inf, hop=h_max)
        for v in range(topo.n)
    ]


def arbitrary_states(
    topo: Topology,
    metric: CostMetric,
    rng: np.random.Generator,
) -> StateVector:
    """A random (possibly wildly illegitimate) initial state.

    Parent pointers may form cycles, point anywhere in the neighborhood or
    be absent; costs and hops are random garbage within representable
    bounds.  Self-stabilization must recover from *any* such state
    (Lemma 1), which the property tests exercise.
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    states: StateVector = []
    for v in range(topo.n):
        nbrs = topo.neighbors(v)
        if nbrs and rng.random() < 0.8:
            parent = int(rng.choice(nbrs))
        else:
            parent = None
        cost = float(rng.uniform(0.0, inf))
        hop = int(rng.integers(0, h_max + 1))
        states.append(NodeState(parent=parent, cost=cost, hop=hop))
    return states


@dataclass
class StabilizationResult:
    """Outcome of running an executor to fixpoint."""

    states: StateVector
    rounds: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    moves: int = 0  # total individual state changes applied

    def tree(self, topo: Topology) -> TreeAssignment:
        """Extract the parent assignment as a validated tree."""
        return TreeAssignment(topo, [s.parent for s in self.states])


def total_cost(states: Sequence[NodeState], cap: float) -> float:
    """Sum of per-node costs, capped (the Lemma-1 Lyapunov quantity)."""
    return float(sum(min(s.cost, cap) for s in states))


class _ExecutorBase:
    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        self.topo = topo
        self.metric = metric

    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Run rounds until a fixpoint (or ``max_rounds``).

        ``rounds`` in the result counts rounds in which at least one node
        changed state — the paper's "takes k rounds to stabilize".
        """
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        cap = self.metric.infinity(self.topo)
        states = list(states)
        history = [total_cost(states, cap)]
        moves = 0
        rounds = 0
        for _ in range(max_rounds):
            states, changed, n_moves = self._round(states)
            history.append(total_cost(states, cap))
            if not changed:
                return StabilizationResult(
                    states=states,
                    rounds=rounds,
                    converged=True,
                    cost_history=history,
                    moves=moves,
                )
            rounds += 1
            moves += n_moves
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=False,
            cost_history=history,
            moves=moves,
        )

    def _round(self, states: StateVector):
        raise NotImplementedError


class SyncExecutor(_ExecutorBase):
    """All nodes move simultaneously from the previous round's snapshot."""

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        new_states: StateVector = []
        moves = 0
        for v in range(self.topo.n):
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(states[v], tol=COST_TOL):
                moves += 1
            new_states.append(ns)
        return new_states, moves > 0, moves


class CentralDaemonExecutor(_ExecutorBase):
    """Nodes move one at a time (id order), seeing the freshest states.

    One :class:`GlobalView` is maintained per round and moves are applied
    to it in place — previously a full view (children + flags) was
    re-derived for every node, O(n²) work per round.
    """

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        moves = 0
        for v in range(self.topo.n):
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(view.states[v], tol=COST_TOL):
                view.apply(v, ns)
                moves += 1
        return view.states, moves > 0, moves


class RandomizedDaemonExecutor(_ExecutorBase):
    """Central daemon with a fresh random node order every round.

    Strictly-improving local moves under the F/E metrics are not an exact
    potential game (a move changes *other* nodes' marginal costs), so a
    fixed activation order can enter a limit cycle in rare adversarial
    states.  Randomizing the order — which is what jittered beacon timing
    does in the real protocol — escapes such cycles almost surely; this is
    the executor the property-based convergence tests use for SS-SPST-E.
    """

    def __init__(self, topo: Topology, metric: CostMetric, rng: np.random.Generator) -> None:
        super().__init__(topo, metric)
        self.rng = rng

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        moves = 0
        for v in self.rng.permutation(self.topo.n):
            v = int(v)
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(view.states[v], tol=COST_TOL):
                view.apply(v, ns)
                moves += 1
        return view.states, moves > 0, moves


class _IncrementalBase(_ExecutorBase):
    """Shared dirty-set machinery and run loop for the incremental
    executors.  Subclasses implement :meth:`_round_incremental`, which
    plays one round over the current dirty set and returns
    ``(n_moves, next_dirty)``; everything else — history, round/move
    accounting, convergence — matches :meth:`_ExecutorBase.run` so the
    trajectories stay bit-identical to the baselines."""

    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        cap = self.metric.infinity(self.topo)
        view = GlobalView(self.topo, states)
        states = view.states  # the view owns the working copy
        history = [total_cost(states, cap)]
        dirty = set(range(self.topo.n))
        moves = 0
        rounds = 0
        converged = False
        for _ in range(max_rounds):
            n_moves, dirty = self._round_incremental(view, dirty)
            history.append(total_cost(states, cap))
            if n_moves == 0:
                converged = True
                break
            rounds += 1
            moves += n_moves
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=converged,
            cost_history=history,
            moves=moves,
        )

    def _round_incremental(self, view: GlobalView, dirty: set):
        raise NotImplementedError

    def _affected(self, changes) -> set:
        """Nodes whose next update may differ after the given changes.

        ``changes`` is an iterable of ``(v, old_state, new_state)``.  The
        seed set is the changed nodes plus the endpoints of any moved
        parent pointer (their children lists — and hence their advertised
        radii — changed too); the closure then extends the metric's
        ``dependency_radius`` hops around the seeds.  A ``None`` radius
        means the metric couples updates globally: everyone is affected.
        """
        radius = self.metric.dependency_radius
        if radius is None:
            return set(range(self.topo.n))
        seeds = set()
        for v, old, new in changes:
            seeds.add(v)
            if old.parent != new.parent:
                if old.parent is not None:
                    seeds.add(old.parent)
                if new.parent is not None:
                    seeds.add(new.parent)
        out = set(seeds)
        frontier = seeds
        for _ in range(radius):
            nxt = set()
            for v in frontier:
                nxt.update(self.topo.neighbors(v))
            nxt -= out
            if not nxt:
                break
            out |= nxt
            frontier = nxt
        return out


class IncrementalSyncExecutor(_IncrementalBase):
    """Dirty-set variant of :class:`SyncExecutor`.

    Produces a bit-identical trajectory (states, rounds, cost history,
    moves) while only re-evaluating nodes whose dependency region changed
    in the previous round.  Soundness: a node outside the region of every
    change recomputes exactly the state it already holds, so skipping it
    cannot alter the round's outcome.  To mirror ``SyncExecutor``'s
    overwrite semantics exactly, a re-evaluated node's state is replaced
    even when the change is within the move tolerance; such silent
    rewrites propagate through the dirty set but do not count as moves.
    """

    def _round_incremental(self, view: GlobalView, dirty: set):
        # Snapshot semantics: compute every dirty node's update from the
        # pre-round view, then apply them all at once.
        states = view.states
        changes = []
        n_moves = 0
        for v in sorted(dirty):
            old = states[v]
            ns = compute_update(self.topo, self.metric, view, v)
            if ns != old:
                changes.append((v, old, ns))
            if not ns.approx_equals(old, tol=COST_TOL):
                n_moves += 1
        for v, _old, ns in changes:
            view.apply(v, ns)
        return n_moves, self._affected(changes)


class IncrementalCentralDaemonExecutor(_IncrementalBase):
    """Dirty-set variant of :class:`CentralDaemonExecutor`.

    Nodes still activate in id order seeing the freshest states, but a
    node is evaluated only while it is dirty.  When an activation changes
    state, the affected nodes with higher ids are re-marked for the rest
    of this round (they would have seen the fresh state anyway) and the
    rest for the next round — exactly reproducing the baseline's
    trajectory, since the central daemon only writes genuine moves.
    """

    def _round_incremental(self, view: GlobalView, dirty: set):
        states = view.states
        next_dirty: set = set()
        n_moves = 0
        for v in range(self.topo.n):
            if v not in dirty:
                continue
            old = states[v]
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(old, tol=COST_TOL):
                view.apply(v, ns)
                n_moves += 1
                for w in self._affected([(v, old, ns)]):
                    if w > v:
                        dirty.add(w)
                    else:
                        next_dirty.add(w)
        return n_moves, next_dirty
