"""Round executors for the self-stabilizing algorithm.

The paper measures stabilization in *rounds*: "the time period in which
each node in the system receives at least one beacon message from each of
its neighbors and performs computation based on its received information"
(section 2).  Two classic daemons are provided:

* :class:`SyncExecutor` — all nodes update simultaneously from the
  previous round's states (the synchronous daemon; what the paper's
  round-count examples describe);
* :class:`CentralDaemonExecutor` — nodes update one at a time in id order
  within a round, each seeing the freshest states (the central daemon under
  which Dijkstra-style proofs are usually stated; also closest to the DES
  protocol, where jittered beacons serialize updates).

Both track the per-round total cost (the Lyapunov quantity of Lemma 1) and
stop at a fixpoint.

The incremental variants — :class:`IncrementalSyncExecutor` and
:class:`IncrementalCentralDaemonExecutor` — compute *bit-identical*
trajectories (states, rounds, cost history, moves) while only
re-evaluating a **dirty set**: the nodes whose dependency region changed
since they were last evaluated.  For the locally-coupled metrics (hop,
tx, farthest) the region is a ``dependency_radius``-hop closure around
the endpoints of each change (see
:class:`~repro.core.metrics.CostMetric`).  The chain-coupled SS-SPST-E
metric reads, at every evaluation, the whole ancestor chains of the
candidate parents — so a change reaches exactly the nodes *adjacent to
the subtrees* of the touched tree positions: the moved node, both parent
endpoints, and every ancestor whose member flag flipped (reported by
:meth:`~repro.core.views.GlobalView.apply`).  When the view cannot
localize a change (parent cycles in illegitimate states), the executors
degenerate gracefully to a full dirty set for that change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, H_MAX, compute_update
from repro.core.state import NodeState, StateVector
from repro.core.views import GlobalView
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment


def fresh_states(topo: Topology, metric: CostMetric) -> StateVector:
    """Canonical start: root correct, everyone else disconnected.

    "Each node in the network, when it is not connected to the tree has an
    energy cost OC_max" (section 5).
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    return [
        NodeState(parent=None, cost=0.0, hop=0)
        if v == topo.source
        else NodeState(parent=None, cost=inf, hop=h_max)
        for v in range(topo.n)
    ]


def arbitrary_states(
    topo: Topology,
    metric: CostMetric,
    rng: np.random.Generator,
) -> StateVector:
    """A random (possibly wildly illegitimate) initial state.

    Parent pointers may form cycles, point anywhere in the neighborhood or
    be absent; costs and hops are random garbage within representable
    bounds.  Self-stabilization must recover from *any* such state
    (Lemma 1), which the property tests exercise.
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    states: StateVector = []
    for v in range(topo.n):
        nbrs = topo.neighbors(v)
        if nbrs and rng.random() < 0.8:
            parent = int(rng.choice(nbrs))
        else:
            parent = None
        cost = float(rng.uniform(0.0, inf))
        hop = int(rng.integers(0, h_max + 1))
        states.append(NodeState(parent=parent, cost=cost, hop=hop))
    return states


@dataclass
class StabilizationResult:
    """Outcome of running an executor to fixpoint."""

    states: StateVector
    rounds: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    moves: int = 0  # total individual state changes applied
    #: rule evaluations performed (diagnostic; the quantity the dirty-set
    #: executors shrink — baselines always evaluate n nodes per round)
    evaluations: int = 0

    def tree(self, topo: Topology) -> TreeAssignment:
        """Extract the parent assignment as a validated tree."""
        return TreeAssignment(topo, [s.parent for s in self.states])


def total_cost(states: Sequence[NodeState], cap: float) -> float:
    """Sum of per-node costs, capped (the Lemma-1 Lyapunov quantity)."""
    return float(sum(min(s.cost, cap) for s in states))


class _ExecutorBase:
    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        self.topo = topo
        self.metric = metric

    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Run rounds until a fixpoint (or ``max_rounds``).

        ``rounds`` in the result counts rounds in which at least one node
        changed state — the paper's "takes k rounds to stabilize".
        """
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        cap = self.metric.infinity(self.topo)
        states = list(states)
        history = [total_cost(states, cap)]
        moves = 0
        rounds = 0
        evaluations = 0
        for _ in range(max_rounds):
            states, changed, n_moves = self._round(states)
            history.append(total_cost(states, cap))
            evaluations += self.topo.n
            if not changed:
                return StabilizationResult(
                    states=states,
                    rounds=rounds,
                    converged=True,
                    cost_history=history,
                    moves=moves,
                    evaluations=evaluations,
                )
            rounds += 1
            moves += n_moves
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=False,
            cost_history=history,
            moves=moves,
            evaluations=evaluations,
        )

    def _round(self, states: StateVector):
        raise NotImplementedError


class SyncExecutor(_ExecutorBase):
    """All nodes move simultaneously from the previous round's snapshot."""

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        new_states: StateVector = []
        moves = 0
        for v in range(self.topo.n):
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(states[v], tol=COST_TOL):
                moves += 1
            new_states.append(ns)
        return new_states, moves > 0, moves


class CentralDaemonExecutor(_ExecutorBase):
    """Nodes move one at a time (id order), seeing the freshest states.

    One :class:`GlobalView` is maintained per round and moves are applied
    to it in place — previously a full view (children + flags) was
    re-derived for every node, O(n²) work per round.
    """

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        moves = 0
        for v in range(self.topo.n):
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(view.states[v], tol=COST_TOL):
                view.apply(v, ns)
                moves += 1
        return view.states, moves > 0, moves


class RandomizedDaemonExecutor(_ExecutorBase):
    """Central daemon with a fresh random node order every round.

    Strictly-improving local moves under the F/E metrics are not an exact
    potential game (a move changes *other* nodes' marginal costs), so a
    fixed activation order can enter a limit cycle in rare adversarial
    states.  Randomizing the order — which is what jittered beacon timing
    does in the real protocol — escapes such cycles almost surely; this is
    the executor the property-based convergence tests use for SS-SPST-E.
    """

    def __init__(self, topo: Topology, metric: CostMetric, rng: np.random.Generator) -> None:
        super().__init__(topo, metric)
        self.rng = rng

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        moves = 0
        for v in self.rng.permutation(self.topo.n):
            v = int(v)
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(view.states[v], tol=COST_TOL):
                view.apply(v, ns)
                moves += 1
        return view.states, moves > 0, moves


class _IncrementalBase(_ExecutorBase):
    """Shared dirty-set machinery and run loop for the incremental
    executors.  Subclasses implement :meth:`_round_incremental`, which
    plays one round over the current dirty set and returns
    ``(n_moves, next_dirty)``; everything else — history, round/move
    accounting, convergence — matches :meth:`_ExecutorBase.run` so the
    trajectories stay bit-identical to the baselines."""

    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        view = GlobalView(self.topo, states)
        return self._run_from(view, set(range(self.topo.n)), max_rounds)

    def run_perturbed(
        self,
        settled_states: StateVector,
        perturbations: Sequence,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Resume from a previously *settled* state vector after external
        state changes (faults), evaluating only the affected region.

        ``perturbations`` is a sequence of ``(v, new_state)`` pairs applied
        on top of ``settled_states``.  Because the changes enter through
        :meth:`GlobalView.apply`, their reach is known exactly and the
        initial dirty set is the changes' dependency region instead of the
        whole network — this is where the dirty-set executors beat the
        baselines by orders of magnitude (a baseline executor re-evaluates
        every node every round no matter how local the fault).

        The trajectory is bit-identical to ``run()`` on the perturbed
        vector **provided ``settled_states`` was a fixpoint** (then every
        node outside the affected region would recompute exactly the state
        it already holds).  Resuming from a non-fixpoint vector violates
        that contract and may skip pending moves.
        """
        view = GlobalView(self.topo, settled_states)
        if getattr(self.metric, "path_couples_to_children", False):
            # Materialize flags/counters up front so the applies below can
            # report their flag flips (a parent-moving apply on a view
            # without flags returns "unknown" and would dirty everyone).
            # Locally-coupled metrics never read flags — skip the O(n·depth)
            # derivation for them.
            view.flag_of(0)
        dirty: set = set()
        for v, new_state in perturbations:
            old = view.states[v]
            if new_state == old:
                continue
            report = view.apply(v, new_state)
            dirty |= self._affected(view, [(v, old, new_state)], [report])
        return self._run_from(view, dirty, max_rounds)

    def _run_from(
        self,
        view: GlobalView,
        dirty: set,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        cap = self.metric.infinity(self.topo)
        states = view.states  # the view owns the working copy
        history = [total_cost(states, cap)]
        moves = 0
        rounds = 0
        evaluations = 0
        converged = False
        for _ in range(max_rounds):
            n_moves, n_evals, dirty = self._round_incremental(view, dirty)
            history.append(total_cost(states, cap))
            evaluations += n_evals
            if n_moves == 0:
                converged = True
                break
            rounds += 1
            moves += n_moves
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=converged,
            cost_history=history,
            moves=moves,
            evaluations=evaluations,
        )

    def _round_incremental(self, view: GlobalView, dirty: set):
        raise NotImplementedError

    def _affected(self, view: GlobalView, changes, reports=None) -> set:
        """Nodes whose next update may differ after the given changes.

        ``changes`` is an iterable of ``(v, old_state, new_state)``;
        ``reports`` the per-change flag-flip reports returned by
        :meth:`GlobalView.apply` (``None`` entries mean the view could not
        localize the change).

        The seed set is the changed nodes plus the endpoints of any moved
        parent pointer (their children lists — and hence their advertised
        radii — changed too).  Metrics whose path cost couples to the
        child set (SS-SPST-E) additionally read, for every candidate, the
        radii/flags along the candidate's whole ancestor chain: a change
        at tree position ``y`` is therefore read by exactly the candidates
        in ``y``'s subtree, i.e. the evaluators adjacent to it.  For those
        metrics the seeds are widened to the subtrees of every touched
        position — the moved node, both endpoints, every flag-flipped
        ancestor and its parent (whose flagged radius changed).  Finally
        the closure extends the metric's ``dependency_radius`` hops around
        the seeds.  A ``None`` radius (or an unlocalizable change) means
        every node is affected.
        """
        radius = self.metric.dependency_radius
        if radius is None:
            return set(range(self.topo.n))
        chain_coupled = getattr(self.metric, "path_couples_to_children", False)
        seeds = set()
        subtree_roots = set()
        for i, (v, old, new) in enumerate(changes):
            seeds.add(v)
            endpoints = []
            if old.parent != new.parent:
                if old.parent is not None:
                    endpoints.append(old.parent)
                if new.parent is not None:
                    endpoints.append(new.parent)
            seeds.update(endpoints)
            if chain_coupled:
                flips = reports[i] if reports is not None else None
                if flips is None:
                    return set(range(self.topo.n))
                # v's own subtree re-routes through the new chain (and
                # chains terminating at a disconnected v read its cost).
                subtree_roots.add(v)
                # The endpoints' *flagged* radii only changed if the moved
                # child carries a flag; moves of pruned (unflagged) nodes
                # stay invisible to every chain price.
                if view.flag_of(v):
                    subtree_roots.update(endpoints)
                for f in flips:
                    subtree_roots.add(f)
                    pf = view.states[f].parent
                    if pf is not None:
                        subtree_roots.add(pf)
        if subtree_roots:
            seeds |= view.collect_subtrees(subtree_roots)
        out = set(seeds)
        frontier = seeds
        for _ in range(radius):
            nxt = set()
            for v in frontier:
                nxt.update(self.topo.neighbors(v))
            nxt -= out
            if not nxt:
                break
            out |= nxt
            frontier = nxt
        return out


class IncrementalSyncExecutor(_IncrementalBase):
    """Dirty-set variant of :class:`SyncExecutor`.

    Produces a bit-identical trajectory (states, rounds, cost history,
    moves) while only re-evaluating nodes whose dependency region changed
    in the previous round.  Soundness: a node outside the region of every
    change recomputes exactly the state it already holds, so skipping it
    cannot alter the round's outcome.  To mirror ``SyncExecutor``'s
    overwrite semantics exactly, a re-evaluated node's state is replaced
    even when the change is within the move tolerance; such silent
    rewrites propagate through the dirty set but do not count as moves.
    """

    def _round_incremental(self, view: GlobalView, dirty: set):
        # Snapshot semantics: compute every dirty node's update from the
        # pre-round view, then apply them all at once.
        states = view.states
        changes = []
        n_moves = 0
        n_evals = 0
        for v in sorted(dirty):
            old = states[v]
            ns = compute_update(self.topo, self.metric, view, v)
            n_evals += 1
            if ns != old:
                changes.append((v, old, ns))
            if not ns.approx_equals(old, tol=COST_TOL):
                n_moves += 1
        # Affected sets are computed per change, immediately after its
        # apply: single-step reader analysis is exact (flags and parents
        # are read in the world the change produced), and the union over
        # steps covers the whole batch.
        next_dirty: set = set()
        for v, old, ns in changes:
            report = view.apply(v, ns)
            next_dirty |= self._affected(view, [(v, old, ns)], [report])
        return n_moves, n_evals, next_dirty


class IncrementalCentralDaemonExecutor(_IncrementalBase):
    """Dirty-set variant of :class:`CentralDaemonExecutor`.

    Nodes still activate in id order seeing the freshest states, but a
    node is evaluated only while it is dirty.  When an activation changes
    state, the affected nodes with higher ids are re-marked for the rest
    of this round (they would have seen the fresh state anyway) and the
    rest for the next round — exactly reproducing the baseline's
    trajectory, since the central daemon only writes genuine moves.
    """

    def _round_incremental(self, view: GlobalView, dirty: set):
        states = view.states
        next_dirty: set = set()
        n_moves = 0
        n_evals = 0
        for v in range(self.topo.n):
            if v not in dirty:
                continue
            old = states[v]
            ns = compute_update(self.topo, self.metric, view, v)
            n_evals += 1
            if not ns.approx_equals(old, tol=COST_TOL):
                report = view.apply(v, ns)
                n_moves += 1
                for w in self._affected(view, [(v, old, ns)], [report]):
                    if w > v:
                        dirty.add(w)
                    else:
                        next_dirty.add(w)
        return n_moves, n_evals, next_dirty
