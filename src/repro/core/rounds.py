"""Round executors for the self-stabilizing algorithm.

The paper measures stabilization in *rounds*: "the time period in which
each node in the system receives at least one beacon message from each of
its neighbors and performs computation based on its received information"
(section 2).  Two classic daemons are provided:

* :class:`SyncExecutor` — all nodes update simultaneously from the
  previous round's states (the synchronous daemon; what the paper's
  round-count examples describe);
* :class:`CentralDaemonExecutor` — nodes update one at a time in id order
  within a round, each seeing the freshest states (the central daemon under
  which Dijkstra-style proofs are usually stated; also closest to the DES
  protocol, where jittered beacons serialize updates).

Both track the per-round total cost (the Lyapunov quantity of Lemma 1) and
stop at a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.metrics import CostMetric
from repro.core.rules import COST_TOL, H_MAX, compute_update
from repro.core.state import NodeState, StateVector
from repro.core.views import GlobalView
from repro.graph.topology import Topology
from repro.graph.tree import TreeAssignment


def fresh_states(topo: Topology, metric: CostMetric) -> StateVector:
    """Canonical start: root correct, everyone else disconnected.

    "Each node in the network, when it is not connected to the tree has an
    energy cost OC_max" (section 5).
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    return [
        NodeState(parent=None, cost=0.0, hop=0)
        if v == topo.source
        else NodeState(parent=None, cost=inf, hop=h_max)
        for v in range(topo.n)
    ]


def arbitrary_states(
    topo: Topology,
    metric: CostMetric,
    rng: np.random.Generator,
) -> StateVector:
    """A random (possibly wildly illegitimate) initial state.

    Parent pointers may form cycles, point anywhere in the neighborhood or
    be absent; costs and hops are random garbage within representable
    bounds.  Self-stabilization must recover from *any* such state
    (Lemma 1), which the property tests exercise.
    """
    inf = metric.infinity(topo)
    h_max = H_MAX(topo)
    states: StateVector = []
    for v in range(topo.n):
        nbrs = topo.neighbors(v)
        if nbrs and rng.random() < 0.8:
            parent = int(rng.choice(nbrs))
        else:
            parent = None
        cost = float(rng.uniform(0.0, inf))
        hop = int(rng.integers(0, h_max + 1))
        states.append(NodeState(parent=parent, cost=cost, hop=hop))
    return states


@dataclass
class StabilizationResult:
    """Outcome of running an executor to fixpoint."""

    states: StateVector
    rounds: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    moves: int = 0  # total individual state changes applied

    def tree(self, topo: Topology) -> TreeAssignment:
        """Extract the parent assignment as a validated tree."""
        return TreeAssignment(topo, [s.parent for s in self.states])


def total_cost(states: Sequence[NodeState], cap: float) -> float:
    """Sum of per-node costs, capped (the Lemma-1 Lyapunov quantity)."""
    return float(sum(min(s.cost, cap) for s in states))


class _ExecutorBase:
    def __init__(self, topo: Topology, metric: CostMetric) -> None:
        self.topo = topo
        self.metric = metric

    def run(
        self,
        states: StateVector,
        max_rounds: Optional[int] = None,
    ) -> StabilizationResult:
        """Run rounds until a fixpoint (or ``max_rounds``).

        ``rounds`` in the result counts rounds in which at least one node
        changed state — the paper's "takes k rounds to stabilize".
        """
        if max_rounds is None:
            max_rounds = 4 * self.topo.n + 16
        cap = self.metric.infinity(self.topo)
        states = list(states)
        history = [total_cost(states, cap)]
        moves = 0
        rounds = 0
        for _ in range(max_rounds):
            states, changed, n_moves = self._round(states)
            history.append(total_cost(states, cap))
            if not changed:
                return StabilizationResult(
                    states=states,
                    rounds=rounds,
                    converged=True,
                    cost_history=history,
                    moves=moves,
                )
            rounds += 1
            moves += n_moves
        return StabilizationResult(
            states=states,
            rounds=rounds,
            converged=False,
            cost_history=history,
            moves=moves,
        )

    def _round(self, states: StateVector):
        raise NotImplementedError


class SyncExecutor(_ExecutorBase):
    """All nodes move simultaneously from the previous round's snapshot."""

    def _round(self, states: StateVector):
        view = GlobalView(self.topo, states)
        new_states: StateVector = []
        moves = 0
        for v in range(self.topo.n):
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(states[v], tol=COST_TOL):
                moves += 1
            new_states.append(ns)
        return new_states, moves > 0, moves


class CentralDaemonExecutor(_ExecutorBase):
    """Nodes move one at a time (id order), seeing the freshest states."""

    def _round(self, states: StateVector):
        states = list(states)
        moves = 0
        for v in range(self.topo.n):
            view = GlobalView(self.topo, states)
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(states[v], tol=COST_TOL):
                states[v] = ns
                moves += 1
        return states, moves > 0, moves


class RandomizedDaemonExecutor(_ExecutorBase):
    """Central daemon with a fresh random node order every round.

    Strictly-improving local moves under the F/E metrics are not an exact
    potential game (a move changes *other* nodes' marginal costs), so a
    fixed activation order can enter a limit cycle in rare adversarial
    states.  Randomizing the order — which is what jittered beacon timing
    does in the real protocol — escapes such cycles almost surely; this is
    the executor the property-based convergence tests use for SS-SPST-E.
    """

    def __init__(self, topo: Topology, metric: CostMetric, rng: np.random.Generator) -> None:
        super().__init__(topo, metric)
        self.rng = rng

    def _round(self, states: StateVector):
        states = list(states)
        moves = 0
        for v in self.rng.permutation(self.topo.n):
            v = int(v)
            view = GlobalView(self.topo, states)
            ns = compute_update(self.topo, self.metric, view, v)
            if not ns.approx_equals(states[v], tol=COST_TOL):
                states[v] = ns
                moves += 1
        return states, moves > 0, moves
