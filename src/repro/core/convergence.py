"""Checkers for the paper's three lemmas (section 5).

* **Lemma 1 (Convergence)** — from any initial state, a connected topology
  reaches a legitimate state in finitely many rounds; once every node has
  joined the tree, the total cost is non-increasing round over round.
* **Lemma 2 (Closure)** — a legitimate state does not change under further
  rounds (absent topology faults).
* **Lemma 3 (Loop freedom)** — at stabilization the parent pointers form a
  tree (no cycles) and hop counts are bounded by ``|V|``; transient loops
  self-destruct through the hop-count ceiling.

These are used by the unit and property-based tests; they return rich
result objects rather than asserting, so tests can report exactly which
lemma failed and where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.legitimacy import extract_tree, is_legitimate
from repro.core.metrics import CostMetric
from repro.core.rounds import RoundEngine, StabilizationResult
from repro.core.rules import H_MAX
from repro.core.state import NodeState, StateVector
from repro.graph.topology import Topology

#: an engine instance, or a daemon name to build one from (the daemon
#: axis of the experiment layer reaches the lemma checkers this way)
ExecutorLike = Union[RoundEngine, str]


#: registered engine implementations for :func:`engine_for`'s ``engine=``
#: axis: the scalar reference engine and its vectorized drop-in (same
#: trajectories bit for bit; see ``core/array_engine.py``)
ENGINE_NAMES = ("object", "array")


def engine_for(
    topo: Topology,
    metric: CostMetric,
    executor: ExecutorLike,
    *,
    incremental: bool = True,
    engine: str = "object",
    rng: Optional[np.random.Generator] = None,
    **daemon_options: object,
) -> RoundEngine:
    """Accept either an engine or a daemon name.

    The one construction path shared by the lemma checkers and the
    ``rounds`` experiment backend: a name builds an incremental engine
    (bit-identical to full evaluation, usually much cheaper) with a
    deterministic rng unless one is supplied.  ``engine`` selects the
    implementation — ``"object"`` (the scalar reference) or ``"array"``
    (vectorized columnar evaluation, same trajectories, built for
    10^4–10^5 nodes).  Extra keyword options reach the named daemon's
    constructor (e.g. ``k=`` for the distributed daemon — the
    ``daemon_k`` scenario knob); passing them with an engine instance is
    an error, mirroring ``RoundEngine``.
    """
    if isinstance(executor, str):
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        if engine == "array":
            from repro.core.array_engine import ArrayRoundEngine

            cls = ArrayRoundEngine
        else:
            cls = RoundEngine
        return cls(
            topo,
            metric,
            daemon=executor,
            incremental=incremental,
            rng=np.random.default_rng(0) if rng is None else rng,
            **daemon_options,
        )
    if daemon_options:
        raise ValueError("daemon options require a daemon given by name")
    if engine != "object":
        raise ValueError("engine selection requires a daemon given by name")
    return executor


#: backwards-compatible alias (pre-backend-split private name)
_as_engine = engine_for


@dataclass
class LemmaReport:
    """Outcome of one lemma check."""

    holds: bool
    detail: str = ""


def check_convergence(
    topo: Topology,
    metric: CostMetric,
    executor: ExecutorLike,
    initial: StateVector,
    max_rounds: Optional[int] = None,
) -> LemmaReport:
    """Lemma 1: the executor (engine or daemon name) reaches a legitimate
    fixpoint."""
    result = engine_for(topo, metric, executor).run(initial, max_rounds=max_rounds)
    if not result.converged:
        return LemmaReport(False, f"no fixpoint within {len(result.cost_history) - 1} rounds")
    if not is_legitimate(topo, metric, result.states):
        return LemmaReport(False, "fixpoint reached but state is not legitimate")
    if topo.is_connected():
        tree = extract_tree(topo, result.states)
        if tree is None:
            return LemmaReport(False, "parent pointers do not form a tree")
        if not tree.spans_all():
            return LemmaReport(False, "tree does not span the connected graph")
    return LemmaReport(True, f"stabilized in {result.rounds} rounds")


def check_closure(
    topo: Topology,
    metric: CostMetric,
    executor: ExecutorLike,
    stabilized: StateVector,
    extra_rounds: int = 5,
) -> LemmaReport:
    """Lemma 2: further rounds leave a legitimate state untouched."""
    if not is_legitimate(topo, metric, stabilized):
        return LemmaReport(False, "input state is not legitimate")
    result = engine_for(topo, metric, executor).run(
        list(stabilized), max_rounds=extra_rounds
    )
    if result.rounds != 0:
        return LemmaReport(False, f"state moved for {result.rounds} extra rounds")
    same = all(
        a.approx_equals(b) for a, b in zip(result.states, stabilized)
    )
    return LemmaReport(same, "" if same else "states drifted without counting a round")


def check_loop_freedom(
    topo: Topology,
    states: Sequence[NodeState],
) -> LemmaReport:
    """Lemma 3: no parent cycles; hop counts within ``[0, |V|]``."""
    h_max = H_MAX(topo)
    for v, s in enumerate(states):
        if not (0 <= s.hop <= h_max):
            return LemmaReport(False, f"node {v} hop {s.hop} outside [0, {h_max}]")
    if extract_tree(topo, states) is None:
        return LemmaReport(False, "parent pointers contain a cycle")
    return LemmaReport(True)


def cost_monotone_after_join(result: StabilizationResult, tol: float = 1e-9) -> bool:
    """Lemma 1's Lyapunov claim, checked on an executor trace.

    After the last round in which a disconnected node joins, the total
    cost must be non-increasing.  (While nodes still carry ``OC_max`` the
    total trivially decreases as they join; this checks the interesting
    suffix too.)
    """
    hist = result.cost_history
    for a, b in zip(hist, hist[1:]):
        if b > a * (1.0 + tol) + tol:
            return False
    return True
