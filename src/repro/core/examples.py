"""Reconstructions of the paper's worked examples.

**Figure 1 topology** (Examples 1-5).  The paper gives the 13 edge
*distances* of the 10-node example but not the adjacency, which must be
reconstructed from the narrative.  The reconstruction below is the unique
assignment we found consistent with the derivable behaviour:

* SS-SPST (Figure 2): node 3 attaches directly to the source over the long
  200.03 m edge (hop count wins), tree stabilizes top-down;
* SS-SPST-T (Figure 3): node 3 relays through node 7 (75.37 m) because the
  summed link energy beats one 200 m hop, and node 5 stays on node 4;
* SS-SPST-F (Example 3): node 3 is drawn toward node 4, whose radius is
  already stretched by node 5 (the incremental "costliest child" cost of
  joining 4 is just a reception);
* SS-SPST-E (Example 5 / Figure 6): node 4's surroundings (non-group
  nodes 8, 9 plus its parent) make transmitting from 4 expensive in discard
  energy, pushing members 5 and 3 toward node 6.

The printed edge weights of Figures 3/4/6 are mutually inconsistent under
any first-order radio constants (see EXPERIMENTS.md, "worked example"), so
the F/E examples are validated by their *qualitative* claims rather than an
exact tree match; the hop and T trees are validated exactly.

**Figure 5 topology**: the fully specified discard-energy example — node X
must choose between two parents with identical path costs, one of which has
three non-group neighbors that would overhear every transmission.
SS-SPST-E picks the quiet parent; every other metric is indifferent (and
falls to the id tie-break).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.energy.radio import FirstOrderRadioModel
from repro.graph.topology import Topology

#: radio used by the worked examples: first-order constants with a
#: reception cost high enough for overhearing to matter (real 802.11-era
#: radios receive at a large fraction of transmit power).
EXAMPLE_RADIO = FirstOrderRadioModel(
    e_elec=50e-9,
    e_rx=200e-9,
    eps_amp=100e-12,
    alpha=2.0,
    max_range=250.0,
    d_floor=1.0,
)

#: Figure 1 edge distances (metres), reconstructed adjacency.
FIGURE1_EDGES: Dict[Tuple[int, int], float] = {
    (0, 1): 120.10,
    (0, 7): 120.06,
    (0, 2): 120.04,
    (0, 3): 200.03,
    (0, 6): 120.02,
    (7, 4): 75.27,
    (7, 3): 75.37,
    (3, 4): 120.34,
    (3, 6): 120.56,
    (4, 5): 120.45,
    (4, 8): 75.48,
    (4, 9): 75.49,
    (5, 6): 120.36,
}

#: multicast group of the worked example: source 0 plus member nodes;
#: 4 and 6 are relays, 8 and 9 are the overhearing non-group nodes.
FIGURE1_MEMBERS = (0, 1, 2, 3, 5, 7)


def figure1_topology() -> Topology:
    """The 10-node worked example of Figures 1-6."""
    return Topology.from_edges(10, FIGURE1_EDGES, source=0, members=FIGURE1_MEMBERS)


#: Exact trees derivable from the narrative (parent of node i at index i).
#: Deviations from the printed figures are discussed in EXPERIMENTS.md: the
#: published edge lists of Figures 2-4 are mutually inconsistent with
#: Figure 6 under any superlinear radio model, and node 5's parent (4 in
#: the printed trees) resolves to its strictly closer neighbor 6 here.
FIGURE2_HOP_PARENTS = [None, 0, 0, 0, 7, 6, 0, 0, 4, 4]
FIGURE3_TX_PARENTS = [None, 0, 0, 7, 7, 6, 0, 0, 4, 4]


def figure5_topology() -> Topology:
    """The Figure-5 discard-energy example.

    Node ids: 0 = root R, 1 and 2 = candidate parents, 3 = joining node X,
    4-6 = non-group neighbors of node 1.  Both candidate parents are 100 m
    from the root and 100 m from X; the non-group nodes sit 60-80 m from
    node 1, inside any transmission that reaches X.
    """
    edges = {
        (0, 1): 100.0,
        (0, 2): 100.0,
        (1, 3): 100.0,
        (2, 3): 100.0,
        (1, 4): 60.0,
        (1, 5): 70.0,
        (1, 6): 80.0,
    }
    return Topology.from_edges(7, edges, source=0, members=(0, 3))
