"""The paper's core contribution: energy-aware self-stabilizing SPST.

Contents:

* :mod:`repro.core.state` — per-node protocol state ``(parent, cost, hop)``
  and helpers to derive children / member flags from a state vector;
* :mod:`repro.core.views` — the information interface the algorithm reads
  (globally in the round model, from beacons in the DES protocols).  The
  round-model :class:`~repro.core.views.GlobalView` is fully incremental:
  ``apply`` patches children lists, member flags and per-node
  flagged-children counters by walking only the affected ancestor chains
  (tracking parent cycles so counter maintenance is only trusted on
  acyclic states), reports which flags flipped, and prices SS-SPST-E
  candidate paths with an iterative, prefix-memoized chain walk — no
  recursion, so arbitrarily deep parent chains are fine;
* :mod:`repro.core.metrics` — the four cost metrics: hop (SS-SPST),
  link transmission energy (SS-SPST-T), costliest-child node energy
  (SS-SPST-F), and the proposed overhearing-aware metric (SS-SPST-E);
* :mod:`repro.core.rules` — the guarded self-stabilizing update rule
  (paper section 5);
* :mod:`repro.core.daemons` — pluggable activation schedulers
  (synchronous, central, randomized, distributed k-local-parallel,
  adversarial-max-cost, weakly-fair bounded-delay): the *daemon* the
  stabilization guarantees are stated against, decomposed from
  evaluation;
* :mod:`repro.core.rounds` — the single :class:`~repro.core.rounds.RoundEngine`
  that evaluates any daemon's schedule with stabilization accounting, in
  full or incremental (dirty-set) mode; the two modes are bit-identical
  for *all four* metrics and every daemon — SS-SPST-E's chain coupling is
  localized through the flag-flip reports (subtree seeding) — and expose
  ``run_perturbed`` for warm-start fault recovery from a settled state
  (the pre-decomposition executor names remain as deprecation shims);
* :mod:`repro.core.legitimacy` — the legitimate-state predicate;
* :mod:`repro.core.convergence` — Lemma 1-3 checkers (convergence,
  closure, loop-freedom);
* :mod:`repro.core.examples` — reconstruction of the worked example
  (Figures 1-6) and the Figure-5 discard-energy example.
"""

from repro.core.state import NodeState, StateVector, derive_children, derive_flags
from repro.core.views import GlobalView, NodeView
from repro.core.metrics import (
    CostMetric,
    HopMetric,
    TxEnergyMetric,
    FarthestChildMetric,
    EnergyAwareMetric,
    metric_by_name,
    METRIC_NAMES,
)
from repro.core.rules import compute_update, guard_violated, H_MAX
from repro.core.daemons import (
    Daemon,
    DAEMON_NAMES,
    DES_DAEMON_NAMES,
    daemon_by_name,
)
from repro.core.rounds import (
    RoundEngine,
    SyncExecutor,
    CentralDaemonExecutor,
    RandomizedDaemonExecutor,
    IncrementalSyncExecutor,
    IncrementalCentralDaemonExecutor,
    StabilizationResult,
    fresh_states,
    arbitrary_states,
)
from repro.core.array_engine import ArrayRoundEngine, ColumnarView
from repro.core.legitimacy import is_legitimate, extract_tree
from repro.core.faults import EdgeFault, NodeCrash, FaultRunResult, run_with_faults
from repro.core.convergence import (
    ENGINE_NAMES,
    check_convergence,
    check_closure,
    check_loop_freedom,
    engine_for,
)

__all__ = [
    "NodeState",
    "StateVector",
    "derive_children",
    "derive_flags",
    "GlobalView",
    "NodeView",
    "CostMetric",
    "HopMetric",
    "TxEnergyMetric",
    "FarthestChildMetric",
    "EnergyAwareMetric",
    "metric_by_name",
    "METRIC_NAMES",
    "compute_update",
    "guard_violated",
    "H_MAX",
    "Daemon",
    "DAEMON_NAMES",
    "DES_DAEMON_NAMES",
    "daemon_by_name",
    "RoundEngine",
    "ArrayRoundEngine",
    "ColumnarView",
    "ENGINE_NAMES",
    "engine_for",
    "SyncExecutor",
    "CentralDaemonExecutor",
    "RandomizedDaemonExecutor",
    "IncrementalSyncExecutor",
    "IncrementalCentralDaemonExecutor",
    "StabilizationResult",
    "fresh_states",
    "arbitrary_states",
    "is_legitimate",
    "extract_tree",
    "check_convergence",
    "check_closure",
    "check_loop_freedom",
    "EdgeFault",
    "NodeCrash",
    "FaultRunResult",
    "run_with_faults",
]
