"""The paper's core contribution: energy-aware self-stabilizing SPST.

Contents:

* :mod:`repro.core.state` — per-node protocol state ``(parent, cost, hop)``
  and helpers to derive children / member flags from a state vector;
* :mod:`repro.core.views` — the information interface the algorithm reads
  (globally in the round model, from beacons in the DES protocols);
* :mod:`repro.core.metrics` — the four cost metrics: hop (SS-SPST),
  link transmission energy (SS-SPST-T), costliest-child node energy
  (SS-SPST-F), and the proposed overhearing-aware metric (SS-SPST-E);
* :mod:`repro.core.rules` — the guarded self-stabilizing update rule
  (paper section 5);
* :mod:`repro.core.rounds` — synchronous and central-daemon round
  executors with stabilization accounting;
* :mod:`repro.core.legitimacy` — the legitimate-state predicate;
* :mod:`repro.core.convergence` — Lemma 1-3 checkers (convergence,
  closure, loop-freedom);
* :mod:`repro.core.examples` — reconstruction of the worked example
  (Figures 1-6) and the Figure-5 discard-energy example.
"""

from repro.core.state import NodeState, StateVector, derive_children, derive_flags
from repro.core.views import GlobalView, NodeView
from repro.core.metrics import (
    CostMetric,
    HopMetric,
    TxEnergyMetric,
    FarthestChildMetric,
    EnergyAwareMetric,
    metric_by_name,
    METRIC_NAMES,
)
from repro.core.rules import compute_update, guard_violated, H_MAX
from repro.core.rounds import (
    SyncExecutor,
    CentralDaemonExecutor,
    RandomizedDaemonExecutor,
    IncrementalSyncExecutor,
    IncrementalCentralDaemonExecutor,
    StabilizationResult,
    fresh_states,
    arbitrary_states,
)
from repro.core.legitimacy import is_legitimate, extract_tree
from repro.core.faults import EdgeFault, NodeCrash, FaultRunResult, run_with_faults
from repro.core.convergence import (
    check_convergence,
    check_closure,
    check_loop_freedom,
)

__all__ = [
    "NodeState",
    "StateVector",
    "derive_children",
    "derive_flags",
    "GlobalView",
    "NodeView",
    "CostMetric",
    "HopMetric",
    "TxEnergyMetric",
    "FarthestChildMetric",
    "EnergyAwareMetric",
    "metric_by_name",
    "METRIC_NAMES",
    "compute_update",
    "guard_violated",
    "H_MAX",
    "SyncExecutor",
    "CentralDaemonExecutor",
    "RandomizedDaemonExecutor",
    "IncrementalSyncExecutor",
    "IncrementalCentralDaemonExecutor",
    "StabilizationResult",
    "fresh_states",
    "arbitrary_states",
    "is_legitimate",
    "extract_tree",
    "check_convergence",
    "check_closure",
    "check_loop_freedom",
    "EdgeFault",
    "NodeCrash",
    "FaultRunResult",
    "run_with_faults",
]
