"""Fault injection for the round model.

"Topological changes in MANETs can be thought of as faults" (section 1);
self-stabilization's selling point is recovering from them without an
initialization phase.  :class:`FaultSchedule` applies scripted topology
edits (edge removal/addition, node crash) between rounds of an executor
and records how many rounds each recovery takes — a direct measurement of
the adaptivity the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rounds import RoundEngine, StabilizationResult  # noqa: F401
from repro.core.state import NodeState, StateVector
from repro.graph.topology import Topology
from repro.util.ids import NodeId


@dataclass(frozen=True)
class EdgeFault:
    """Remove (or, with ``add=True``, insert) one edge."""

    u: NodeId
    v: NodeId
    add: bool = False
    distance: float = 0.0  # required when adding

    def apply(self, topo: Topology) -> Topology:
        dist = topo.dist.copy()
        if self.add:
            if self.distance <= 0:
                raise ValueError("adding an edge requires a positive distance")
            dist[self.u, self.v] = dist[self.v, self.u] = self.distance
        else:
            dist[self.u, self.v] = dist[self.v, self.u] = np.inf
        return Topology(dist, topo.source, topo.members)


@dataclass(frozen=True)
class NodeCrash:
    """Disconnect every edge of one node (battery death / departure)."""

    node: NodeId

    def apply(self, topo: Topology) -> Topology:
        if self.node == topo.source:
            raise ValueError("crashing the source ends the session")
        dist = topo.dist.copy()
        dist[self.node, :] = np.inf
        dist[:, self.node] = np.inf
        np.fill_diagonal(dist, 0.0)
        return Topology(dist, topo.source, topo.members)


@dataclass
class RecoveryRecord:
    """How one fault was absorbed."""

    fault: object
    rounds_to_restabilize: int
    converged: bool
    cost_after: float


@dataclass
class FaultRunResult:
    """Full trace of a stabilize/fault/re-stabilize experiment."""

    initial_rounds: int
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    final_states: Optional[StateVector] = None
    final_topology: Optional[Topology] = None

    @property
    def max_recovery_rounds(self) -> int:
        return max((r.rounds_to_restabilize for r in self.recoveries), default=0)

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.recoveries)


def run_with_faults(
    topo: Topology,
    executor_factory: Callable[..., object],
    initial: StateVector,
    faults: Sequence[object],
    max_rounds_each: int = 200,
) -> FaultRunResult:
    """Stabilize, then apply each fault and re-stabilize.

    ``executor_factory(topo) -> executor`` builds a fresh executor bound
    to each post-fault topology (executors are topology-specific).
    Carried state is the pre-fault state vector — exactly the situation a
    running network faces when the topology shifts underneath it.
    """
    executor = executor_factory(topo)
    first = executor.run(list(initial), max_rounds=max_rounds_each)
    result = FaultRunResult(initial_rounds=first.rounds)
    states = first.states
    current = topo
    for fault in faults:
        current = fault.apply(current)
        executor = executor_factory(current)
        rec = executor.run(list(states), max_rounds=max_rounds_each)
        result.recoveries.append(
            RecoveryRecord(
                fault=fault,
                rounds_to_restabilize=rec.rounds,
                converged=rec.converged,
                cost_after=rec.cost_history[-1],
            )
        )
        states = rec.states
    result.final_states = states
    result.final_topology = current
    return result
