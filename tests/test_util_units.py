"""Tests for repro.util.units."""

import pytest

from repro.util import units


def test_bytes_bits_roundtrip():
    assert units.bytes_to_bits(512) == 4096
    assert units.bits_to_bytes(4096) == 512
    assert units.bits_to_bytes(units.bytes_to_bits(123.5)) == pytest.approx(123.5)


def test_joules_mj_roundtrip():
    assert units.joules_to_mj(0.005) == pytest.approx(5.0)
    assert units.mj_to_joules(5.0) == pytest.approx(0.005)


def test_kbps():
    assert units.kbps_to_bps(64) == 64_000.0


def test_time_constants():
    assert units.MS == pytest.approx(1e-3)
    assert units.US == pytest.approx(1e-6)
