"""Tests for the pluggable experiment backends.

Covers the backend protocol itself (registry, validation, metric specs),
the contract the redesign is accountable for — rounds-backend results
bit-identical to a direct :class:`RoundEngine` invocation for every
registered daemon — plus cache-record compatibility across schema eras
and the backend-agnostic aggregation path.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import metric_spec_table
from repro.analysis.stats import campaign_cis, mean_ci
from repro.core.convergence import engine_for
from repro.core.daemons import DAEMON_NAMES, DES_DAEMON_NAMES
from repro.core.rounds import fresh_states
from repro.experiments.backends import (
    BACKEND_NAMES,
    BACKENDS,
    RoundRunResult,
    RoundSummary,
    backend_by_name,
    build_round_scenario,
    default_metrics,
    metric_extractor,
)
from repro.experiments.campaign import (
    CACHE_SCHEMA,
    CampaignSpec,
    ResultCache,
    config_key,
    main,
    record_from_result,
    result_from_record,
    run_campaign,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FIGURES
from repro.util.rng import RngStreams

FAST_DES = dict(sim_time=12.0, n_nodes=16, group_size=4)


def des_base(**kw):
    merged = dict(FAST_DES)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


def rounds_base(**kw):
    merged = dict(backend="rounds", protocol="ss-spst-e", n_nodes=16, group_size=4)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


class TestRegistry:
    def test_both_backends_registered(self):
        assert BACKEND_NAMES == ("des", "rounds")
        for name in BACKEND_NAMES:
            assert backend_by_name(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment backend"):
            backend_by_name("ns2")
        with pytest.raises(ValueError, match="unknown experiment backend"):
            ScenarioConfig.quick(backend="ns2")

    def test_metric_specs_are_extractable(self):
        """Every declared MetricSpec extracts a float from its backend's
        results (golden smoke over one run per backend)."""
        des_result = backend_by_name("des").run(des_base(protocol="flooding"))
        rounds_result = backend_by_name("rounds").run(rounds_base())
        for backend, result in (("des", des_result), ("rounds", rounds_result)):
            for name, spec in backend_by_name(backend).metrics().items():
                value = spec.extract(result)
                assert isinstance(value, float), (backend, name)

    def test_metric_spec_table_renders(self):
        assert "pdr" in metric_spec_table("des")
        assert "recovery_rounds" in metric_spec_table("rounds")

    def test_default_metrics_per_backend(self):
        assert default_metrics(("des",)) == ("pdr", "energy_per_packet_mj")
        assert default_metrics(("rounds",)) == ("rounds", "evaluations", "moves")
        assert "rounds" in default_metrics(("des", "rounds"))


class TestDaemonValidationMove:
    """Satellite: daemon-name validation lives in the backend now."""

    MSG = (
        "daemon 'adversarial-max-cost' has no DES realization; choose "
        f"from {sorted(DES_DAEMON_NAMES)} (the adversarial daemon "
        "is round-model only)"
    )

    def test_des_backend_still_rejects_with_same_message(self):
        with pytest.raises(ValueError) as exc:
            ScenarioConfig.quick(daemon="adversarial-max-cost")
        assert str(exc.value) == self.MSG

    def test_rounds_backend_accepts_adversarial_daemon(self):
        cfg = rounds_base(daemon="adversarial-max-cost")
        assert cfg.daemon == "adversarial-max-cost"

    def test_rounds_backend_rejects_unknown_daemon(self):
        with pytest.raises(ValueError, match="unknown daemon"):
            rounds_base(daemon="byzantine")

    def test_rounds_backend_rejects_on_demand_protocols(self):
        for protocol in ("maodv", "odmrp", "flooding"):
            with pytest.raises(ValueError, match="no round-model realization"):
                rounds_base(protocol=protocol)

    def test_every_daemon_constructs_on_rounds_backend(self):
        for daemon in DAEMON_NAMES:
            assert rounds_base(daemon=daemon).daemon == daemon


class TestRoundsBackendParity:
    """The rounds backend must be a *view* of the round engine, not a
    reimplementation: stabilization counts match a direct RoundEngine
    invocation bit for bit, for every registered daemon."""

    @pytest.mark.parametrize("daemon", DAEMON_NAMES)
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=8, max_value=24),
        protocol=st.sampled_from(("ss-spst", "ss-spst-e")),
    )
    def test_backend_matches_direct_engine(self, daemon, seed, n, protocol):
        cfg = ScenarioConfig.quick(
            backend="rounds",
            protocol=protocol,
            daemon=daemon,
            n_nodes=n,
            group_size=max(2, n // 3),
            seed=seed,
        )
        result = backend_by_name("rounds").run(cfg)

        topo, metric = build_round_scenario(cfg)
        engine = engine_for(
            topo, metric, daemon, rng=RngStreams(seed).get("daemon")
        )
        direct = engine.run(fresh_states(topo, metric))

        assert result.rounds == direct.rounds
        assert result.evaluations == direct.evaluations
        assert result.moves == direct.moves
        assert result.chain_steps == direct.chain_steps
        assert result.converged == int(direct.converged)

    def test_deterministic_given_seed(self):
        cfg = rounds_base(seed=9)
        a = backend_by_name("rounds").run(cfg)
        b = backend_by_name("rounds").run(cfg)
        assert a.summary == b.summary

    def test_recovery_reported_after_convergence(self):
        cfg = rounds_base(daemon="central", n_nodes=20, group_size=6, seed=2)
        result = backend_by_name("rounds").run(cfg)
        assert result.converged == 1
        # recovery counts are finite floats once settled
        assert result.recovery_rounds == result.recovery_rounds
        assert result.recovery_evaluations >= 0.0


#: one hand-written v1-era cache record (schema 1, no ``backend`` key, a
#: config that predates the ``daemon``/``backend`` fields, and a
#: diagnostics section missing the later-added ``frames_collided``)
V1_RECORD_JSON = json.dumps(
    {
        "schema": 1,
        "config": {
            "protocol": "flooding",
            "n_nodes": 16,
            "arena_w": 750.0,
            "arena_h": 750.0,
            "v_min": 1.0,
            "v_max": 5.0,
            "pause_time": 0.0,
            "group_size": 4,
            "max_range": 250.0,
            "e_elec": 1e-06,
            "e_rx": 6e-07,
            "eps_amp": 1e-10,
            "alpha": 2.0,
            "bitrate_bps": 2000000.0,
            "loss_prob": 0.01,
            "capture_threshold": 10.0,
            "beacon_interval": 2.0,
            "rate_kbps": 32.0,
            "packet_bytes": 512,
            "traffic_start": 8.0,
            "sim_time": 12.0,
            "availability_probe_interval": 1.0,
            "seed": 1,
        },
        "summary": {
            "pdr": 0.5,
            "energy_per_packet_mj": 1.25,
            "avg_delay_ms": 3.0,
            "control_overhead": 0.1,
            "unavailability": 0.2,
            "data_originated": 10,
            "data_delivered": 5,
            "total_energy_j": 0.5,
            "control_bytes_tx": 100,
            "data_bytes_tx": 2000,
            "duplicates_suppressed": 3,
        },
        "diagnostics": {
            "parent_changes": 0,
            "events_executed": 1234,
            "frames_sent": 55,
        },
        "elapsed_s": 0.5,
    }
)


class TestRecordCompat:
    """Satellite: schema bump keeps v1 records loading."""

    def test_v1_fixture_roundtrip(self, tmp_path):
        """The old-format JSON fixture loads through the cache and
        rebuilds a RunResult; later-added fields default."""
        record = json.loads(V1_RECORD_JSON)
        cfg = ScenarioConfig(**record["config"])
        assert cfg.daemon == "distributed" and cfg.backend == "des"
        cache = ResultCache(str(tmp_path))
        with open(cache.path(cfg), "w", encoding="utf-8") as fh:
            fh.write(V1_RECORD_JSON)
        loaded = cache.load(cfg)
        assert loaded is not None, "v1 record must hit, not miss"
        result = result_from_record(loaded)
        assert result.config == cfg
        assert result.summary.pdr == 0.5
        assert result.frames_sent == 55
        assert result.frames_collided == 0  # later-added field defaults

    def test_v1_record_survives_direct_rebuild(self):
        """result_from_record also tolerates the raw (unpatched) record."""
        result = result_from_record(json.loads(V1_RECORD_JSON))
        assert result.summary.data_delivered == 5
        assert result.events_executed == 1234

    def test_rounds_summary_missing_fields_default(self):
        record = backend_by_name("rounds").record_from(
            backend_by_name("rounds").run(rounds_base()), elapsed_s=0.1
        )
        del record["summary"]["recovery_chain_steps"]  # a "newer" field
        rebuilt = result_from_record(record)
        assert isinstance(rebuilt, RoundRunResult)
        # missing float fields default to nan, ints to 0
        assert rebuilt.recovery_chain_steps != rebuilt.recovery_chain_steps

    def test_new_records_carry_current_schema(self):
        record = record_from_result(backend_by_name("rounds").run(rounds_base()))
        assert record["schema"] == CACHE_SCHEMA
        assert record["backend"] == "rounds"

    def test_backends_never_share_cache_cells(self, tmp_path):
        """Same scenario fields, different backend => different keys; and
        a rounds record can never impersonate a des result."""
        des_cfg = des_base(protocol="ss-spst-e")
        rounds_cfg = des_cfg.replace(backend="rounds")
        assert config_key(des_cfg) != config_key(rounds_cfg)
        cache = ResultCache(str(tmp_path))
        record = backend_by_name("rounds").record_from(
            backend_by_name("rounds").run(rounds_cfg)
        )
        with open(cache.path(des_cfg), "w", encoding="utf-8") as fh:
            json.dump(record, fh)
        assert cache.load(des_cfg) is None

    def test_des_hash_unchanged_by_backend_field(self):
        """The backend field is hash-neutral at "des": keys equal the
        pre-backend era's, so existing cache dirs keep hitting."""
        cfg = des_base()
        payload = dataclasses.asdict(cfg)
        assert payload["backend"] == "des"
        # the recorded-config comparison also patches old records — see
        # TestConfigKey/TestRecordCompat in test_campaign.py for the
        # daemon-era equivalents


class TestGoldenAggregation:
    """Golden-value aggregation per backend: the campaign's typed-metric
    aggregation equals Student-t CIs computed independently over direct
    backend runs."""

    def test_rounds_backend_golden(self):
        spec = CampaignSpec.from_mapping(
            name="golden-rounds",
            base=rounds_base(daemon="central"),
            protocols=("ss-spst", "ss-spst-e"),
            seeds=(1, 2, 3),
        )
        campaign = run_campaign(spec)
        agg = campaign_cis(campaign, "rounds")
        backend = backend_by_name("rounds")
        for (proto, point), ci in agg.items():
            direct = [
                float(backend.run(spec.base.replace(protocol=proto, seed=s)).rounds)
                for s in spec.seeds
            ]
            assert ci == mean_ci(direct)

    def test_des_backend_golden(self):
        spec = CampaignSpec.from_mapping(
            name="golden-des",
            base=des_base(),
            protocols=("flooding",),
            seeds=(1, 2),
        )
        campaign = run_campaign(spec, workers=2)
        agg = campaign_cis(campaign, "pdr")
        ((_, ci),) = list(agg.items())
        backend = backend_by_name("des")
        direct = [
            float(backend.run(spec.base.replace(protocol="flooding", seed=s)).pdr)
            for s in spec.seeds
        ]
        assert ci == mean_ci(direct)

    def test_mixed_backend_campaign_aggregates(self):
        """backend as a grid axis: one campaign spans both executors and
        still aggregates (foreign-backend cells extract nan and filter)."""
        spec = CampaignSpec.from_mapping(
            name="mixed",
            base=des_base(protocol="ss-spst"),
            protocols=("ss-spst",),
            seeds=(1,),
            grid={"backend": ("des", "rounds")},
        )
        assert spec.backends() == ("des", "rounds")
        campaign = run_campaign(spec)
        rounds_agg = campaign_cis(campaign, "rounds")
        des_cell = ("ss-spst", (("backend", "des"),))
        rounds_cell = ("ss-spst", (("backend", "rounds"),))
        assert rounds_agg[rounds_cell].n == 1
        assert rounds_agg[des_cell].mean != rounds_agg[des_cell].mean  # nan
        pdr_agg = campaign_cis(campaign, "pdr")
        assert 0.0 <= pdr_agg[des_cell].mean <= 1.0

    def test_unknown_metric_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            metric_extractor("no_such_metric", ("des", "rounds"))


class TestFigd02:
    def test_campaign_spec_covers_daemon_axis(self):
        spec = FIGURES["figd02"].campaign_spec(quick=True, seeds=(1,))
        assert spec.base.backend == "rounds"
        axes = dict(spec.grid)
        assert tuple(axes["daemon"]) == DAEMON_NAMES  # adversarial included
        assert max(axes["n_nodes"]) == 200  # paper scale
        assert spec.backends() == ("rounds",)

    def test_quick_sweep_runs(self):
        """A trimmed figd02-shaped sweep end to end (string extractor)."""
        fig = FIGURES["figd02"]
        sweep = fig.sweep(quick=True, seeds=(1,))
        sweep.x_values = [16, 24]
        sweep.base = sweep.base.replace(group_size=8)
        result = sweep.run()
        assert set(result.series) == {"ss-spst", "ss-spst-e"}
        assert all(len(s) == 2 for s in result.series.values())


class TestCliBackend:
    def test_rounds_campaign_cli(self, tmp_path, capsys):
        args = [
            "--backend", "rounds",
            "--protocols", "ss-spst,ss-spst-e",
            "--grid", "daemon=central,adversarial-max-cost",
            "--seeds", "1,2",
            "--set", "n_nodes=16", "--set", "group_size=4",
            "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 runs (executed=8 cached=0" in out
        assert "rounds" in out and "evaluations" in out  # default metrics
        assert "adversarial-max-cost" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=0 cached=8" in out

    def test_dry_run_reports_plan(self, tmp_path, capsys):
        args = [
            "--backend", "rounds",
            "--protocols", "ss-spst",
            "--grid", "daemon=central,synchronous",
            "--seeds", "1,2",
            "--set", "n_nodes=16", "--set", "group_size=4",
            "--cache-dir", str(tmp_path), "--quiet",
        ]
        # warm one shard's worth of cache, then plan with shard + cache
        assert main(args + ["--shard", "0/2"]) == 0
        capsys.readouterr()
        assert main(args + ["--shard", "0/2", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "# 4 runs = 2 cells x 2 seeds" in out
        assert "# backend(s): rounds" in out
        assert "# shard 0/2: mine=" in out
        assert "# warm cache hits:" in out
        assert "[cached]" in out
        # a dry run must not execute: the foreign shard stays uncached
        assert "executed" not in out

    def test_cli_rejects_bad_backend_daemon_combo(self):
        with pytest.raises(SystemExit, match="no DES realization"):
            main(
                ["--protocols", "ss-spst", "--grid",
                 "daemon=adversarial-max-cost", "--dry-run"]
            )

    def test_json_out_record(self, tmp_path, capsys):
        path = str(tmp_path / "artifacts" / "record.json")
        args = [
            "--backend", "rounds",
            "--protocols", "ss-spst",
            "--seeds", "1",
            "--set", "n_nodes=16", "--set", "group_size=4",
            "--quiet", "--json-out", path,
        ]
        assert main(args) == 0
        capsys.readouterr()
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        # strict RFC 8259: single-replication CIs (±inf) must serialize
        # as null, never as the bare Infinity/NaN tokens
        assert "Infinity" not in raw and "NaN" not in raw
        record = json.loads(raw)
        assert record["backends"] == ["rounds"]
        assert record["size"] == 1 and record["executed"] == 1
        (cell,) = record["cells"].values()
        assert cell["n"] == 1
        assert "rounds" in cell and "mean" in cell["rounds"]
        assert cell["rounds"]["half_width"] is None  # one seed -> ±inf

    def test_dry_run_does_not_create_cache_dir(self, tmp_path, capsys):
        absent = tmp_path / "never-created"
        assert main(
            ["--backend", "rounds", "--protocols", "ss-spst", "--seeds", "1",
             "--set", "n_nodes=16", "--set", "group_size=4",
             "--cache-dir", str(absent), "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert not absent.exists()
        assert "cache dir absent" in out

    def test_backend_flag_conflicts_rejected(self):
        with pytest.raises(SystemExit, match="already a grid axis"):
            main(["--backend", "rounds", "--protocols", "ss-spst",
                  "--grid", "backend=des,rounds", "--dry-run"])
        with pytest.raises(SystemExit, match="contradicts"):
            main(["--backend", "rounds", "--set", "backend=des",
                  "--protocols", "ss-spst", "--dry-run"])
        # agreeing flag + override is fine
        assert main(["--backend", "rounds", "--set", "backend=rounds",
                     "--protocols", "ss-spst", "--seeds", "1",
                     "--set", "n_nodes=16", "--set", "group_size=4",
                     "--dry-run"]) == 0


class TestBackendSmoke:
    """The CI leg's entry point: one tiny campaign on the env-selected
    backend (``REPRO_TEST_BACKEND``, default des)."""

    def test_campaign_cli_smoke(self, test_backend, tmp_path, capsys):
        if test_backend == "rounds":
            args = [
                "--backend", "rounds", "--protocols", "ss-spst,ss-spst-e",
                "--grid", "daemon=central,adversarial-max-cost",
            ]
        else:
            args = ["--protocols", "flooding,ss-spst", "--set", "sim_time=12"]
        args += [
            "--seeds", "1,2", "--set", "n_nodes=16", "--set", "group_size=4",
            "--cache-dir", str(tmp_path), "--workers", "2", "--quiet",
        ]
        expected = 8 if test_backend == "rounds" else 4
        assert main(args) == 0
        out = capsys.readouterr().out
        assert f"{expected} runs (executed={expected} cached=0" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert f"executed=0 cached={expected}" in out
