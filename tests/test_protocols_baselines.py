"""Tests for MAODV, ODMRP and flooding agents."""

import numpy as np
import pytest

from repro.energy import FirstOrderRadioModel
from repro.metrics.hub import MetricsHub
from repro.mobility import StaticPlacement, TraceMobility
from repro.net import MacConfig, Network, Packet, PacketKind
from repro.protocols.maodv import MaodvAgent, MaodvConfig
from repro.protocols.odmrp import OdmrpAgent, OdmrpConfig
from repro.protocols.registry import PROTOCOL_NAMES, make_agent_factory
from repro.sim import Simulator
from repro.util.geometry import Arena
from repro.util.rng import RngStreams

ARENA = Arena(1200.0, 1200.0)
RADIO = FirstOrderRadioModel(e_elec=1e-6, e_rx=0.3e-6, max_range=250.0)


def build(positions, protocol, members=None, mobility=None):
    sim = Simulator()
    streams = RngStreams(11)
    mob = mobility or StaticPlacement(
        len(positions), ARENA, positions=np.array(positions, dtype=float)
    )
    net = Network(sim, mob, RADIO, streams, mac_config=MacConfig())
    net.set_group(source=0, members=members if members is not None else range(1, mob.n))
    hub = MetricsHub(n_receivers=len(net.receivers))
    net.hub = hub
    net.attach_agents(make_agent_factory(protocol))
    net.start()
    return sim, net, hub


LINE = [[0, 0], [200, 0], [400, 0], [600, 0]]


class TestRegistry:
    def test_all_names_construct(self):
        for name in PROTOCOL_NAMES:
            sim, net, hub = build(LINE, name)
            assert all(n.agent is not None for n in net.nodes)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_agent_factory("ospf")


class TestFlooding:
    def test_delivers_along_line(self):
        sim, net, hub = build(LINE, "flooding", members=[3])
        net.nodes[0].agent.originate_data()
        sim.run(until=2.0)
        assert hub.data_delivered == 1  # the far member got it

    def test_every_node_rebroadcasts_once(self):
        sim, net, hub = build(LINE, "flooding", members=[3])
        net.nodes[0].agent.originate_data()
        sim.run(until=2.0)
        # 4 transmissions of the same flow: origin + 3 relays.
        assert net.medium.stats.frames_sent == 4

    def test_duplicate_suppression(self):
        sim, net, hub = build([[0, 0], [150, 0], [300, 0]], "flooding", members=[2])
        net.nodes[0].agent.originate_data()
        sim.run(until=2.0)
        sent_first = net.medium.stats.frames_sent
        assert sent_first == 3  # no rebroadcast storms


class TestMaodv:
    def test_members_join_tree(self):
        sim, net, hub = build(LINE, "maodv", members=[3])
        sim.run(until=20.0)
        assert net.nodes[3].agent.tree_fresh
        # Intermediate relays were activated by the MACT chain.
        assert net.nodes[1].agent.on_tree
        assert net.nodes[2].agent.on_tree

    def test_data_delivery_after_join(self):
        sim, net, hub = build(LINE, "maodv", members=[3])
        sim.run(until=20.0)
        for k in range(5):
            sim.schedule(0.2 * k, net.nodes[0].agent.originate_data)
        sim.run(until=25.0)
        assert hub.data_delivered >= 4

    def test_rreq_floods_when_stale(self):
        sim, net, hub = build(LINE, "maodv", members=[3])
        sim.run(until=20.0)
        assert net.nodes[3].agent.control_frames["rreq"] >= 1

    def test_hello_floods_from_leader(self):
        sim, net, hub = build(LINE, "maodv", members=[3])
        sim.run(until=20.0)
        assert net.nodes[0].agent.control_frames["hello"] >= 3

    def test_branch_breaks_stop_delivery(self):
        """Remove the only relay: the member must fall off the tree."""
        traces = [
            [(0.0, 100.0, 600.0)],
            [(0.0, 300.0, 600.0), (30.0, 300.0, 600.0), (36.0, 1100.0, 1100.0)],
            [(0.0, 500.0, 600.0)],
        ]
        mob = TraceMobility(ARENA, traces)
        sim, net, hub = build(None, "maodv", members=[2], mobility=mob)
        sim.run(until=25.0)
        assert net.nodes[2].agent.tree_fresh
        sim.run(until=70.0)
        # Relay gone: no path exists, tree state must have expired.
        assert not net.nodes[2].agent.tree_fresh

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MaodvConfig(hello_interval=5.0, tree_timeout=4.0)


class TestOdmrp:
    def test_forwarding_group_forms(self):
        sim, net, hub = build(LINE, "odmrp", members=[3])
        sim.run(until=10.0)
        # Relays 1 and 2 sit on the member's reverse path.
        assert net.nodes[1].agent.in_forwarding_group
        assert net.nodes[2].agent.in_forwarding_group

    def test_non_path_nodes_stay_out(self):
        # Node 3 hangs off the side; only member is node 2.
        positions = [[0, 0], [200, 0], [400, 0], [200, 200]]
        sim, net, hub = build(positions, "odmrp", members=[2])
        sim.run(until=10.0)
        assert not net.nodes[3].agent.in_forwarding_group

    def test_data_delivery(self):
        sim, net, hub = build(LINE, "odmrp", members=[3])
        sim.run(until=10.0)
        # Space the packets out (a same-instant burst collides at the MAC).
        for k in range(5):
            sim.schedule(0.2 * k, net.nodes[0].agent.originate_data)
        sim.run(until=15.0)
        assert hub.data_delivered >= 4

    def test_forwarding_group_soft_state_expires(self):
        sim, net, hub = build(LINE, "odmrp", members=[3])
        sim.run(until=10.0)
        agent1 = net.nodes[1].agent
        assert agent1.in_forwarding_group
        # Stop the query refresh; FG membership must lapse.
        net.nodes[0].agent.stop()
        sim.run(until=10.0 + agent1.config.fg_timeout + 4.0)
        assert not agent1.in_forwarding_group

    def test_queries_piggyback_data_size(self):
        cfg = OdmrpConfig(piggyback_bytes=512)
        assert cfg.query_bytes > 512

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OdmrpConfig(query_interval=0.0)


class TestCrossProtocolInvariants:
    @pytest.mark.parametrize("protocol", ["ss-spst-e", "maodv", "odmrp", "flooding"])
    def test_deliveries_never_exceed_expected(self, protocol):
        sim, net, hub = build(LINE, protocol, members=[2, 3])
        sim.run(until=15.0)
        for _ in range(10):
            net.nodes[0].agent.originate_data()
        sim.run(until=25.0)
        assert hub.data_delivered <= 10 * 2

    @pytest.mark.parametrize("protocol", ["ss-spst", "maodv", "odmrp", "flooding"])
    def test_energy_strictly_positive_when_active(self, protocol):
        sim, net, hub = build(LINE, protocol, members=[3])
        sim.run(until=15.0)
        net.nodes[0].agent.originate_data()
        sim.run(until=20.0)
        assert net.total_energy() > 0.0

    @pytest.mark.parametrize("protocol", ["ss-spst", "ss-spst-e", "maodv", "odmrp"])
    def test_dead_source_stops_traffic(self, protocol):
        sim, net, hub = build(LINE, protocol, members=[3])
        sim.run(until=15.0)
        net.nodes[0].battery.remaining_j = 1e-12
        net.nodes[0].battery.draw(1.0)  # deplete
        assert not net.nodes[0].alive
