"""Tests for the four cost metrics."""

import numpy as np
import pytest

from repro.core import (
    GlobalView,
    NodeState,
    fresh_states,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO, figure1_topology, figure5_topology
from repro.core.metrics import (
    METRIC_NAMES,
    PROTOCOL_LABELS,
    EnergyAwareMetric,
    FarthestChildMetric,
    HopMetric,
    TxEnergyMetric,
)
from repro.graph import Topology, TreeAssignment


@pytest.fixture
def topo():
    return figure1_topology()


def states_for_tree(topo, parents):
    """Build a state vector whose parent pointers match a tree (costs crude)."""
    sts = []
    for v, p in enumerate(parents):
        if v == topo.source:
            sts.append(NodeState(None, 0.0, 0))
        else:
            hop = 1
            cur = p
            while cur is not None and cur != topo.source:
                hop += 1
                cur = parents[cur]
            sts.append(NodeState(p, 1.0, hop))
    return sts


class TestRegistry:
    def test_all_names_resolve(self):
        for name in METRIC_NAMES:
            m = metric_by_name(name, EXAMPLE_RADIO)
            assert m.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            metric_by_name("bogus", EXAMPLE_RADIO)

    def test_labels_match_paper(self):
        assert PROTOCOL_LABELS["hop"] == "SS-SPST"
        assert PROTOCOL_LABELS["tx"] == "SS-SPST-T"
        assert PROTOCOL_LABELS["farthest"] == "SS-SPST-F"
        assert PROTOCOL_LABELS["energy"] == "SS-SPST-E"


class TestHopMetric:
    def test_join_cost_is_hops(self, topo):
        m = HopMetric(EXAMPLE_RADIO)
        states = fresh_states(topo, m)
        view = GlobalView(topo, states)
        # Joining the root costs 1 hop.
        assert m.join_cost(view, 1, 0) == 1.0

    def test_tree_cost_is_sum_of_depths(self, topo):
        m = HopMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 6, 0, 0, 4, 4])
        expected = sum(tree.depth(v) for v in range(topo.n))
        assert m.tree_cost(topo, tree) == expected

    def test_infinity_exceeds_any_path(self, topo):
        m = HopMetric(EXAMPLE_RADIO)
        assert m.infinity(topo) > topo.n


class TestTxEnergyMetric:
    def test_join_cost_additive(self, topo):
        m = TxEnergyMetric(EXAMPLE_RADIO)
        states = fresh_states(topo, m)
        view = GlobalView(topo, states)
        assert m.join_cost(view, 7, 0) == pytest.approx(m.etx(120.06))

    def test_tree_cost_sums_links(self, topo):
        m = TxEnergyMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 6, 0, 0, 4, 4])
        expected = sum(m.etx(topo.dist[p, v]) for p, v in tree.edges())
        assert m.tree_cost(topo, tree) == pytest.approx(expected)

    def test_prefers_relay_on_long_links(self):
        """The SS-SPST-T rationale (Example 2): relaying 200 m through a
        75 m + 120 m tandem is cheaper under the link metric."""
        m = TxEnergyMetric(EXAMPLE_RADIO)
        assert m.etx(120.06) + m.etx(75.37) < m.etx(200.03)


class TestFarthestChildMetric:
    def test_multicast_advantage(self, topo):
        """Joining a parent whose radius already covers you costs ~E_rx."""
        m = FarthestChildMetric(EXAMPLE_RADIO)
        # Tree where 4 is child of 7 and 5 hangs off 4 at 120.45.
        states = states_for_tree(topo, [None, 0, 0, 0, 7, 4, 0, 0, None, None])
        view = GlobalView(topo, states)
        # Node 8 at 75.48 from 4 (covered by the 120.45 radius): delta = E_rx.
        oc_with_radius = m.join_cost(view, 8, 4)
        base = view.state_of(4).cost
        assert oc_with_radius - base == pytest.approx(m.e_rx)

    def test_uncovered_child_pays_stretch(self, topo):
        m = FarthestChildMetric(EXAMPLE_RADIO)
        # 4's only child is 8 (75.48); adding 5 at 120.45 stretches it.
        states = states_for_tree(topo, [None, 0, 0, 0, 7, None, 0, 0, 4, None])
        view = GlobalView(topo, states)
        delta = m.join_cost(view, 5, 4) - view.state_of(4).cost
        assert delta == pytest.approx(m.etx(120.45) - m.etx(75.48) + m.e_rx)

    def test_node_cost_counts_children_rx(self, topo):
        m = FarthestChildMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 4, 0, 0, 4, 4])
        # Node 4 has children {5, 8, 9}: radius 120.45, 3 receptions.
        assert m.node_cost(topo, tree, 4) == pytest.approx(
            m.etx(120.45) + 3 * m.e_rx
        )

    def test_leaf_costs_nothing(self, topo):
        m = FarthestChildMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 4, 0, 0, 4, 4])
        assert m.node_cost(topo, tree, 1) == 0.0


class TestEnergyAwareMetric:
    def test_node_cost_includes_all_in_range(self, topo):
        m = EnergyAwareMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 4, 0, 0, 4, 4])
        # 4's flagged children: {5} (8, 9 are non-members and leaves).
        # Radius 120.45 covers neighbors 7, 3, 5, 8, 9 -> 5 receptions.
        assert m.node_cost(topo, tree, 4) == pytest.approx(
            m.etx(120.45) + 5 * m.e_rx
        )

    def test_discard_cost_excludes_intended(self, topo):
        m = EnergyAwareMetric(EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 4, 0, 0, 4, 4])
        # Of the 5 in-range listeners of node 4, only child 5 is intended.
        assert m.discard_cost(topo, tree, 4) == pytest.approx(4 * m.e_rx)

    def test_pruned_node_is_silent(self, topo):
        m = EnergyAwareMetric(EXAMPLE_RADIO)
        # 4's children are only the non-members 8, 9: fully pruned.
        tree = TreeAssignment(topo, [None, 0, 0, 6, 7, 6, 0, 0, 4, 4])
        assert m.node_cost(topo, tree, 4) == 0.0
        assert tree.data_tx_radius(4) == 0.0

    def test_unflagged_join_is_free(self, topo):
        m = EnergyAwareMetric(EXAMPLE_RADIO)
        states = states_for_tree(topo, [None, 0, 0, 0, 7, None, 0, 0, None, None])
        view = GlobalView(topo, states)
        # Node 8 is a non-member leaf: no data obligation for 4.
        assert m.join_cost(view, 8, 4) == pytest.approx(
            view.path_price(4, 8, False, m)
        )

    def test_figure5_discard_steering(self):
        """The fully specified Figure-5 check: equal path costs, but parent
        1 has three non-group neighbors inside the transmission range, so
        the E metric must price joining 1 strictly higher than joining 2."""
        topo5 = figure5_topology()
        m = EnergyAwareMetric(EXAMPLE_RADIO)
        states = states_for_tree(topo5, [None, 0, 0, None, None, None, None])
        view = GlobalView(topo5, states)
        assert m.join_cost(view, 3, 2) < m.join_cost(view, 3, 1)
        # The difference is exactly the 3 extra overhearers.
        diff = m.join_cost(view, 3, 1) - m.join_cost(view, 3, 2)
        assert diff == pytest.approx(3 * m.e_rx)

    def test_beacon_overhead_larger_than_family(self):
        """SS-SPST-E 'sends additional information in its beacon packet'."""
        e = EnergyAwareMetric(EXAMPLE_RADIO)
        h = HopMetric(EXAMPLE_RADIO)
        assert e.beacon_extra_bytes_fixed > 0
        assert e.beacon_extra_bytes_per_neighbor > 0
        assert h.beacon_extra_bytes_fixed == 0


class TestInfinity:
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_infinity_dominates_tree_costs(self, topo, name):
        m = metric_by_name(name, EXAMPLE_RADIO)
        tree = TreeAssignment(topo, [None, 0, 0, 0, 7, 6, 0, 0, 4, 4])
        assert m.infinity(topo) > m.tree_cost(topo, tree)
