"""Tests for the campaign subsystem: spec, hashing, cache, pool, CLI.

The scenarios here are deliberately tiny (16 nodes, 12 s of simulated
time) so the whole file — including the multiprocess runs — stays in the
seconds range.
"""

import copy
import dataclasses
import json
import os
import pickle

import pytest

from repro.experiments.campaign import (
    CACHE_SCHEMA,
    COMPATIBLE_SCHEMAS,
    HASH_SCHEMA,
    CampaignSpec,
    ResultCache,
    config_key,
    main,
    record_from_result,
    result_from_record,
    run_campaign,
    shard_of,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult, run_scenario

FAST = dict(sim_time=12.0, n_nodes=16, group_size=4)


def fast_base(**kw):
    merged = dict(FAST)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


def fast_spec(protocols=("flooding", "ss-spst"), seeds=(1, 2, 3), grid=None):
    return CampaignSpec.from_mapping(
        name="test",
        base=fast_base(),
        protocols=protocols,
        seeds=seeds,
        grid={"v_max": (1.0, 5.0)} if grid is None else grid,
    )


class TestConfigKey:
    def test_stable_across_instances(self):
        assert config_key(fast_base(seed=3)) == config_key(fast_base(seed=3))

    def test_sensitive_to_every_field(self):
        base = fast_base()
        for change in (
            {"seed": 99},
            {"protocol": "odmrp"},
            {"v_max": base.v_max + 1.0},
            {"loss_prob": base.loss_prob / 2},
            {"daemon": "central"},
        ):
            assert config_key(base.replace(**change)) != config_key(base)

    def test_later_added_defaults_are_hash_neutral(self):
        """Later-added axes (daemon, backend, the scenario-model axes)
        must not invalidate pre-existing caches: at their defaults the
        fields are dropped from the hash payload, so the key equals the
        seed era's key (computed here over every other field with the
        original ``v1`` prefix).  Byte-exact pre-redesign hashes are
        additionally pinned in tests/test_scenario_models.py's golden
        fixture."""
        from repro.experiments.campaign import _HASH_NEUTRAL_DEFAULTS

        base = fast_base()
        for name, default in _HASH_NEUTRAL_DEFAULTS.items():
            assert getattr(base, name) == default, name
        legacy_payload = dataclasses.asdict(base)
        for name in _HASH_NEUTRAL_DEFAULTS:
            del legacy_payload[name]
        legacy = json.dumps(legacy_payload, sort_keys=True, separators=(",", ":"))
        import hashlib

        expected = hashlib.sha256(
            f"v{HASH_SCHEMA}:{legacy}".encode("utf-8")
        ).hexdigest()[:24]
        assert config_key(base) == expected

    def test_hash_schema_decoupled_from_record_schema(self):
        """Bumping the record layout (CACHE_SCHEMA) must not re-key the
        cache: the hash prefix stays at the semantic version."""
        assert HASH_SCHEMA == 1
        assert CACHE_SCHEMA in COMPATIBLE_SCHEMAS

    def test_pre_daemon_cache_record_still_loads(self, tmp_path):
        """A record written before the daemon field existed (no 'daemon'
        key in its config dict) must hit for a default-daemon config."""
        cfg = fast_base(protocol="flooding")
        cache = ResultCache(str(tmp_path))
        record = record_from_result(run_scenario(cfg))
        del record["config"]["daemon"]  # simulate an old-era record
        cache.store(cfg, record)
        loaded = cache.load(cfg)
        assert loaded is not None
        rebuilt = result_from_record(loaded)
        assert rebuilt.config == cfg


class TestCampaignSpec:
    def test_configs_cover_grid_x_protocols_x_seeds(self):
        spec = fast_spec()
        configs = spec.configs()
        assert spec.size() == len(configs) == 2 * 2 * 3
        assert len(set(configs)) == len(configs)
        assert {c.protocol for c in configs} == {"flooding", "ss-spst"}
        assert {c.v_max for c in configs} == {1.0, 5.0}
        assert {c.seed for c in configs} == {1, 2, 3}

    def test_cells_group_seed_replications(self):
        spec = fast_spec()
        assert len(spec.cells()) == 4
        # configs are laid out cell-major: seeds of a cell are contiguous
        first = spec.configs()[: len(spec.seeds)]
        assert {c.protocol for c in first} == {first[0].protocol}
        assert {c.seed for c in first} == set(spec.seeds)

    def test_empty_grid_means_one_point(self):
        spec = fast_spec(grid={})
        assert spec.points() == [{}]
        assert spec.size() == 2 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_spec(protocols=())
        with pytest.raises(ValueError):
            fast_spec(seeds=())
        with pytest.raises(ValueError):
            fast_spec(grid={"no_such_field": (1,)})
        with pytest.raises(ValueError):
            fast_spec(grid={"v_max": ()})


class TestRunResultAttrPassthrough:
    """Regression: __getattr__ used to recurse infinitely on dunder or
    pre-`summary` lookups, which broke pickling in worker pools."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(fast_base(protocol="flooding"))

    def test_passthrough_still_works(self, result):
        assert result.pdr == result.summary.pdr

    def test_missing_attribute_raises(self, result):
        with pytest.raises(AttributeError):
            result.definitely_not_an_attr
        assert not hasattr(result, "definitely_not_an_attr")

    def test_dunder_lookup_raises_instead_of_recursing(self, result):
        with pytest.raises(AttributeError):
            result.__getstate__missing__  # arbitrary dunder-shaped name

    def test_lookup_before_summary_exists(self):
        hollow = RunResult.__new__(RunResult)
        with pytest.raises(AttributeError):
            hollow.pdr

    def test_pickle_roundtrip(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summary == result.summary
        assert clone.config == result.config
        assert clone.pdr == result.pdr

    def test_deepcopy(self, result):
        clone = copy.deepcopy(result)
        assert clone.summary == result.summary


class TestResultCache:
    def test_store_load_roundtrip(self, tmp_path):
        cfg = fast_base(protocol="flooding")
        result = run_scenario(cfg)
        cache = ResultCache(str(tmp_path))
        path = cache.store(cfg, record_from_result(result, elapsed_s=0.5))
        assert os.path.exists(path)
        record = cache.load(cfg)
        rebuilt = result_from_record(record)
        assert rebuilt.summary == result.summary
        assert rebuilt.config == cfg
        assert rebuilt.frames_sent == result.frames_sent

    def test_miss_on_unknown_config(self, tmp_path):
        assert ResultCache(str(tmp_path)).load(fast_base(seed=42)) is None

    def test_miss_on_corrupt_file(self, tmp_path):
        cfg = fast_base()
        cache = ResultCache(str(tmp_path))
        with open(cache.path(cfg), "w") as fh:
            fh.write("{not json")
        assert cache.load(cfg) is None

    def test_miss_on_schema_bump(self, tmp_path):
        cfg = fast_base(protocol="flooding")
        cache = ResultCache(str(tmp_path))
        record = record_from_result(run_scenario(cfg))
        record["schema"] = CACHE_SCHEMA + 1
        cache.store(cfg, record)
        assert cache.load(cfg) is None

    def test_miss_on_config_mismatch(self, tmp_path):
        """A hand-moved file must not impersonate another config."""
        cfg = fast_base(protocol="flooding")
        other = cfg.replace(seed=1234)
        cache = ResultCache(str(tmp_path))
        record = record_from_result(run_scenario(cfg))
        with open(cache.path(other), "w") as fh:
            json.dump(record, fh)
        assert cache.load(other) is None


class TestRunCampaign:
    def test_pool_executes_and_caches(self, tmp_path):
        spec = fast_spec(seeds=(1, 2))
        campaign = run_campaign(spec, workers=2, cache_dir=str(tmp_path))
        assert campaign.executed == spec.size() == 8
        assert campaign.cache_hits == 0
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 8
        assert all(r is not None for r in campaign.results)

        again = run_campaign(spec, workers=2, cache_dir=str(tmp_path))
        assert again.executed == 0
        assert again.cache_hits == 8
        assert [r.summary for r in again.results] == [
            r.summary for r in campaign.results
        ]

    def test_multiprocess_matches_serial_bit_for_bit(self, tmp_path):
        """Same seed => bit-identical RunSummary regardless of executor
        (the determinism the paper's 'same scenarios for all protocols'
        methodology depends on)."""
        spec = fast_spec(seeds=(1, 2))
        parallel = run_campaign(spec, workers=2)
        serial = run_campaign(spec, workers=1)
        for cfg, par, ser in zip(spec.configs(), parallel.results, serial.results):
            direct = run_scenario(cfg)
            assert par.summary.as_dict() == ser.summary.as_dict()
            assert par.summary.as_dict() == direct.summary.as_dict()
            assert par.events_executed == direct.events_executed

    def test_resumes_partial_campaign(self, test_store):
        full = fast_spec(seeds=(1, 2))
        half = fast_spec(protocols=("flooding",), seeds=(1, 2))
        first = run_campaign(half, workers=2, store=test_store)
        assert first.executed == 4
        rest = run_campaign(full, workers=2, store=test_store)
        assert rest.cache_hits == 4
        assert rest.executed == full.size() - 4

    def test_duplicate_configs_fill_every_slot(self):
        """Regression: repeated seeds used to collapse to one pool result
        (the worker map was keyed by config hash), leaving None slots."""
        spec = fast_spec(protocols=("flooding",), seeds=(1, 1), grid={})
        campaign = run_campaign(spec, workers=2)
        assert campaign.executed == 2
        assert all(r is not None for r in campaign.results)
        assert (
            campaign.results[0].summary.as_dict()
            == campaign.results[1].summary.as_dict()
        )
        # the aggregate over the duplicated cell must also work
        agg = campaign.aggregate(lambda r: r.summary.pdr)
        (ci,) = agg.values()
        assert ci.n == 2

    def test_memo_dict_shared_across_campaigns(self):
        memo = {}
        spec = fast_spec(protocols=("flooding",), seeds=(1,), grid={})
        first = run_campaign(spec, memo=memo)
        assert first.executed == 1 and len(memo) == 1
        second = run_campaign(spec, memo=memo)
        assert second.executed == 0 and second.memo_hits == 1
        assert second.results[0] is first.results[0]

    def test_progress_reports_executed_runs(self, test_store):
        seen = []
        spec = fast_spec(protocols=("flooding",), seeds=(1, 2), grid={})
        run_campaign(spec, store=test_store, progress=seen.append)
        assert len(seen) == 2
        assert all("flooding" in line for line in seen)

    def test_aggregate_matches_mean_ci(self):
        from repro.analysis.stats import mean_ci

        spec = fast_spec(protocols=("flooding",), seeds=(1, 2, 3), grid={})
        campaign = run_campaign(spec, workers=2)
        agg = campaign.aggregate(lambda r: r.summary.pdr)
        (key,) = agg
        expected = mean_ci([r.summary.pdr for r in campaign.results])
        assert agg[key] == expected

    def test_format_table_lists_all_cells(self):
        spec = fast_spec(seeds=(1,))
        campaign = run_campaign(spec, workers=2)
        table = campaign.format_table(["pdr", "avg_delay_ms"])
        assert "flooding" in table and "ss-spst" in table
        assert table.count("v_max=") == 4
        assert "pdr" in table and "avg_delay_ms" in table


class TestSharding:
    """Distributed campaigns: K machines share a cache dir, each runs its
    deterministic config-hash shard, a final run assembles from cache."""

    def test_shards_partition_the_campaign(self):
        spec = fast_spec(seeds=(1, 2))
        configs = spec.configs()
        for k in (1, 2, 3):
            shards = [
                [c for c in configs if shard_of(c, k) == i] for i in range(k)
            ]
            assert sum(len(s) for s in shards) == len(configs)
            seen = [c for s in shards for c in s]
            assert sorted(map(config_key, seen)) == sorted(map(config_key, configs))

    def test_shard_executes_only_its_share(self, test_store):
        spec = fast_spec(seeds=(1, 2))
        mine = [c for c in spec.configs() if shard_of(c, 2) == 0]
        campaign = run_campaign(
            spec, workers=2, store=test_store, shard=(0, 2)
        )
        assert campaign.executed == len(mine)
        assert campaign.skipped == spec.size() - len(mine)
        present = [r for r in campaign.results if r is not None]
        assert len(present) == len(mine)
        # partial aggregation still works (only populated cells reported)
        agg = campaign.aggregate(lambda r: r.summary.pdr)
        assert agg and all(ci.n >= 1 for ci in agg.values())
        campaign.format_table(["pdr"])

    def test_resume_after_shard_overlap(self, test_store):
        """Both shards into one store — including a repeated (crashed
        and restarted) shard, whose second pass must be pure cache hits —
        then an un-sharded run assembles everything without executing."""
        spec = fast_spec(seeds=(1, 2))
        first = run_campaign(spec, store=test_store, shard=(0, 2))
        again = run_campaign(spec, store=test_store, shard=(0, 2))
        assert again.executed == 0
        assert again.cache_hits == first.executed
        assert again.skipped == first.skipped
        other = run_campaign(spec, store=test_store, shard=(1, 2))
        assert other.executed == spec.size() - first.executed
        assert other.cache_hits == first.executed  # overlap served from cache
        assert other.skipped == 0
        full = run_campaign(spec, store=test_store)
        assert full.executed == 0 and full.skipped == 0
        assert full.cache_hits == spec.size()
        assert all(r is not None for r in full.results)

    def test_rejects_bad_shards(self, tmp_path):
        spec = fast_spec(seeds=(1,))
        with pytest.raises(ValueError, match="out of range"):
            run_campaign(spec, shard=(2, 2))
        with pytest.raises(ValueError, match="out of range"):
            run_campaign(spec, shard=(-1, 2))
        with pytest.raises(ValueError, match=">= 1"):
            run_campaign(spec, shard=(0, 0))

    def test_cli_shard_flag(self, test_store, capsys):
        args = [
            "--protocols", "flooding", "--seeds", "1,2", "--set", "sim_time=12",
            "--set", "n_nodes=16", "--set", "group_size=4", "--quiet",
            "--store", test_store,
        ]
        assert main(args + ["--shard", "0/2"]) == 0
        out0 = capsys.readouterr().out
        assert "shard=0/2" in out0
        assert main(args + ["--shard", "1/2"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=0 cached=2" in out

    def test_cli_rejects_malformed_shard(self):
        for bad in ("2/2", "1", "a/b", "1/0", "-1/2"):
            with pytest.raises(SystemExit):
                main(["--protocols", "flooding", "--shard", bad, "--dry-run"])

    def test_cli_dry_run_marks_shard_membership(self, capsys):
        assert main(
            ["--protocols", "flooding", "--seeds", "1,2", "--shard", "0/2",
             "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "[mine]" in out or "[other shard]" in out


class TestCli:
    """The acceptance path: a 4-config x 3-seed campaign end to end via
    the CLI with 2 workers, JSON results on disk, cache hit on re-run."""

    ARGS = [
        "--protocols", "flooding,ss-spst",
        "--grid", "v_max=1.0,5.0",
        "--seeds", "1,2,3",
        "--workers", "2",
        "--set", "sim_time=12",
        "--set", "n_nodes=16",
        "--set", "group_size=4",
        "--quiet",
    ]

    def test_campaign_runs_and_recovers_from_cache(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "12 runs (executed=12 cached=0" in out
        assert "pdr" in out and "flooding" in out
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 12
        for name in files:
            with open(tmp_path / name) as fh:
                record = json.load(fh)
            assert record["schema"] == CACHE_SCHEMA
            assert 0.0 <= record["summary"]["pdr"] <= 1.0

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "12 runs (executed=0 cached=12" in out

    def test_dry_run_lists_without_executing(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path), "--dry-run"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "# 12 runs" in out
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".json")]

    def test_list_figures(self, capsys):
        assert main(["--list-figures"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig07", "fig16"):
            assert fid in out

    def test_figure_spec_matches_figure_grid(self):
        from repro.experiments.campaign import build_parser, spec_from_args
        from repro.experiments.figures import FIGURES

        args = build_parser().parse_args(["--figure", "fig09", "--seeds", "1,2"])
        spec = spec_from_args(args)
        fig = FIGURES["fig09"]
        assert spec.protocols == tuple(fig.protocols)
        assert spec.grid == (("v_max", tuple(fig.x_quick)),)
        assert spec.seeds == (1, 2)

    def test_rejects_unknown_field(self):
        with pytest.raises(SystemExit):
            main(["--grid", "bogus_field=1,2", "--dry-run"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig99", "--dry-run"])

    def test_rejects_set_colliding_with_figure_axis(self):
        # fig09's grid axis is v_max: a --set on it would be silently
        # clobbered by the grid values — must be a loud error instead.
        with pytest.raises(SystemExit, match="v_max.*grid axis.*fig09"):
            main(["--figure", "fig09", "--set", "v_max=3.0", "--dry-run"])

    def test_rejects_set_colliding_with_grid_axis(self):
        with pytest.raises(SystemExit, match="v_max.*grid axis"):
            main(
                ["--grid", "v_max=1.0,5.0", "--set", "v_max=3.0", "--dry-run"]
            )

    def test_set_on_non_axis_field_still_works_with_figure(self):
        from repro.experiments.campaign import build_parser, spec_from_args

        args = build_parser().parse_args(
            ["--figure", "fig09", "--seeds", "1", "--set", "n_nodes=16",
             "--set", "group_size=4"]
        )
        spec = spec_from_args(args)
        assert spec.base.n_nodes == 16


class TestSweepIntegration:
    def test_sweep_through_campaign_engine(self, tmp_path):
        """Sweep.run == the historical serial results, via the campaign."""
        from repro.experiments.sweeps import Sweep

        base = fast_base()
        kw = dict(
            x_name="v_max",
            x_values=[1.0, 5.0],
            protocols=["flooding"],
            y_name="pdr",
            extract=lambda r: r.summary.pdr,
            base=base,
            seeds=(1, 2),
        )
        parallel = Sweep(**kw).run(workers=2, cache_dir=str(tmp_path))
        serial = Sweep(**kw).run()
        assert parallel.series == serial.series
        assert parallel.x_values == serial.x_values
        for cell, runs in serial.raw.items():
            assert [r.summary for r in parallel.raw[cell]] == [
                r.summary for r in runs
            ]
