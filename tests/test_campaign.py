"""Tests for the campaign subsystem: spec, hashing, cache, pool, CLI.

The scenarios here are deliberately tiny (16 nodes, 12 s of simulated
time) so the whole file — including the multiprocess runs — stays in the
seconds range.
"""

import copy
import dataclasses
import json
import os
import pickle

import pytest

from repro.experiments.campaign import (
    CACHE_SCHEMA,
    CampaignSpec,
    ResultCache,
    config_key,
    main,
    record_from_result,
    result_from_record,
    run_campaign,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult, run_scenario

FAST = dict(sim_time=12.0, n_nodes=16, group_size=4)


def fast_base(**kw):
    merged = dict(FAST)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


def fast_spec(protocols=("flooding", "ss-spst"), seeds=(1, 2, 3), grid=None):
    return CampaignSpec.from_mapping(
        name="test",
        base=fast_base(),
        protocols=protocols,
        seeds=seeds,
        grid={"v_max": (1.0, 5.0)} if grid is None else grid,
    )


class TestConfigKey:
    def test_stable_across_instances(self):
        assert config_key(fast_base(seed=3)) == config_key(fast_base(seed=3))

    def test_sensitive_to_every_field(self):
        base = fast_base()
        for change in (
            {"seed": 99},
            {"protocol": "odmrp"},
            {"v_max": base.v_max + 1.0},
            {"loss_prob": base.loss_prob / 2},
        ):
            assert config_key(base.replace(**change)) != config_key(base)


class TestCampaignSpec:
    def test_configs_cover_grid_x_protocols_x_seeds(self):
        spec = fast_spec()
        configs = spec.configs()
        assert spec.size() == len(configs) == 2 * 2 * 3
        assert len(set(configs)) == len(configs)
        assert {c.protocol for c in configs} == {"flooding", "ss-spst"}
        assert {c.v_max for c in configs} == {1.0, 5.0}
        assert {c.seed for c in configs} == {1, 2, 3}

    def test_cells_group_seed_replications(self):
        spec = fast_spec()
        assert len(spec.cells()) == 4
        # configs are laid out cell-major: seeds of a cell are contiguous
        first = spec.configs()[: len(spec.seeds)]
        assert {c.protocol for c in first} == {first[0].protocol}
        assert {c.seed for c in first} == set(spec.seeds)

    def test_empty_grid_means_one_point(self):
        spec = fast_spec(grid={})
        assert spec.points() == [{}]
        assert spec.size() == 2 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_spec(protocols=())
        with pytest.raises(ValueError):
            fast_spec(seeds=())
        with pytest.raises(ValueError):
            fast_spec(grid={"no_such_field": (1,)})
        with pytest.raises(ValueError):
            fast_spec(grid={"v_max": ()})


class TestRunResultAttrPassthrough:
    """Regression: __getattr__ used to recurse infinitely on dunder or
    pre-`summary` lookups, which broke pickling in worker pools."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(fast_base(protocol="flooding"))

    def test_passthrough_still_works(self, result):
        assert result.pdr == result.summary.pdr

    def test_missing_attribute_raises(self, result):
        with pytest.raises(AttributeError):
            result.definitely_not_an_attr
        assert not hasattr(result, "definitely_not_an_attr")

    def test_dunder_lookup_raises_instead_of_recursing(self, result):
        with pytest.raises(AttributeError):
            result.__getstate__missing__  # arbitrary dunder-shaped name

    def test_lookup_before_summary_exists(self):
        hollow = RunResult.__new__(RunResult)
        with pytest.raises(AttributeError):
            hollow.pdr

    def test_pickle_roundtrip(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summary == result.summary
        assert clone.config == result.config
        assert clone.pdr == result.pdr

    def test_deepcopy(self, result):
        clone = copy.deepcopy(result)
        assert clone.summary == result.summary


class TestResultCache:
    def test_store_load_roundtrip(self, tmp_path):
        cfg = fast_base(protocol="flooding")
        result = run_scenario(cfg)
        cache = ResultCache(str(tmp_path))
        path = cache.store(cfg, record_from_result(result, elapsed_s=0.5))
        assert os.path.exists(path)
        record = cache.load(cfg)
        rebuilt = result_from_record(record)
        assert rebuilt.summary == result.summary
        assert rebuilt.config == cfg
        assert rebuilt.frames_sent == result.frames_sent

    def test_miss_on_unknown_config(self, tmp_path):
        assert ResultCache(str(tmp_path)).load(fast_base(seed=42)) is None

    def test_miss_on_corrupt_file(self, tmp_path):
        cfg = fast_base()
        cache = ResultCache(str(tmp_path))
        with open(cache.path(cfg), "w") as fh:
            fh.write("{not json")
        assert cache.load(cfg) is None

    def test_miss_on_schema_bump(self, tmp_path):
        cfg = fast_base(protocol="flooding")
        cache = ResultCache(str(tmp_path))
        record = record_from_result(run_scenario(cfg))
        record["schema"] = CACHE_SCHEMA + 1
        cache.store(cfg, record)
        assert cache.load(cfg) is None

    def test_miss_on_config_mismatch(self, tmp_path):
        """A hand-moved file must not impersonate another config."""
        cfg = fast_base(protocol="flooding")
        other = cfg.replace(seed=1234)
        cache = ResultCache(str(tmp_path))
        record = record_from_result(run_scenario(cfg))
        with open(cache.path(other), "w") as fh:
            json.dump(record, fh)
        assert cache.load(other) is None


class TestRunCampaign:
    def test_pool_executes_and_caches(self, tmp_path):
        spec = fast_spec(seeds=(1, 2))
        campaign = run_campaign(spec, workers=2, cache_dir=str(tmp_path))
        assert campaign.executed == spec.size() == 8
        assert campaign.cache_hits == 0
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 8
        assert all(r is not None for r in campaign.results)

        again = run_campaign(spec, workers=2, cache_dir=str(tmp_path))
        assert again.executed == 0
        assert again.cache_hits == 8
        assert [r.summary for r in again.results] == [
            r.summary for r in campaign.results
        ]

    def test_multiprocess_matches_serial_bit_for_bit(self, tmp_path):
        """Same seed => bit-identical RunSummary regardless of executor
        (the determinism the paper's 'same scenarios for all protocols'
        methodology depends on)."""
        spec = fast_spec(seeds=(1, 2))
        parallel = run_campaign(spec, workers=2)
        serial = run_campaign(spec, workers=1)
        for cfg, par, ser in zip(spec.configs(), parallel.results, serial.results):
            direct = run_scenario(cfg)
            assert par.summary.as_dict() == ser.summary.as_dict()
            assert par.summary.as_dict() == direct.summary.as_dict()
            assert par.events_executed == direct.events_executed

    def test_resumes_partial_campaign(self, tmp_path):
        full = fast_spec(seeds=(1, 2))
        half = fast_spec(protocols=("flooding",), seeds=(1, 2))
        first = run_campaign(half, workers=2, cache_dir=str(tmp_path))
        assert first.executed == 4
        rest = run_campaign(full, workers=2, cache_dir=str(tmp_path))
        assert rest.cache_hits == 4
        assert rest.executed == full.size() - 4

    def test_duplicate_configs_fill_every_slot(self):
        """Regression: repeated seeds used to collapse to one pool result
        (the worker map was keyed by config hash), leaving None slots."""
        spec = fast_spec(protocols=("flooding",), seeds=(1, 1), grid={})
        campaign = run_campaign(spec, workers=2)
        assert campaign.executed == 2
        assert all(r is not None for r in campaign.results)
        assert (
            campaign.results[0].summary.as_dict()
            == campaign.results[1].summary.as_dict()
        )
        # the aggregate over the duplicated cell must also work
        agg = campaign.aggregate(lambda r: r.summary.pdr)
        (ci,) = agg.values()
        assert ci.n == 2

    def test_memo_dict_shared_across_campaigns(self):
        memo = {}
        spec = fast_spec(protocols=("flooding",), seeds=(1,), grid={})
        first = run_campaign(spec, memo=memo)
        assert first.executed == 1 and len(memo) == 1
        second = run_campaign(spec, memo=memo)
        assert second.executed == 0 and second.memo_hits == 1
        assert second.results[0] is first.results[0]

    def test_progress_reports_executed_runs(self, tmp_path):
        seen = []
        spec = fast_spec(protocols=("flooding",), seeds=(1, 2), grid={})
        run_campaign(spec, cache_dir=str(tmp_path), progress=seen.append)
        assert len(seen) == 2
        assert all("flooding" in line for line in seen)

    def test_aggregate_matches_mean_ci(self):
        from repro.analysis.stats import mean_ci

        spec = fast_spec(protocols=("flooding",), seeds=(1, 2, 3), grid={})
        campaign = run_campaign(spec, workers=2)
        agg = campaign.aggregate(lambda r: r.summary.pdr)
        (key,) = agg
        expected = mean_ci([r.summary.pdr for r in campaign.results])
        assert agg[key] == expected

    def test_format_table_lists_all_cells(self):
        spec = fast_spec(seeds=(1,))
        campaign = run_campaign(spec, workers=2)
        table = campaign.format_table(["pdr", "avg_delay_ms"])
        assert "flooding" in table and "ss-spst" in table
        assert table.count("v_max=") == 4
        assert "pdr" in table and "avg_delay_ms" in table


class TestCli:
    """The acceptance path: a 4-config x 3-seed campaign end to end via
    the CLI with 2 workers, JSON results on disk, cache hit on re-run."""

    ARGS = [
        "--protocols", "flooding,ss-spst",
        "--grid", "v_max=1.0,5.0",
        "--seeds", "1,2,3",
        "--workers", "2",
        "--set", "sim_time=12",
        "--set", "n_nodes=16",
        "--set", "group_size=4",
        "--quiet",
    ]

    def test_campaign_runs_and_recovers_from_cache(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "12 runs (executed=12 cached=0" in out
        assert "pdr" in out and "flooding" in out
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 12
        for name in files:
            with open(tmp_path / name) as fh:
                record = json.load(fh)
            assert record["schema"] == CACHE_SCHEMA
            assert 0.0 <= record["summary"]["pdr"] <= 1.0

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "12 runs (executed=0 cached=12" in out

    def test_dry_run_lists_without_executing(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path), "--dry-run"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "# 12 runs" in out
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".json")]

    def test_list_figures(self, capsys):
        assert main(["--list-figures"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig07", "fig16"):
            assert fid in out

    def test_figure_spec_matches_figure_grid(self):
        from repro.experiments.campaign import build_parser, spec_from_args
        from repro.experiments.figures import FIGURES

        args = build_parser().parse_args(["--figure", "fig09", "--seeds", "1,2"])
        spec = spec_from_args(args)
        fig = FIGURES["fig09"]
        assert spec.protocols == tuple(fig.protocols)
        assert spec.grid == (("v_max", tuple(fig.x_quick)),)
        assert spec.seeds == (1, 2)

    def test_rejects_unknown_field(self):
        with pytest.raises(SystemExit):
            main(["--grid", "bogus_field=1,2", "--dry-run"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig99", "--dry-run"])

    def test_rejects_set_colliding_with_figure_axis(self):
        # fig09's grid axis is v_max: a --set on it would be silently
        # clobbered by the grid values — must be a loud error instead.
        with pytest.raises(SystemExit, match="v_max.*grid axis.*fig09"):
            main(["--figure", "fig09", "--set", "v_max=3.0", "--dry-run"])

    def test_rejects_set_colliding_with_grid_axis(self):
        with pytest.raises(SystemExit, match="v_max.*grid axis"):
            main(
                ["--grid", "v_max=1.0,5.0", "--set", "v_max=3.0", "--dry-run"]
            )

    def test_set_on_non_axis_field_still_works_with_figure(self):
        from repro.experiments.campaign import build_parser, spec_from_args

        args = build_parser().parse_args(
            ["--figure", "fig09", "--seeds", "1", "--set", "n_nodes=16",
             "--set", "group_size=4"]
        )
        spec = spec_from_args(args)
        assert spec.base.n_nodes == 16


class TestSweepIntegration:
    def test_sweep_through_campaign_engine(self, tmp_path):
        """Sweep.run == the historical serial results, via the campaign."""
        from repro.experiments.sweeps import Sweep

        base = fast_base()
        kw = dict(
            x_name="v_max",
            x_values=[1.0, 5.0],
            protocols=["flooding"],
            y_name="pdr",
            extract=lambda r: r.summary.pdr,
            base=base,
            seeds=(1, 2),
        )
        parallel = Sweep(**kw).run(workers=2, cache_dir=str(tmp_path))
        serial = Sweep(**kw).run()
        assert parallel.series == serial.series
        assert parallel.x_values == serial.x_values
        for cell, runs in serial.raw.items():
            assert [r.summary for r in parallel.raw[cell]] == [
                r.summary for r in runs
            ]
