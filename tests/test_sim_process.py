"""Tests for the generator-process layer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Process, Signal, start_process


class TestProcessTimeouts:
    def test_sleep_sequence(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 1.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        start_process(sim, proc())
        sim.run()
        assert log == [0.0, 1.0, 3.5]

    def test_start_delay(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 1.0
            log.append(sim.now)

        start_process(sim, proc(), delay=5.0)
        sim.run()
        assert log == [5.0, 6.0]

    def test_process_completes(self, sim):
        def proc():
            yield 1.0

        p = start_process(sim, proc())
        assert p.alive
        sim.run()
        assert not p.alive

    def test_stop_cancels_wakeup(self, sim):
        log = []

        def proc():
            yield 1.0
            log.append("should not run")

        p = start_process(sim, proc())
        p.stop()
        sim.run()
        assert log == []
        assert not p.alive


class TestSignals:
    def test_fire_wakes_waiter_with_value(self, sim):
        sig = Signal(sim)
        got = []

        def waiter():
            value = yield sig
            got.append((sim.now, value))

        start_process(sim, waiter())
        sim.schedule(3.0, sig.fire, "hello")
        sim.run()
        assert got == [(3.0, "hello")]

    def test_fire_wakes_all_waiters(self, sim):
        sig = Signal(sim)
        got = []

        def waiter(name):
            value = yield sig
            got.append((name, value))

        start_process(sim, waiter("a"))
        start_process(sim, waiter("b"))
        sim.schedule(1.0, sig.fire, 42)
        sim.run()
        assert sorted(got) == [("a", 42), ("b", 42)]

    def test_signal_reusable(self, sim):
        sig = Signal(sim)
        got = []

        def waiter():
            while True:
                v = yield sig
                got.append(v)
                if v == "stop":
                    return

        start_process(sim, waiter())
        sim.schedule(1.0, sig.fire, "one")
        sim.schedule(2.0, sig.fire, "stop")
        sim.run()
        assert got == ["one", "stop"]

    def test_waiting_count(self, sim):
        sig = Signal(sim)

        def waiter():
            yield sig

        start_process(sim, waiter())
        sim.run(until=0.5)
        assert sig.waiting == 1
        sig.fire()
        sim.run()
        assert sig.waiting == 0


class TestErrors:
    def test_negative_yield_kills_process(self, sim):
        def proc():
            yield -1.0

        start_process(sim, proc())
        with pytest.raises(Exception):
            sim.run()

    def test_bad_yield_type(self, sim):
        def proc():
            yield "nonsense"

        start_process(sim, proc())
        with pytest.raises(Exception):
            sim.run()
