"""Property tests: incremental executors match the baselines bit-for-bit.

The dirty-set executors promise an *identical trajectory* — states,
round count, cost history, move count, convergence verdict — to their
baseline counterparts, on any topology and from any (however
illegitimate) initial state.  Hypothesis drives random connected
geometric graphs and arbitrary states through all four metrics under
both daemons; the incremental view's derived structures are additionally
checked against from-scratch derivation after random edit sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CentralDaemonExecutor,
    GlobalView,
    IncrementalCentralDaemonExecutor,
    IncrementalSyncExecutor,
    NodeState,
    SyncExecutor,
    arbitrary_states,
    derive_children,
    derive_flags,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES
from repro.core.views import _count_parent_cycles
from repro.graph import Topology

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: enough for any trajectory on these graph sizes, converged or cyclic
MAX_ROUNDS = 120


def random_connected_topology(seed, n_min=5, n_max=14):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        n = int(rng.integers(n_min, n_max + 1))
        pos = rng.random((n, 2)) * 400.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo
    pytest.skip("could not sample a connected topology")


def assert_same_trajectory(a, b):
    assert a.states == b.states  # exact, not approx: bit-identical
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves


PAIRS = (
    (SyncExecutor, IncrementalSyncExecutor),
    (CentralDaemonExecutor, IncrementalCentralDaemonExecutor),
)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
@pytest.mark.parametrize("metric_name", METRIC_NAMES)
def test_incremental_matches_baseline_from_arbitrary_state(metric_name, seed):
    """Arbitrary initial states: cycles, garbage costs, dangling parents."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    for base_cls, inc_cls in PAIRS:
        base = base_cls(topo, m).run(list(init), max_rounds=MAX_ROUNDS)
        inc = inc_cls(topo, m).run(list(init), max_rounds=MAX_ROUNDS)
        assert_same_trajectory(base, inc)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
@pytest.mark.parametrize("metric_name", METRIC_NAMES)
def test_incremental_matches_baseline_from_fresh_state(metric_name, seed):
    """The canonical start: root correct, everyone else disconnected."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = fresh_states(topo, m)
    for base_cls, inc_cls in PAIRS:
        base = base_cls(topo, m).run(list(init), max_rounds=MAX_ROUNDS)
        inc = inc_cls(topo, m).run(list(init), max_rounds=MAX_ROUNDS)
        assert_same_trajectory(base, inc)
        if base.converged:
            assert is_legitimate(topo, m, inc.states)


def _scratch_counters(view):
    """Flagged-children counters derived from scratch."""
    flags = derive_flags(view.topo, view.states)
    fcnt = [0] * len(view.states)
    for c, s in enumerate(view.states):
        if s.parent is not None and flags[c]:
            fcnt[s.parent] += 1
    return fcnt


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_incremental_view_apply_matches_rederivation(seed):
    """GlobalView.apply must keep children, flags, the flagged-children
    counters and the cycle count exactly equal to a from-scratch
    derivation after an arbitrary edit sequence."""
    topo = random_connected_topology(seed)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    rng = np.random.default_rng(seed + 7)
    states = arbitrary_states(topo, m, rng)
    view = GlobalView(topo, states)
    for _ in range(30):
        v = int(rng.integers(0, topo.n))
        nbrs = topo.neighbors(v)
        parent = int(rng.choice(nbrs)) if nbrs and rng.random() < 0.7 else None
        ns = NodeState(
            parent=parent,
            cost=float(rng.uniform(0.0, 10.0)),
            hop=int(rng.integers(0, topo.n + 1)),
        )
        before = list(view._flags)
        flips = view.apply(v, ns)
        assert view._children == derive_children(view.states)
        assert view._flags == derive_flags(topo, view.states)
        assert view._n_cycles == _count_parent_cycles(view.states)
        if view._fcnt is not None:  # acyclic: counters must be exact
            assert view._fcnt == _scratch_counters(view)
        if flips is not None:
            # Every node whose flag actually changed must be reported
            # (extra entries are allowed: a node can flip off along the
            # old chain and back on along the new one — its flagged child
            # set still changed, which is what dirty sets care about).
            changed = {u for u in range(topo.n) if before[u] != view._flags[u]}
            assert changed <= set(flips)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_flags_excluding_matches_scratch_after_applies(seed):
    """The counter-walk ``flags_excluding`` must equal a from-scratch
    derivation over a detached copy, for every node, across an arbitrary
    apply sequence (both parent moves and cost-only changes)."""
    topo = random_connected_topology(seed, n_max=10)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    rng = np.random.default_rng(seed + 13)
    states = arbitrary_states(topo, m, rng)
    view = GlobalView(topo, states)

    def check_all():
        for v in range(topo.n):
            got = view.flags_excluding(v)
            detached = list(view.states)
            if detached[v].parent is not None:
                detached[v] = NodeState(
                    parent=None, cost=detached[v].cost, hop=detached[v].hop
                )
            scratch = derive_flags(topo, detached)
            assert [bool(got[u]) for u in range(topo.n)] == scratch, (
                f"flags_excluding({v}) diverged"
            )

    check_all()
    for _ in range(12):
        v = int(rng.integers(0, topo.n))
        if rng.random() < 0.5:  # cost-only change: caches may survive
            old = view.states[v]
            ns = NodeState(parent=old.parent, cost=float(rng.uniform(0.0, 9.0)), hop=old.hop)
        else:  # parent move: detached-flag caches must be invalidated
            nbrs = topo.neighbors(v)
            parent = int(rng.choice(nbrs)) if nbrs and rng.random() < 0.8 else None
            ns = NodeState(parent=parent, cost=view.states[v].cost, hop=view.states[v].hop)
        view.apply(v, ns)
        check_all()


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_path_price_shared_memo_matches_fresh_view(seed):
    """The cross-evaluation chain memo must never leak one evaluator's
    detached world into another's price: across an arbitrary apply
    sequence, every (candidate, evaluator) path_price must equal the same
    query on a freshly derived view (whose memos are empty)."""
    topo = random_connected_topology(seed, n_max=10)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    rng = np.random.default_rng(seed + 23)
    view = GlobalView(topo, arbitrary_states(topo, m, rng))

    def check_all():
        for v in range(topo.n):
            v_flag = bool(view.flag_excluding(v, v))
            for u in topo.neighbors(v):
                got = view.path_price(u, v, v_flag, m)
                fresh = GlobalView(topo, view.states).path_price(u, v, v_flag, m)
                assert got == fresh, f"path_price({u}, {v}) diverged"

    check_all()
    for _ in range(8):
        v = int(rng.integers(0, topo.n))
        nbrs = topo.neighbors(v)
        if rng.random() < 0.3:
            old = view.states[v]
            ns = NodeState(old.parent, float(rng.uniform(0.0, 9.0)), old.hop)
        else:
            parent = int(rng.choice(nbrs)) if nbrs and rng.random() < 0.8 else None
            ns = NodeState(parent, view.states[v].cost, view.states[v].hop)
        view.apply(v, ns)
        check_all()


def test_path_price_cycle_fallback_is_candidate_order_independent():
    """Prices through a parent cycle are cut where the walk started, so
    they are per-candidate values: evaluating one candidate must never
    change another candidate's price (the chain-price memo must not leak
    cycle-truncated entries across candidates)."""
    topo = Topology.from_edges(
        4,
        {(0, 1): 100.0, (1, 2): 100.0, (2, 3): 100.0, (1, 3): 120.0},
        source=0,
        members=[1],
    )
    m = metric_by_name("energy", EXAMPLE_RADIO)
    states = [
        NodeState(parent=None, cost=0.0, hop=0),
        NodeState(parent=2, cost=1.0, hop=2),  # 1 <-> 2: planted cycle
        NodeState(parent=1, cost=2.0, hop=3),
        NodeState(parent=None, cost=9.0, hop=4),
    ]
    fresh = [
        GlobalView(topo, states).path_price(u, 3, True, m) for u in (1, 2)
    ]
    shared = GlobalView(topo, states)
    forward = [shared.path_price(u, 3, True, m) for u in (1, 2)]
    shared = GlobalView(topo, states)
    backward = [shared.path_price(u, 3, True, m) for u in (2, 1)][::-1]
    assert forward == fresh
    assert backward == fresh


class TestApplyHardening:
    """apply() must fail loudly (with node ids) when the caller mutated
    the state vector behind the view's back, not with a bare
    ``ValueError: list.remove(x)`` from deep inside."""

    def test_externally_mutated_parent_raises_clear_error(self):
        topo = random_connected_topology(11)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = IncrementalCentralDaemonExecutor(topo, m).run(fresh_states(topo, m))
        view = GlobalView(topo, res.states)
        v = next(
            u for u in range(topo.n) if view.states[u].parent is not None
        )
        old = view.states[v]
        # Simulate external mutation: rewrite v's parent without apply().
        view.states[v] = NodeState(parent=None, cost=old.cost, hop=old.hop)
        view._children[old.parent].remove(v)
        view.states[v] = old  # state restored, children list now stale
        with pytest.raises(ValueError, match=rf"node {v}.*parent {old.parent}"):
            view.apply(v, NodeState(parent=None, cost=1.0, hop=2))

    def test_consistent_apply_still_works(self):
        topo = random_connected_topology(11)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = IncrementalCentralDaemonExecutor(topo, m).run(fresh_states(topo, m))
        view = GlobalView(topo, res.states)
        v = next(u for u in range(topo.n) if view.states[u].parent is not None)
        ns = NodeState(parent=view.states[v].parent, cost=5.0, hop=3)
        assert view.apply(v, ns) == ()


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
@pytest.mark.parametrize("metric_name", ("hop", "energy"))
def test_run_perturbed_matches_baseline(metric_name, seed):
    """Warm-start recovery: run_perturbed from a settled vector plus
    faults must be bit-identical to a cold baseline run on the perturbed
    vector (the contract that makes the fault-recovery ablation sound).

    Only the central-daemon pair is checked: the settled vector is a
    *tolerance* fixpoint of the central daemon, which is exactly the
    fixpoint notion the central daemon itself uses (it never writes
    approx-equal states), but SyncExecutor silently rewrites every node
    every round, so sub-tolerance float drift on clean nodes could make
    an exact-equality comparison flake for the sync pair."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    settled = IncrementalCentralDaemonExecutor(topo, m).run(
        fresh_states(topo, m), max_rounds=MAX_ROUNDS
    )
    if not settled.converged:  # F/E fixed-order limit cycles: not in scope
        return
    rng = np.random.default_rng(seed + 3)
    faults = []
    for _ in range(3):
        v = int(rng.integers(1, topo.n))
        nbrs = topo.neighbors(v)
        st = settled.states[v]
        if rng.random() < 0.5:
            faults.append((v, NodeState(st.parent, float(rng.uniform(0, 9)), st.hop)))
        elif nbrs:
            faults.append((v, NodeState(int(rng.choice(nbrs)), st.cost, st.hop)))
    if not faults:
        return
    perturbed = list(settled.states)
    applied = []
    for v, ns in faults:
        if perturbed[v] == ns:
            continue
        perturbed[v] = ns
        applied.append((v, ns))
    base = CentralDaemonExecutor(topo, m).run(list(perturbed), max_rounds=MAX_ROUNDS)
    inc = IncrementalCentralDaemonExecutor(topo, m).run_perturbed(
        list(settled.states), applied, max_rounds=MAX_ROUNDS
    )
    assert_same_trajectory(base, inc)


class TestPlantedCycle:
    """Deterministic regression: the Lemma-3 count-to-infinity escape must
    take the exact same number of rounds incrementally."""

    def _topo(self):
        edges = {
            (0, 1): 100.0, (1, 2): 100.0, (2, 3): 100.0, (3, 4): 80.0,
            (4, 5): 80.0, (5, 2): 90.0, (1, 5): 120.0,
        }
        return Topology.from_edges(6, edges, source=0, members=[2, 4])

    def test_cycle_broken_identically(self):
        topo = self._topo()
        m = metric_by_name("hop", EXAMPLE_RADIO)
        states = fresh_states(topo, m)
        # plant 3 -> 4 -> 5 -> 3 with bogus small hops and finite costs
        states[3] = NodeState(4, 3.0, 3)
        states[4] = NodeState(5, 3.0, 3)
        states[5] = NodeState(3, 3.0, 3)
        for base_cls, inc_cls in PAIRS:
            base = base_cls(topo, m).run(list(states))
            inc = inc_cls(topo, m).run(list(states))
            assert base.converged
            assert_same_trajectory(base, inc)


class TestDirtySetActuallyShrinks:
    """The dirty set must collapse once the system settles (the point of
    the exercise): re-running from a fixpoint does no rounds, and a
    single planted perturbation never dirties the whole line."""

    def test_fixpoint_reruns_do_nothing(self):
        # hop: guaranteed convergent (the F metric can limit-cycle under
        # fixed-order daemons — a documented instability, not a target).
        topo = random_connected_topology(3)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = IncrementalCentralDaemonExecutor(topo, m).run(fresh_states(topo, m))
        assert res.converged
        again = IncrementalSyncExecutor(topo, m).run(list(res.states))
        assert again.converged and again.rounds == 0 and again.moves == 0

    def test_local_fault_stays_local_for_local_metrics(self):
        n = 30
        edges = {(i, i + 1): 100.0 for i in range(n - 1)}
        topo = Topology.from_edges(n, edges, source=0, members=range(n))
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = IncrementalSyncExecutor(topo, m).run(fresh_states(topo, m))
        assert res.converged
        # Perturb one mid-line node; recovery must be 1 round / 1 move,
        # i.e. the executor did not treat the whole line as dirty.
        states = list(res.states)
        states[15] = NodeState(parent=16, cost=states[15].cost, hop=states[15].hop)
        rec = IncrementalSyncExecutor(topo, m).run(states)
        assert rec.converged
        assert rec.states == res.states
        baseline = SyncExecutor(topo, m).run(list(states))
        assert_same_trajectory(baseline, rec)
