"""Tests for the multi-group multicast subsystem (``repro.groups``).

Pins the contracts the extension is accountable for:

* **k = 1 bit-identity** — ``group_count=1`` configs hash byte-identically
  to the pre-multi-group era (golden config keys) and replay the exact
  pre-multi-group trajectories on both backends (golden DES summary,
  golden settled-tree digest on the rounds backend).
* **Generator semantics** — ``disjoint`` groups really are disjoint,
  ``shared-core`` groups really share group 0's core, ``linear-ramp``
  sizes really ramp; invalid combinations fail at construction.
* **Engine parity at k > 1** — the object and array round engines settle
  every group's tree bit-identically (hypothesis property).
* **Real contention on the DES** — k concurrent sessions collide at the
  MAC, and the cross-group metrics (fairness, link stress, overlap) come
  out populated and sane.

Plus the satellites: JSON scenario import/export round-trip, the
``platoon`` mobility model, and the campaign CLI end to end over a
``group_count`` grid (cold then warm).
"""

from __future__ import annotations

import hashlib
import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backends import backend_by_name, build_round_scenario
from repro.experiments.campaign import config_key, main
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_scenario
from repro.experiments.scenario_models import build_scenario_space
from repro.graph.io import (
    SCENARIO_SCHEMA,
    ScenarioDocument,
    dump_scenario,
    load_scenario,
    loads_scenario,
    scenario_document,
)
from repro.groups.metrics import (
    jain_index,
    link_stress_stats,
    multicast_tree_edges,
)
from repro.groups.models import (
    DEFAULT_GROUP_MODELS,
    GROUP_MODEL_NAMES,
    GroupSet,
    GroupSpec,
    group_model_by_name,
)
from repro.mobility.platoon import PlatoonMobility
from repro.util.geometry import Arena
from repro.util.rng import RngStreams

FAST = dict(sim_time=12.0, n_nodes=16, group_size=4)


def fast_base(**kw):
    merged = dict(FAST)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


# ----------------------------------------------------------------------
# k = 1 bit-identity: the golden fixture
# ----------------------------------------------------------------------
class TestSingleGroupGolden:
    """Values computed on the commit before the groups subsystem
    existed.  ``group_count`` / ``group_size_model`` / ``overlap_model``
    are hash-neutral at their defaults and the k = 1 simulation path is
    draw-for-draw identical, so these must never move."""

    GOLDEN_KEYS = {
        (): "1c5fc0a70752e19000558489",
        (("backend", "rounds"),): "50630b6df448dc4f6b72d084",
    }
    GOLDEN_QUICK_KEYS = {
        (): "a0f181d6925c723a1591669b",
        (("n_nodes", 16), ("group_size", 4), ("sim_time", 12.0)):
            "251d5d3b3e3e01dce191f218",
    }

    def test_default_config_keys_unchanged(self):
        for overrides, expected in self.GOLDEN_KEYS.items():
            assert config_key(ScenarioConfig(**dict(overrides))) == expected
        for overrides, expected in self.GOLDEN_QUICK_KEYS.items():
            assert (
                config_key(ScenarioConfig.quick(**dict(overrides)))
                == expected
            )

    def test_explicit_defaults_hash_like_the_past(self):
        base = ScenarioConfig()
        spelled = ScenarioConfig(
            group_count=1,
            group_size_model="fixed",
            overlap_model="independent",
        )
        assert config_key(spelled) == config_key(base)

    def test_nondefault_group_axes_move_the_hash(self):
        base = config_key(ScenarioConfig())
        assert config_key(ScenarioConfig(group_count=2)) != base
        assert (
            config_key(ScenarioConfig(group_size_model="linear-ramp")) != base
        )
        assert config_key(ScenarioConfig(overlap_model="disjoint")) != base

    def test_des_summary_unchanged(self):
        r = run_scenario(fast_base(seed=7))
        assert r.pdr == 0.8125
        assert r.avg_delay_ms == pytest.approx(10.527850085437125, abs=0)
        assert r.control_overhead == pytest.approx(
            0.09597856570512821, abs=0
        )
        assert r.data_originated == 32
        assert r.data_delivered == 78
        assert r.events_executed == 1098
        assert r.frames_sent == 192
        assert r.frames_collided == 12
        assert r.parent_changes == 18
        assert r.total_energy_j == pytest.approx(3.284115712384258, abs=0)
        # k = 1 cross-group diagnostics are well-defined, not nan
        assert r.fairness_jain == 1.0
        assert r.group_pdr_min == r.pdr

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_rounds_trajectory_unchanged(self, engine):
        from repro.core.convergence import engine_for
        from repro.core.rounds import fresh_states

        cfg = ScenarioConfig(
            backend="rounds", engine=engine, n_nodes=24, group_size=6, seed=3
        )
        summary = backend_by_name("rounds").run(cfg).summary
        assert (summary.rounds, summary.evaluations, summary.moves) == (
            6, 112, 41,
        )
        assert summary.converged == 1
        assert summary.recovery_rounds == 1.0
        assert summary.fairness_jain == 1.0

        topo, metric = build_round_scenario(cfg)
        streams = RngStreams(cfg.seed)
        settled = engine_for(
            topo, metric, cfg.daemon, engine=engine,
            rng=streams.get("daemon"), k=cfg.daemon_k,
        ).run(fresh_states(topo, metric))
        digest = hashlib.sha256(
            json.dumps(
                [
                    (st.parent, st.hop, round(st.cost, 9))
                    for st in settled.states
                ]
            ).encode()
        ).hexdigest()[:16]
        assert digest == "6528d23d48a219a5"

    def test_single_group_space_draws_nothing_extra(self):
        """At k = 1 the group generators must not touch the RNG: the
        realized group is exactly the membership model's group."""
        cfg = fast_base(seed=9)
        space = build_scenario_space(cfg)
        assert len(space.groups) == 1
        g = space.groups[0]
        assert g.gid == 0
        assert g.source == space.source
        assert g.receivers == tuple(space.receivers)


# ----------------------------------------------------------------------
# generators and validation
# ----------------------------------------------------------------------
class TestGroupModels:
    def test_registry_names(self):
        assert GROUP_MODEL_NAMES["group-size"] == ("fixed", "linear-ramp")
        assert GROUP_MODEL_NAMES["group-overlap"] == (
            "independent", "disjoint", "shared-core",
        )
        assert DEFAULT_GROUP_MODELS == {
            "group-size": "fixed",
            "group-overlap": "independent",
        }
        with pytest.raises(ValueError, match="unknown group-size"):
            group_model_by_name("group-size", "bogus")
        assert group_model_by_name("group-overlap", "disjoint").name == (
            "disjoint"
        )

    def test_groupspec_rejects_source_in_receivers(self):
        with pytest.raises(ValueError, match="source"):
            GroupSpec(gid=0, source=3, receivers=(1, 3))

    def test_groupset_requires_contiguous_gids(self):
        g0 = GroupSpec(gid=0, source=0, receivers=(1, 2))
        g2 = GroupSpec(gid=2, source=3, receivers=(4, 5))
        with pytest.raises(ValueError, match="0..k-1"):
            GroupSet(groups=(g0, g2))

    def test_group_count_must_be_positive(self):
        with pytest.raises(ValueError, match="group_count"):
            ScenarioConfig(group_count=0)

    def test_multigroup_requires_ss_family(self):
        with pytest.raises(ValueError, match="group_count"):
            ScenarioConfig.quick(protocol="flooding", group_count=2)

    def test_disjoint_needs_enough_nodes(self):
        with pytest.raises(ValueError, match="disjoint"):
            ScenarioConfig.quick(
                n_nodes=10, group_size=4, group_count=6,
                overlap_model="disjoint",
            )

    def test_disjoint_groups_share_no_nodes(self):
        cfg = ScenarioConfig.quick(
            n_nodes=40, group_size=5, group_count=4,
            overlap_model="disjoint", seed=2,
        )
        space = build_scenario_space(cfg)
        assert len(space.groups) == 4
        seen = set()
        for g in space.groups:
            members = set(g.members)
            assert not members & seen
            seen |= members

    def test_shared_core_groups_draw_from_group0(self):
        cfg = ScenarioConfig.quick(
            n_nodes=40, group_size=8, group_count=3,
            overlap_model="shared-core", seed=4,
        )
        space = build_scenario_space(cfg)
        g0_receivers = set(space.groups[0].receivers)
        for g in list(space.groups)[1:]:
            # core_frac=0.5 of the group's receivers come from group 0
            n_core = min(
                round(0.5 * (g.size - 1)), len(g0_receivers), g.size - 1
            )
            assert len(set(g.members) & g0_receivers) >= n_core > 0

    def test_linear_ramp_sizes_shrink(self):
        cfg = ScenarioConfig.quick(
            n_nodes=40, group_size=8, group_count=4,
            group_size_model="linear-ramp", seed=6,
        )
        space = build_scenario_space(cfg)
        sizes = [g.size for g in space.groups]
        assert sizes[0] == 8  # group 0: the historical group_size (incl. source)
        extra = sizes[1:]
        assert extra == sorted(extra, reverse=True)  # shrinking ramp
        assert extra[-1] == 4  # ramp_min_frac=0.5 of group_size=8
        assert all(2 <= s <= 8 for s in extra)

    def test_groups_identical_across_backends(self):
        """Both backends realize the identical GroupSet (t = 0 parity
        extends to the group structure)."""
        kw = dict(n_nodes=30, group_size=5, group_count=3, seed=13)
        des = build_scenario_space(ScenarioConfig.quick(**kw))
        rnd = build_scenario_space(
            ScenarioConfig.quick(backend="rounds", traffic="cbr", **kw)
        )
        assert des.groups == rnd.groups

    def test_fixed_model_every_group_gets_group_size(self):
        cfg = ScenarioConfig.quick(
            n_nodes=40, group_size=6, group_count=3,
            group_size_model="fixed", overlap_model="independent", seed=8,
        )
        space = build_scenario_space(cfg)
        for g in list(space.groups)[1:]:
            assert g.size == 6  # source included, like sizes() declares


# ----------------------------------------------------------------------
# cross-group metrics (pure functions)
# ----------------------------------------------------------------------
class TestGroupMetrics:
    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        assert math.isnan(jain_index([1.0, float("nan")]))

    def test_multicast_tree_edges_walks_to_source(self):
        parents = {0: None, 1: 0, 2: 1, 3: 1, 4: None}
        edges = multicast_tree_edges(parents, source=0, members=(2, 3))
        assert edges == frozenset({(2, 1), (3, 1), (1, 0)})

    def test_link_stress_and_overlap(self):
        t1 = frozenset({(1, 0), (2, 1)})
        t2 = frozenset({(1, 0), (3, 1)})
        mean, peak, overlap = link_stress_stats([t1, t2])
        assert peak == 2.0  # (1, 0) carried by both trees
        assert mean == pytest.approx(4 / 3)
        assert overlap == pytest.approx(1 - 3 / 4)
        empty_mean, empty_peak, empty_overlap = link_stress_stats([])
        assert math.isnan(empty_mean) and math.isnan(empty_peak)
        assert empty_overlap == 0.0


# ----------------------------------------------------------------------
# k > 1: engine parity and real DES contention
# ----------------------------------------------------------------------
class TestMultiGroupRuns:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        group_count=st.integers(min_value=2, max_value=4),
        overlap=st.sampled_from(GROUP_MODEL_NAMES["group-overlap"]),
    )
    def test_object_and_array_engines_agree_at_k_gt_1(
        self, seed, group_count, overlap
    ):
        summaries = []
        for engine in ("object", "array"):
            cfg = ScenarioConfig(
                backend="rounds", engine=engine, n_nodes=30, group_size=5,
                group_count=group_count, overlap_model=overlap, seed=seed,
            )
            s = backend_by_name("rounds").run(cfg).summary
            summaries.append(
                (
                    s.rounds, s.evaluations, s.moves, s.converged,
                    s.total_cost, s.fairness_jain, s.link_stress_mean,
                    s.link_stress_max, s.tree_overlap_ratio,
                )
            )
        assert summaries[0] == summaries[1]

    def test_rounds_multigroup_aggregation(self):
        cfg = ScenarioConfig(
            backend="rounds", n_nodes=30, group_size=6, group_count=4,
            overlap_model="shared-core", seed=5,
        )
        s = backend_by_name("rounds").run(cfg).summary
        single = backend_by_name("rounds").run(
            ScenarioConfig(backend="rounds", n_nodes=30, group_size=6, seed=5)
        ).summary
        # k trees cost at least group 0's tree; counters are sums
        assert s.evaluations > single.evaluations
        assert s.rounds >= single.rounds
        assert 0.0 < s.fairness_jain <= 1.0
        assert s.link_stress_mean >= 1.0
        assert 0.0 <= s.tree_overlap_ratio < 1.0
        # recovery is a per-tree notion: nan at k > 1
        assert math.isnan(s.recovery_rounds)

    def test_des_multigroup_contends_and_reports_fairness(self):
        r = run_scenario(
            ScenarioConfig.quick(
                n_nodes=24, group_size=5, group_count=3,
                sim_time=20.0, seed=11,
            )
        )
        assert 0.0 < r.pdr <= 1.0
        assert 0.0 < r.fairness_jain <= 1.0
        assert 0.0 <= r.group_pdr_min <= r.pdr
        assert r.link_stress_mean >= 1.0
        assert r.link_stress_max >= r.link_stress_mean
        assert 0.0 <= r.tree_overlap_ratio < 1.0
        # three staggered CBR flows: strictly more traffic than one
        single = run_scenario(
            ScenarioConfig.quick(
                n_nodes=24, group_size=5, sim_time=20.0, seed=11
            )
        )
        assert r.data_originated > single.data_originated
        assert r.frames_collided > single.frames_collided

    def test_des_multigroup_is_deterministic(self):
        cfg = ScenarioConfig.quick(
            n_nodes=20, group_size=4, group_count=2, sim_time=15.0, seed=21
        )
        a, b = run_scenario(cfg), run_scenario(cfg)
        assert (a.pdr, a.fairness_jain, a.events_executed, a.frames_sent) == (
            b.pdr, b.fairness_jain, b.events_executed, b.frames_sent,
        )

    def test_figg01_registered(self):
        fig = FIGURES["figg01"]
        assert fig.x_name == "group_count"
        assert 1 in fig.x_quick and 4 in fig.x_quick
        spec = fig.campaign_spec(quick=True)
        assert any(cfg.group_count == 4 for cfg in spec.configs())


# ----------------------------------------------------------------------
# satellite: JSON scenario import/export
# ----------------------------------------------------------------------
class TestScenarioIo:
    def test_round_trip_exact(self, tmp_path):
        doc = scenario_document(
            ScenarioConfig.quick(
                n_nodes=20, group_size=4, group_count=3, seed=17
            ),
            meta={"note": "fixture"},
        )
        path = str(tmp_path / "scenario.json")
        dump_scenario(path, doc)
        loaded = load_scenario(path)
        assert loaded.n_nodes == doc.n_nodes == 20
        np.testing.assert_array_equal(loaded.positions, doc.positions)
        assert loaded.groups == doc.groups
        assert loaded.arena == doc.arena
        assert loaded.meta["note"] == "fixture"
        assert loaded.meta["group_count"] == 3
        # a second dump of the loaded document is byte-identical
        path2 = str(tmp_path / "scenario2.json")
        dump_scenario(path2, loaded)
        with open(path) as a, open(path2) as b:
            assert a.read() == b.read()

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            loads_scenario(json.dumps({"schema": 99}))
        assert SCENARIO_SCHEMA == 1

    def test_rejects_out_of_range_members(self):
        doc = ScenarioDocument(
            arena=(100.0, 100.0),
            positions=np.zeros((3, 2)),
            groups=GroupSet(
                groups=(GroupSpec(gid=0, source=0, receivers=(1, 7)),)
            ),
        )
        text = json.dumps(
            {
                "schema": 1,
                "arena": [100.0, 100.0],
                "positions": [[0, 0], [1, 1], [2, 2]],
                "groups": [{"gid": 0, "source": 0, "receivers": [1, 7]}],
            }
        )
        with pytest.raises(ValueError, match="outside"):
            loads_scenario(text)
        assert doc.n_nodes == 3


# ----------------------------------------------------------------------
# satellite: platoon mobility
# ----------------------------------------------------------------------
class TestPlatoonMobility:
    def test_platoon_members_stay_coherent(self):
        rng = np.random.default_rng(3)
        model = PlatoonMobility(
            n_nodes=12, arena=Arena(500.0, 500.0), platoon_count=3,
            spread=40.0, v_min=1.0, v_max=5.0, rng=rng,
        )
        for t in (0.0, 30.0, 90.0):
            pos = model.positions(t)
            for pid in range(3):
                members = pos[model.assignment == pid]
                diameter = np.max(
                    np.linalg.norm(
                        members[:, None, :] - members[None, :, :], axis=-1
                    )
                )
                # offsets are within +-spread per axis -> bounded diameter
                assert diameter <= 2 * 40.0 * math.sqrt(2) + 1e-9

    def test_platoon_is_deterministic_and_seed_sensitive(self):
        def fingerprint(seed):
            model = PlatoonMobility(
                n_nodes=10, arena=Arena(400.0, 400.0), platoon_count=2,
                spread=30.0, v_min=1.0, v_max=4.0,
                rng=np.random.default_rng(seed),
            )
            return model.positions(50.0).tobytes()

        assert fingerprint(1) == fingerprint(1)
        assert fingerprint(1) != fingerprint(2)

    def test_registered_on_the_mobility_axis(self):
        cfg = fast_base(mobility="platoon", seed=5)
        space = build_scenario_space(cfg)
        assert isinstance(space.mobility, PlatoonMobility)
        # platoon_count=0 defaults to one convoy per multicast group
        assert space.mobility.platoon_count == max(cfg.group_count, 1)
        r = run_scenario(fast_base(mobility="platoon", seed=5))
        assert 0.0 <= r.pdr <= 1.0

    def test_platoon_is_hash_neutral_when_not_selected(self):
        assert config_key(ScenarioConfig()) == (
            "1c5fc0a70752e19000558489"
        )

    def test_platoon_requires_uniform_placement(self):
        with pytest.raises(ValueError, match="platoon"):
            ScenarioConfig.quick(mobility="platoon", placement="grid")

    def test_platoon_with_groups(self):
        cfg = ScenarioConfig.quick(
            n_nodes=24, group_size=4, group_count=3, mobility="platoon",
            sim_time=15.0, seed=19,
        )
        space = build_scenario_space(cfg)
        assert space.mobility.platoon_count == 3
        r = run_scenario(cfg)
        assert 0.0 <= r.pdr <= 1.0


# ----------------------------------------------------------------------
# satellite: campaign CLI over a group_count grid, cold then warm
# ----------------------------------------------------------------------
class TestCampaignCli:
    ARGS = [
        "--protocols", "ss-spst",
        "--grid", "group_count=1,2,4",
        "--seeds", "1,2",
        "--set", "sim_time=12",
        "--set", "n_nodes=24",
        "--set", "group_size=4",
        "--set", "overlap_model=shared-core",
        "--metrics", "pdr,fairness_jain,link_stress_mean",
        "--quiet",
    ]

    def test_group_count_sweep_end_to_end(self, tmp_path, capsys):
        store = str(tmp_path / "groups.sqlite")
        args = self.ARGS + ["--store", store]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "6 runs (executed=6 cached=0" in out
        assert "fairness_jain" in out and "link_stress_mean" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "6 runs (executed=0 cached=6" in out

    def test_overlap_model_is_a_sweepable_axis(self, tmp_path, capsys):
        args = [
            "--protocols", "ss-spst",
            "--grid", "overlap_model=independent,disjoint",
            "--seeds", "1",
            "--set", "group_count=2",
            "--set", "sim_time=12",
            "--set", "n_nodes=24",
            "--set", "group_size=4",
            "--cache-dir", str(tmp_path),
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 runs (executed=2" in out
        assert os.listdir(str(tmp_path))
