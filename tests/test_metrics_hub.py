"""Tests for the metrics hub and run summaries."""

import pytest

from repro.metrics.hub import MetricsHub
from repro.net.packet import Packet, PacketKind


def data(seq, created=0.0, size=512):
    return Packet(PacketKind.DATA, 0, 0, seq, size, created_at=created)


def beacon(seq, size=40):
    return Packet(PacketKind.BEACON, 0, 0, seq, size)


class TestCounting:
    def test_pdr_full_delivery(self):
        hub = MetricsHub(n_receivers=2)
        for i in range(5):
            p = data(i)
            hub.on_data_originated(p)
            hub.on_data_delivered(1, p, now=0.01)
            hub.on_data_delivered(2, p, now=0.02)
        s = hub.summary(total_energy_j=0.1)
        assert s.pdr == 1.0
        assert s.data_delivered == 10

    def test_pdr_partial(self):
        hub = MetricsHub(n_receivers=2)
        for i in range(4):
            p = data(i)
            hub.on_data_originated(p)
            if i % 2 == 0:
                hub.on_data_delivered(1, p, now=0.01)
        s = hub.summary(0.0)
        assert s.pdr == pytest.approx(2 / 8)

    def test_duplicates_not_double_counted(self):
        hub = MetricsHub(n_receivers=1)
        p = data(0)
        hub.on_data_originated(p)
        assert hub.on_data_delivered(1, p, now=0.5) is True
        assert hub.on_data_delivered(1, p, now=0.6) is False
        s = hub.summary(0.0)
        assert s.data_delivered == 1
        assert s.duplicates_suppressed == 1

    def test_energy_per_packet_mj(self):
        hub = MetricsHub(n_receivers=1)
        p = data(0)
        hub.on_data_originated(p)
        hub.on_data_delivered(1, p, now=0.1)
        s = hub.summary(total_energy_j=0.004)
        assert s.energy_per_packet_mj == pytest.approx(4.0)

    def test_energy_infinite_when_nothing_delivered(self):
        hub = MetricsHub(n_receivers=1)
        hub.on_data_originated(data(0))
        s = hub.summary(1.0)
        assert s.energy_per_packet_mj == float("inf")

    def test_delay_ms(self):
        hub = MetricsHub(n_receivers=1)
        p = data(0, created=1.0)
        hub.on_data_originated(p)
        hub.on_data_delivered(1, p, now=1.025)
        s = hub.summary(0.0)
        assert s.avg_delay_ms == pytest.approx(25.0)

    def test_control_overhead(self):
        hub = MetricsHub(n_receivers=1)
        hub.set_packet_size_hint(512)
        hub.on_frame_sent(beacon(0, size=100))
        hub.on_frame_sent(beacon(1, size=100))
        p = data(0)
        hub.on_frame_sent(p)
        hub.on_data_originated(p)
        hub.on_data_delivered(1, p, now=0.1)
        s = hub.summary(0.0)
        assert s.control_bytes_tx == 200
        assert s.control_overhead == pytest.approx(200 / 512)

    def test_frame_classification(self):
        hub = MetricsHub(n_receivers=1)
        hub.on_frame_sent(data(0))
        hub.on_frame_sent(beacon(0, size=64))
        assert hub.data_bytes_tx == 512
        assert hub.control_bytes_tx == 64


class TestAvailability:
    def test_unavailability_without_deliveries(self):
        hub = MetricsHub(n_receivers=2, availability_window=1.0)
        for t in range(5):
            hub.probe_availability([1, 2], now=float(t))
        s = hub.summary(0.0)
        assert s.unavailability == 1.0

    def test_unavailability_with_recent_delivery(self):
        hub = MetricsHub(n_receivers=1, availability_window=1.0)
        p = data(0)
        hub.on_data_originated(p)
        hub.on_data_delivered(1, p, now=0.0)
        hub.probe_availability([1], now=0.5)  # covered
        hub.probe_availability([1], now=5.0)  # stale
        s = hub.summary(0.0)
        assert s.unavailability == pytest.approx(0.5)

    def test_no_probes_means_zero(self):
        hub = MetricsHub(n_receivers=1)
        assert hub.summary(0.0).unavailability == 0.0


class TestValidation:
    def test_negative_receivers_rejected(self):
        with pytest.raises(ValueError):
            MetricsHub(n_receivers=-1)

    def test_bad_packet_hint_rejected(self):
        with pytest.raises(ValueError):
            MetricsHub(1).set_packet_size_hint(0)

    def test_summary_as_dict(self):
        hub = MetricsHub(n_receivers=1)
        d = hub.summary(0.0).as_dict()
        assert "pdr" in d and "energy_per_packet_mj" in d
