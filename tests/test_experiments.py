"""Tests for the experiment harness (config, runner, sweeps, figures)."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FIGURES, FigureDef
from repro.experiments.runner import RunResult, build_network, run_scenario
from repro.experiments.sweeps import Sweep, SweepResult


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        cfg = ScenarioConfig()
        assert cfg.n_nodes == 50
        assert cfg.arena_w == 750.0 and cfg.arena_h == 750.0
        assert cfg.sim_time == 1800.0
        assert cfg.rate_kbps == 64.0
        assert cfg.beacon_interval == 2.0
        assert cfg.v_min > 0  # Noble fix

    def test_quick_scales_down(self):
        cfg = ScenarioConfig.quick()
        assert cfg.sim_time < 300
        assert cfg.rate_kbps < 64.0
        assert cfg.n_nodes == 50  # structure preserved

    def test_replace(self):
        cfg = ScenarioConfig.quick().replace(v_max=12.0, protocol="odmrp")
        assert cfg.v_max == 12.0 and cfg.protocol == "odmrp"

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(group_size=1)
        with pytest.raises(ValueError):
            ScenarioConfig(group_size=51)
        with pytest.raises(ValueError):
            ScenarioConfig(sim_time=5.0, traffic_start=10.0)

    def test_hashable_for_caching(self):
        a = ScenarioConfig.quick(seed=1)
        b = ScenarioConfig.quick(seed=1)
        assert a == b and hash(a) == hash(b)
        assert {a: 1}[b] == 1


class TestRunner:
    def test_build_network_group(self):
        cfg = ScenarioConfig.quick(group_size=10, seed=7)
        sim, net = build_network(cfg)
        assert net.source == 0
        assert len(net.members) == 10
        assert len(net.receivers) == 9

    def test_same_seed_same_scenario(self):
        cfg = ScenarioConfig.quick(seed=5)
        _, net1 = build_network(cfg)
        _, net2 = build_network(cfg)
        assert net1.members == net2.members
        assert (net1.positions() == net2.positions()).all()

    def test_different_protocols_share_scenario(self):
        """The paper evaluates all protocols on identical scenarios."""
        a = ScenarioConfig.quick(seed=5, protocol="ss-spst")
        b = ScenarioConfig.quick(seed=5, protocol="odmrp")
        _, net_a = build_network(a)
        _, net_b = build_network(b)
        assert net_a.members == net_b.members
        assert (net_a.positions() == net_b.positions()).all()

    def test_run_scenario_end_to_end(self):
        cfg = ScenarioConfig.quick(sim_time=30.0, group_size=8, seed=2)
        result = run_scenario(cfg)
        assert isinstance(result, RunResult)
        assert 0.0 <= result.summary.pdr <= 1.0
        assert result.summary.total_energy_j > 0
        assert result.events_executed > 1000
        assert result.pdr == result.summary.pdr  # passthrough

    def test_deterministic_given_seed(self):
        cfg = ScenarioConfig.quick(sim_time=25.0, group_size=6, seed=4)
        r1 = run_scenario(cfg)
        r2 = run_scenario(cfg)
        assert r1.summary.pdr == r2.summary.pdr
        assert r1.summary.total_energy_j == pytest.approx(r2.summary.total_energy_j)


class TestSweeps:
    def test_sweep_runs_grid(self):
        base = ScenarioConfig.quick(sim_time=20.0, group_size=6)
        sweep = Sweep(
            x_name="v_max",
            x_values=[1.0, 10.0],
            protocols=["flooding"],
            y_name="pdr",
            extract=lambda r: r.summary.pdr,
            base=base,
            seeds=(1,),
        )
        result = sweep.run()
        assert result.x_values == [1.0, 10.0]
        assert len(result.series["flooding"]) == 2

    def test_sweep_cache_reuse(self):
        base = ScenarioConfig.quick(sim_time=20.0, group_size=6)
        cache = {}
        kw = dict(
            x_name="v_max", x_values=[1.0], protocols=["flooding"], base=base, seeds=(1,)
        )
        Sweep(y_name="pdr", extract=lambda r: r.summary.pdr, **kw).run(cache=cache)
        assert len(cache) == 1
        before = dict(cache)
        Sweep(y_name="epp", extract=lambda r: r.summary.energy_per_packet_mj, **kw).run(
            cache=cache
        )
        assert cache == before  # second sweep hit the cache entirely

    def test_format_table(self):
        result = SweepResult(
            x_name="v", x_values=[1.0, 2.0], y_name="pdr",
            series={"a": [0.9, 0.8], "b": [0.7, 0.6]},
        )
        table = result.format_table("demo")
        assert "demo" in table
        assert "0.9000" in table and "0.6000" in table


class TestFigureRegistry:
    def test_all_ten_figures_defined(self):
        # the paper's ten figures plus the daemon-axis, rounds-backend,
        # mobility-model and multi-group extension figures
        assert set(FIGURES) == {f"fig{n:02d}" for n in range(7, 17)} | {
            "figd01",
            "figd02",
            "figd03",
            "figm01",
            "figg01",
        }

    def test_every_figure_has_checks(self):
        for fig in FIGURES.values():
            assert isinstance(fig, FigureDef)
            assert fig.checks, fig.fig_id

    def test_quick_and_full_grids_differ(self):
        for fig in FIGURES.values():
            assert len(fig.x_full) >= len(fig.x_quick)
            assert fig.base_full.sim_time > fig.base_quick.sim_time

    def test_family_figures_cover_variants(self):
        for fid in ("fig07", "fig08", "fig09"):
            assert set(FIGURES[fid].protocols) == {
                "ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e",
            }

    def test_comparison_figures_cover_baselines(self):
        for fid in ("fig12", "fig13", "fig14", "fig15", "fig16"):
            assert {"maodv", "odmrp"} <= set(FIGURES[fid].protocols)

    def test_checks_evaluate_on_synthetic_result(self):
        fig = FIGURES["fig09"]
        synthetic = SweepResult(
            x_name="v_max",
            x_values=list(fig.x_quick),
            y_name="energy_per_packet_mj",
            series={
                "ss-spst": [30.0, 29.0, 28.0, 27.0],
                "ss-spst-t": [31.0, 32.0, 33.0, 36.0],
                "ss-spst-f": [21.0, 22.0, 22.0, 22.0],
                "ss-spst-e": [16.0, 20.0, 23.0, 25.0],
            },
        )
        checks = fig.check(synthetic)
        assert all(checks.values()), checks
