"""Tests for the radio model, ledger and battery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import Battery, EnergyLedger, FirstOrderRadioModel


class TestFirstOrderRadioModel:
    def test_tx_monotone_in_distance(self, radio):
        distances = np.linspace(radio.d_floor, radio.max_range, 50)
        costs = [radio.tx_cost_per_bit(d) for d in distances]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_tx_scales_linearly_in_bits(self, radio):
        assert radio.tx_energy(2000, 100.0) == pytest.approx(
            2 * radio.tx_energy(1000, 100.0)
        )

    def test_rx_constant_per_bit(self, radio):
        """Paper section 3: reception energy is constant for all nodes."""
        assert radio.rx_energy(100) == pytest.approx(100 * radio.e_rx)

    def test_power_floor(self, radio):
        """Below d_floor, transmitters cannot reduce power further."""
        assert radio.tx_cost_per_bit(0.0) == radio.tx_cost_per_bit(radio.d_floor)
        assert radio.tx_cost_per_bit(1.0) == radio.tx_cost_per_bit(radio.d_floor)

    def test_superlinearity_enables_relaying(self, radio):
        """Two 100 m hops must beat one 200 m hop (the effect SS-SPST-E
        exploits: 'transmitting a packet in a single hop might consume more
        energy than relaying it along a tandem of nodes')."""
        assert radio.relay_beats_direct(200.0, 100.0, 100.0)

    def test_short_relay_does_not_beat_direct(self, radio):
        # At small distances e_elec dominates and relaying is wasteful.
        assert not radio.relay_beats_direct(20.0, 10.0, 10.0)

    def test_in_range(self, radio):
        assert radio.in_range(radio.max_range)
        assert not radio.in_range(radio.max_range + 1)
        assert not radio.in_range(0.0)

    def test_negative_inputs_rejected(self, radio):
        with pytest.raises(ValueError):
            radio.tx_energy(-1, 10)
        with pytest.raises(ValueError):
            radio.tx_cost_per_bit(-5)
        with pytest.raises(ValueError):
            radio.rx_energy(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FirstOrderRadioModel(e_elec=-1.0)
        with pytest.raises(ValueError):
            FirstOrderRadioModel(alpha=0.5)
        with pytest.raises(ValueError):
            FirstOrderRadioModel(max_range=-1.0)
        with pytest.raises(ValueError):
            FirstOrderRadioModel(d_floor=300.0, max_range=250.0)

    @settings(max_examples=50, deadline=None)
    @given(
        d1=st.floats(10.0, 250.0),
        d2=st.floats(10.0, 250.0),
        bits=st.floats(1.0, 1e6),
    )
    def test_property_monotonicity(self, d1, d2, bits):
        radio = FirstOrderRadioModel()
        lo, hi = min(d1, d2), max(d1, d2)
        assert radio.tx_energy(bits, lo) <= radio.tx_energy(bits, hi) + 1e-18


class TestEnergyLedger:
    def test_charges_accumulate(self):
        ledger = EnergyLedger()
        ledger.charge("tx", "data", 1.0)
        ledger.charge("tx", "data", 2.0)
        ledger.charge("rx", "control", 0.5)
        snap = ledger.snapshot()
        assert snap.tx_data == 3.0
        assert snap.rx_control == 0.5
        assert ledger.total == 3.5

    def test_reclassify_rx_as_discard(self):
        ledger = EnergyLedger()
        ledger.charge("rx", "data", 2.0)
        ledger.reclassify_rx_as_discard("data", 2.0)
        snap = ledger.snapshot()
        assert snap.rx_data == 0.0
        assert snap.discard_data == 2.0
        assert ledger.total == 2.0  # total unchanged by reclassification

    def test_reclassify_overdraft_rejected(self):
        ledger = EnergyLedger()
        ledger.charge("rx", "data", 1.0)
        with pytest.raises(ValueError):
            ledger.reclassify_rx_as_discard("data", 2.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().charge("tx", "data", -0.1)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().charge("sideways", "data", 1.0)

    def test_snapshot_totals(self):
        ledger = EnergyLedger()
        ledger.charge("tx", "control", 1.0)
        ledger.charge("discard", "data", 2.0)
        ledger.charge("discard", "control", 3.0)
        snap = ledger.snapshot()
        assert snap.total == 6.0
        assert snap.total_discard == 5.0
        assert snap.total_control == 4.0


class TestBattery:
    def test_infinite_by_default(self):
        b = Battery()
        assert b.draw(1e12)
        assert not b.depleted
        assert b.fraction_remaining == 1.0

    def test_depletion_fires_callback_once(self):
        fired = []
        b = Battery(10.0, on_depleted=lambda: fired.append(1))
        assert b.draw(6.0)
        assert not b.draw(6.0)
        assert b.depleted
        assert not b.draw(1.0)  # stays dead
        assert fired == [1]

    def test_fraction_remaining(self):
        b = Battery(10.0)
        b.draw(2.5)
        assert b.fraction_remaining == pytest.approx(0.75)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Battery(0.0)

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery(1.0).draw(-0.5)
